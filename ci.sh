#!/usr/bin/env sh
# Offline CI gate for the nsr workspace. Runs the full tier-1 suite plus
# lint and formatting checks. Requires only the pinned Rust toolchain —
# no network access, no external crates (see Cargo.toml's offline-build
# policy).
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> smoke bench (tiny sizes, schema-validated JSON, offline)"
# Runs every suite in --smoke mode into a scratch directory, then re-parses
# the emitted BENCH_*.json through the harness's schema validator. Also
# validates the full-mode reports checked into the repo root.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/nsr bench --smoke --out-dir "$SMOKE_DIR"
./target/release/nsr bench --check --out-dir "$SMOKE_DIR"
./target/release/nsr bench --check --out-dir .

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all checks passed"
