#!/usr/bin/env sh
# Offline CI gate for the nsr workspace. Runs the full tier-1 suite plus
# lint and formatting checks. Requires only the pinned Rust toolchain —
# no network access, no external crates (see Cargo.toml's offline-build
# policy).
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all checks passed"
