#!/usr/bin/env sh
# Offline CI gate for the nsr workspace. Runs the full tier-1 suite plus
# lint and formatting checks. Requires only the pinned Rust toolchain —
# no network access, no external crates (see Cargo.toml's offline-build
# policy).
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> smoke bench (tiny sizes, schema-validated JSON, offline)"
# Runs every suite in --smoke mode into a scratch directory, then re-parses
# the emitted BENCH_*.json through the harness's schema validator. Also
# validates the full-mode reports checked into the repo root.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/nsr bench --smoke --out-dir "$SMOKE_DIR"
./target/release/nsr bench --check --out-dir "$SMOKE_DIR"
./target/release/nsr bench --check --out-dir .

echo "==> bench compare smoke (offline, deterministic)"
# A report diffed against an identical copy must report no regressions,
# and a uniformly slowed-down copy must make the compare exit non-zero.
cp "$SMOKE_DIR/BENCH_sweep.json" "$SMOKE_DIR/BENCH_sweep.old.json"
./target/release/nsr bench --compare "$SMOKE_DIR/BENCH_sweep.old.json" \
    "$SMOKE_DIR/BENCH_sweep.json"
sed 's/"ns_per_iter": /"ns_per_iter": 9/' "$SMOKE_DIR/BENCH_sweep.json" \
    > "$SMOKE_DIR/BENCH_sweep.slow.json"
if ./target/release/nsr bench --compare "$SMOKE_DIR/BENCH_sweep.old.json" \
    "$SMOKE_DIR/BENCH_sweep.slow.json" > /dev/null 2>&1; then
    echo "ERROR: bench --compare missed an obvious regression" >&2
    exit 1
fi

echo "==> observability smoke (nsr-obs/v1 snapshots, schema-validated)"
# A parallel sim with both snapshot flags must produce valid nsr-obs/v1
# files carrying the headline metrics from all three instrumented crates.
./target/release/nsr sim --config ft1-nir --samples 60 --threads 2 --seed 7 \
    --metrics-out "$SMOKE_DIR/metrics.jsonl" --trace-out "$SMOKE_DIR/trace.jsonl"
./target/release/nsr obs-check --file "$SMOKE_DIR/metrics.jsonl" \
    --require erasure.plan_cache.hit_rate,markov.absorbing.gth_fallback,sim.worker.samples_per_s
./target/release/nsr obs-check --file "$SMOKE_DIR/trace.jsonl"
# Without the flags the observability layer must stay silent: no snapshot
# lines in the output and nothing written.
PLAIN_OUT="$(./target/release/nsr sim --config ft1-nir --samples 20 --seed 7)"
if printf '%s' "$PLAIN_OUT" | grep -q 'records'; then
    echo "ERROR: plain run mentioned observability snapshots" >&2
    exit 1
fi

echo "==> flight-recorder smoke (causal trace, post-mortems, renderers)"
# A seeded fault-injection campaign that loses data must produce a causal
# v2 trace whose post-mortem spans and campaign events pass the obs-check
# structural pass, and the artifact renderer must accept the files.
./target/release/nsr inject --plan burst --config ft1-nir --runs 20 --seed 7 \
    --metrics-out "$SMOKE_DIR/inject-metrics.jsonl" \
    --trace-out "$SMOKE_DIR/inject-trace.jsonl"
./target/release/nsr obs-check --file "$SMOKE_DIR/inject-trace.jsonl" \
    --require span:sim.postmortem,event:sim.postmortem.event,event:sim.inject.campaign
./target/release/nsr report --metrics "$SMOKE_DIR/inject-metrics.jsonl" \
    --trace "$SMOKE_DIR/inject-trace.jsonl" --check
./target/release/nsr report --metrics "$SMOKE_DIR/inject-metrics.jsonl" \
    --trace "$SMOKE_DIR/inject-trace.jsonl" > "$SMOKE_DIR/flight.md"
grep -q 'sim.postmortem' "$SMOKE_DIR/flight.md"
# The analytic decision record must name the solver tier.
./target/release/nsr explain ft7-nir | grep -q 'sparse GTH'
# Disabled-path overhead stays within a generous threshold of the
# checked-in obs baseline. Only the disabled/ no-ops are gated: their
# timings are mode-independent, while enabled-path smoke timings are not
# comparable to the full-mode baseline. This guards against
# order-of-magnitude regressions on the hot no-op path, not jitter.
./target/release/nsr bench --suite obs --smoke --out-dir "$SMOKE_DIR"
./target/release/nsr bench --compare BENCH_obs.json "$SMOKE_DIR/BENCH_obs.json" \
    --only disabled/ --threshold 400

echo "==> cluster smoke (live brick daemons on loopback, kill -9, rebuild)"
# Four real brick child processes, one kill -9 mid-campaign: zero data
# loss, automatic rebuild to the spare, and a causal trace that passes
# the structural checks. Then the determinism contract: the same
# above-t burst campaign replayed twice must emit byte-identical
# verdict and loss-signature lines (timing-dependent `info` lines are
# excluded). Loopback only, no network access.
./target/release/nsr cluster-inject --bricks 4 --plan kill9-single --seed 42 \
    --trace-out "$SMOKE_DIR/cluster-trace.jsonl" | grep -q 'verdict=NO-LOSS lost=0'
./target/release/nsr obs-check --file "$SMOKE_DIR/cluster-trace.jsonl" \
    --require span:net.rebuild,event:net.detect.dead,event:net.cluster.kill9
./target/release/nsr report --trace "$SMOKE_DIR/cluster-trace.jsonl" --check
./target/release/nsr cluster-inject --bricks 6 --plan kill9-burst --seed 1 \
    | grep -E '^(campaign|verdict|loss)' > "$SMOKE_DIR/burst-a.txt"
./target/release/nsr cluster-inject --bricks 6 --plan kill9-burst --seed 1 \
    | grep -E '^(campaign|verdict|loss)' > "$SMOKE_DIR/burst-b.txt"
diff "$SMOKE_DIR/burst-a.txt" "$SMOKE_DIR/burst-b.txt"
grep -q 'verdict=LOSS' "$SMOKE_DIR/burst-a.txt"

echo "==> cluster telemetry smoke (scrape plane, stitched post-mortems)"
# A seeded campaign with --obs-dir live-scrapes every brick child over
# the wire (victims immediately before each kill -9, survivors at the
# end), stitches the per-process trace parts into one canonical
# cross-process causal tree, and the merged artifact must pass the
# report checks: every remote parent resolves. The gateway-side metrics
# snapshot must carry the scrape-plane counters, with the collector
# counter actually exercised. Replayed at different pool sizes and
# verify-worker counts, the spans-only view of the canonical trace must
# be byte-identical (events carry wall-clock detector readings and are
# excluded by contract — see DESIGN §3k).
./target/release/nsr cluster-inject --bricks 5 --plan kill9-single --seed 7 \
    --no-fault-writes --obs-dir "$SMOKE_DIR/clusterobs" \
    --metrics-out "$SMOKE_DIR/cluster-scrape-metrics.jsonl" \
    | grep -q 'verdict=NO-LOSS lost=0'
./target/release/nsr obs-check --file "$SMOKE_DIR/cluster-scrape-metrics.jsonl" \
    --require net.scrape.collected,net.scrape.requests,net.scrape.lines
./target/release/nsr report --cluster "$SMOKE_DIR/clusterobs" --check
grep -q 'net.put/brick-' "$SMOKE_DIR/clusterobs/cluster.canonical.jsonl"
grep '"kind":"span"' "$SMOKE_DIR/clusterobs/cluster.canonical.jsonl" \
    > "$SMOKE_DIR/cluster-spans-a.txt"
./target/release/nsr cluster-inject --bricks 5 --plan kill9-single --seed 7 \
    --no-fault-writes --pool-size 8 --workers 4 \
    --obs-dir "$SMOKE_DIR/clusterobs2" > /dev/null
grep '"kind":"span"' "$SMOKE_DIR/clusterobs2/cluster.canonical.jsonl" \
    > "$SMOKE_DIR/cluster-spans-b.txt"
diff "$SMOKE_DIR/cluster-spans-a.txt" "$SMOKE_DIR/cluster-spans-b.txt"

echo "==> fleet smoke (deterministic fleet mission, estimator cross-check)"
# A seeded fleet mission must surface the fleet counters in its metrics
# snapshot, both rare-event estimators must land within 4 sigma of the
# analytic MTTDL (PASS lines), and the replay-determinism contract must
# hold: the same seed at different worker counts emits byte-identical
# output including the canonical trace.
./target/release/nsr fleet --config ft2-ir5 --bricks 6400 --years 5 --seed 7 \
    --estimator all --cycles 4000 \
    --metrics-out "$SMOKE_DIR/fleet-metrics.jsonl" > "$SMOKE_DIR/fleet-out.txt"
grep -q 'crosscheck importance: PASS' "$SMOKE_DIR/fleet-out.txt"
grep -q 'crosscheck splitting: PASS' "$SMOKE_DIR/fleet-out.txt"
./target/release/nsr obs-check --file "$SMOKE_DIR/fleet-metrics.jsonl" \
    --require sim.fleet.events,sim.fleet.failures,sim.fleet.losses
./target/release/nsr fleet --config ft1-nir --bricks 3200 --years 5 --seed 11 \
    --workers 1 --trace > "$SMOKE_DIR/fleet-w1.txt"
./target/release/nsr fleet --config ft1-nir --bricks 3200 --years 5 --seed 11 \
    --workers 4 --trace > "$SMOKE_DIR/fleet-w4.txt"
diff "$SMOKE_DIR/fleet-w1.txt" "$SMOKE_DIR/fleet-w4.txt"

echo "==> serving smoke (workload generator, pool metrics, serving bench gate)"
# A short seeded workload must drive the healthy -> degraded -> rebuilding
# phases end to end and surface the connection-pool and serving-latency
# metrics in its snapshot. Then the serving suite gets the same
# deterministic compare gate as sweep: identical reports pass, a
# uniformly slowed-down copy must fail.
./target/release/nsr workload --ops 120 --object-bytes 4096 --seed 42 \
    --metrics-out "$SMOKE_DIR/workload-metrics.jsonl" | grep -q '^rebuilding'
./target/release/nsr obs-check --file "$SMOKE_DIR/workload-metrics.jsonl" \
    --require net.pool.reuses,net.pool.keepalives,net.serving.put_s,net.serving.get_s
./target/release/nsr bench --suite serving --smoke --out-dir "$SMOKE_DIR"
./target/release/nsr bench --check --out-dir "$SMOKE_DIR"
cp "$SMOKE_DIR/BENCH_serving.json" "$SMOKE_DIR/BENCH_serving.old.json"
./target/release/nsr bench --compare "$SMOKE_DIR/BENCH_serving.old.json" \
    "$SMOKE_DIR/BENCH_serving.json"
sed 's/"ns_per_iter": /"ns_per_iter": 9/' "$SMOKE_DIR/BENCH_serving.json" \
    > "$SMOKE_DIR/BENCH_serving.slow.json"
if ./target/release/nsr bench --compare "$SMOKE_DIR/BENCH_serving.old.json" \
    "$SMOKE_DIR/BENCH_serving.slow.json" > /dev/null 2>&1; then
    echo "ERROR: bench --compare missed a serving regression" >&2
    exit 1
fi

echo "==> planner smoke (grid search, golden frontier, plan bench gate)"
# The 3x3x3 golden grid must reproduce the checked-in frontier CSV
# byte-for-byte at 1 and 4 workers and in exhaustive mode (the planner's
# determinism + pruning-soundness contract), the metrics snapshot must
# carry the elimination-program reuse counters, and the plan bench suite
# gets the same two-direction compare gate as sweep: identical reports
# pass, a slowdown fails, and the same perturbation read as an
# improvement passes.
PLAN_GRID="--grid --grid-nodes 64 --grid-k 2,4,6 --grid-t 1,2,3 \
    --grid-ir nir,ir5,ir6 --grid-spares 0.25 --grid-bw 0.1 --csv"
./target/release/nsr plan $PLAN_GRID --workers 1 > "$SMOKE_DIR/plan-w1.csv"
./target/release/nsr plan $PLAN_GRID --workers 4 > "$SMOKE_DIR/plan-w4.csv"
./target/release/nsr plan $PLAN_GRID --exhaustive > "$SMOKE_DIR/plan-ex.csv"
diff crates/cli/tests/golden/plan_frontier_3x3x3.csv "$SMOKE_DIR/plan-w1.csv"
diff "$SMOKE_DIR/plan-w1.csv" "$SMOKE_DIR/plan-w4.csv"
diff "$SMOKE_DIR/plan-w1.csv" "$SMOKE_DIR/plan-ex.csv"
./target/release/nsr plan $PLAN_GRID \
    --metrics-out "$SMOKE_DIR/plan-metrics.jsonl" > /dev/null
./target/release/nsr obs-check --file "$SMOKE_DIR/plan-metrics.jsonl" \
    --require core.plan.skeleton_builds,core.plan.skeleton_reuses,core.plan.pruned,markov.batch.solves
./target/release/nsr bench --suite plan --smoke --out-dir "$SMOKE_DIR"
cp "$SMOKE_DIR/BENCH_plan.json" "$SMOKE_DIR/BENCH_plan.old.json"
./target/release/nsr bench --compare "$SMOKE_DIR/BENCH_plan.old.json" \
    "$SMOKE_DIR/BENCH_plan.json"
sed 's/"ns_per_iter": /"ns_per_iter": 9/' "$SMOKE_DIR/BENCH_plan.json" \
    > "$SMOKE_DIR/BENCH_plan.slow.json"
if ./target/release/nsr bench --compare "$SMOKE_DIR/BENCH_plan.old.json" \
    "$SMOKE_DIR/BENCH_plan.slow.json" > /dev/null 2>&1; then
    echo "ERROR: bench --compare missed a plan regression" >&2
    exit 1
fi
# Read the other way round the same perturbation is an improvement and
# must pass — the gate is directional, not a symmetric-change detector.
./target/release/nsr bench --compare "$SMOKE_DIR/BENCH_plan.slow.json" \
    "$SMOKE_DIR/BENCH_plan.old.json"

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all checks passed"
