//! Small, dependency-free, seedable pseudo-random number generation.
//!
//! The repository must build and test in a network-isolated environment, so
//! external RNG crates are out. This crate provides the narrow API surface
//! the simulators and tests actually use, with a deliberately `rand`-like
//! shape (`rngs::StdRng`, [`SeedableRng::seed_from_u64`], a generic
//! [`Rng::random`]) so call sites read the same:
//!
//! ```
//! use nsr_rng::rngs::StdRng;
//! use nsr_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.random();
//! assert!((0.0..1.0).contains(&u));
//! ```
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** (Blackman &
//! Vigna), seeded through SplitMix64 so that any `u64` seed — including
//! zero — yields a well-mixed state. Determinism is a hard guarantee: the
//! stream for a given seed is fixed forever, because fault-injection replay
//! (`nsr-sim::faultinject`) and the golden tests depend on it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A source of pseudo-random numbers.
///
/// Object-safety is not required by the call sites, but every generic bound
/// in the workspace is `R: Rng + ?Sized` (mirroring `rand`), so all provided
/// methods work through `&mut R` without requiring `Self: Sized`.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T`; for floats this is uniform in `[0, 1)`.
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo < hi` and finite bounds.
    fn random_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi && lo.is_finite() && hi.is_finite());
        let u: f64 = self.random();
        lo + (hi - lo) * u
    }

    /// Uniform `usize` in `[lo, hi)` by rejection-free multiply-shift.
    /// Requires `lo < hi`.
    fn random_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let x = self.next_u64() as u128;
        lo + ((x * span) >> 64) as usize
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24-bit resolution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// 256 bits of state, period 2^256 − 1, passes BigCrush; seeding goes
    /// through SplitMix64 so correlated or all-zero seeds are safe. The
    /// output stream for a given seed is frozen — replay determinism across
    /// the whole repository depends on it.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut rng = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4600..5400).contains(&heads), "{heads}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.random_range_f64(-3.0, 4.5);
            assert!((-3.0..4.5).contains(&x));
            let k = rng.random_range_usize(2, 9);
            assert!((2..9).contains(&k));
        }
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn stream_is_frozen() {
        // Golden values: replay determinism across the repo depends on
        // this exact stream. Never change the generator or the seeding.
        let mut rng = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
    }
}
