//! Small, dependency-free, seedable pseudo-random number generation.
//!
//! The repository must build and test in a network-isolated environment, so
//! external RNG crates are out. This crate provides the narrow API surface
//! the simulators and tests actually use, with a deliberately `rand`-like
//! shape (`rngs::StdRng`, [`SeedableRng::seed_from_u64`], a generic
//! [`Rng::random`]) so call sites read the same:
//!
//! ```
//! use nsr_rng::rngs::StdRng;
//! use nsr_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.random();
//! assert!((0.0..1.0).contains(&u));
//! ```
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** (Blackman &
//! Vigna), seeded through SplitMix64 so that any `u64` seed — including
//! zero — yields a well-mixed state. Determinism is a hard guarantee: the
//! stream for a given seed is fixed forever, because fault-injection replay
//! (`nsr-sim::faultinject`) and the golden tests depend on it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A source of pseudo-random numbers.
///
/// Object-safety is not required by the call sites, but every generic bound
/// in the workspace is `R: Rng + ?Sized` (mirroring `rand`), so all provided
/// methods work through `&mut R` without requiring `Self: Sized`.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T`; for floats this is uniform in `[0, 1)`.
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform `f64` in `[lo, hi)`. Requires `lo < hi` and finite bounds.
    fn random_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi && lo.is_finite() && hi.is_finite());
        let u: f64 = self.random();
        lo + (hi - lo) * u
    }

    /// Uniform `usize` in `[lo, hi)` by rejection-free multiply-shift.
    /// Requires `lo < hi`.
    fn random_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let x = self.next_u64() as u128;
        lo + ((x * span) >> 64) as usize
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24-bit resolution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A *stateless* counter-based generator: every output is a pure function
/// of `(seed, stream, counter)`.
///
/// Sequential generators like [`rngs::StdRng`] force an ordering on draws —
/// whoever draws first changes everyone else's values — which couples a
/// parallel simulation's results to its thread count. A counter-based
/// generator removes the coupling: each simulated entity owns a `stream`
/// (its stable id) and a private draw `counter`, so its variates are
/// identical no matter how work is sharded. The fleet simulator
/// (`nsr-sim::fleet`) relies on this for its byte-identical-at-any-worker-
/// count guarantee.
///
/// The mixer is three rounds of the SplitMix64 finalizer over the XORed
/// inputs — cheap, and statistically far better than the simulation needs.
/// Like `StdRng`, the output for a given `(seed, stream, counter)` triple
/// is frozen forever: fleet replay determinism depends on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// Builds a generator keyed by `seed`.
    pub fn new(seed: u64) -> CounterRng {
        // Pre-mix the seed so nearby seeds give unrelated keys.
        CounterRng {
            key: mix(seed ^ 0x6a09_e667_f3bc_c908),
        }
    }

    /// The 64 uniform bits at position `counter` of stream `stream`.
    pub fn u64_at(&self, stream: u64, counter: u64) -> u64 {
        // Distinct odd multipliers keep (stream, counter) and
        // (counter, stream) from colliding.
        mix(self
            .key
            .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(counter.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)))
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit mantissa resolution
    /// (same mapping as [`Sample`] for `f64`).
    pub fn f64_at(&self, stream: u64, counter: u64) -> f64 {
        (self.u64_at(stream, counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A sequential [`Rng`] view of one stream, starting at `counter`.
    /// Useful for feeding stream-local draws into generic samplers.
    pub fn stream(&self, stream: u64, counter: u64) -> StreamRng {
        StreamRng {
            crng: *self,
            stream,
            counter,
        }
    }
}

/// Sequential adapter over one [`CounterRng`] stream.
///
/// Draws `counter, counter+1, …` of the stream in order; the final counter
/// position can be read back with [`StreamRng::counter`] so a caller can
/// persist per-entity draw positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRng {
    crng: CounterRng,
    stream: u64,
    counter: u64,
}

impl StreamRng {
    /// The next counter position this stream will consume.
    pub fn counter(&self) -> u64 {
        self.counter
    }
}

impl Rng for StreamRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.crng.u64_at(self.stream, self.counter);
        self.counter = self.counter.wrapping_add(1);
        out
    }
}

/// SplitMix64 finalizer (Stafford's Mix13 variant), applied three times by
/// [`CounterRng`]; one application is the classical SplitMix64 step.
fn mix(x: u64) -> u64 {
    let mut z = x;
    for _ in 0..3 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// 256 bits of state, period 2^256 − 1, passes BigCrush; seeding goes
    /// through SplitMix64 so correlated or all-zero seeds are safe. The
    /// output stream for a given seed is frozen — replay determinism across
    /// the whole repository depends on it.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut rng = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4600..5400).contains(&heads), "{heads}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.random_range_f64(-3.0, 4.5);
            assert!((-3.0..4.5).contains(&x));
            let k = rng.random_range_usize(2, 9);
            assert!((2..9).contains(&k));
        }
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn counter_rng_is_pure_and_order_free() {
        use super::CounterRng;
        let c = CounterRng::new(42);
        // Pure function: same triple, same output, regardless of call order.
        let forward: Vec<u64> = (0..64).map(|i| c.u64_at(7, i)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|i| c.u64_at(7, i)).collect();
        assert!(forward.iter().eq(backward.iter().rev()));
        // Distinct streams, counters, and seeds all decorrelate.
        assert_ne!(c.u64_at(7, 0), c.u64_at(8, 0));
        assert_ne!(c.u64_at(7, 0), c.u64_at(0, 7));
        assert_ne!(c.u64_at(7, 0), CounterRng::new(43).u64_at(7, 0));
        // f64 mapping stays in [0, 1) and is roughly uniform.
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| c.f64_at(1, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn stream_rng_matches_direct_indexing() {
        use super::CounterRng;
        let c = CounterRng::new(9);
        let mut s = c.stream(5, 100);
        for i in 100..110 {
            assert_eq!(s.next_u64(), c.u64_at(5, i));
        }
        assert_eq!(s.counter(), 110);
        let u: f64 = s.random();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn stream_is_frozen() {
        // Golden values: replay determinism across the repo depends on
        // this exact stream. Never change the generator or the seeding.
        let mut rng = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
    }
}
