use std::fmt;

/// Errors produced by linear-algebra operations.
///
/// All operations validate their inputs (dimension agreement, non-empty
/// shapes) and report failures through this type rather than panicking,
/// except for plain index access which panics like slice indexing does.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        right: (usize, usize),
    },
    /// A square matrix was required but the operand was rectangular.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix was singular to working precision.
    ///
    /// `pivot` is the elimination column at which no usable pivot remained.
    Singular {
        /// Column index at which factorization broke down.
        pivot: usize,
    },
    /// A matrix with zero rows or columns was supplied where a non-empty
    /// matrix is required.
    Empty,
    /// Rows of a jagged row-slice constructor had differing lengths.
    JaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Index of the first row whose length differs.
        row: usize,
        /// Length of that row.
        found: usize,
    },
    /// A numeric argument was not finite.
    NotFinite {
        /// Human-readable name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Error::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            Error::Singular { pivot } => {
                write!(
                    f,
                    "matrix is singular to working precision at pivot column {pivot}"
                )
            }
            Error::Empty => write!(f, "matrix must be non-empty"),
            Error::JaggedRows {
                expected,
                row,
                found,
            } => write!(
                f,
                "jagged rows: row 0 has length {expected} but row {row} has length {found}"
            ),
            Error::NotFinite { op } => write!(f, "non-finite value encountered in {op}"),
        }
    }
}

impl std::error::Error for Error {}
