use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::{Error, Result};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container for the CTMC generator matrices built
/// by the reliability models. It stores its elements contiguously and
/// supports the usual arithmetic via operator overloads on references
/// (`&a + &b`, `&a * &b`), which never consume their operands.
///
/// # Example
///
/// ```
/// use nsr_linalg::Matrix;
///
/// # fn main() -> Result<(), nsr_linalg::Error> {
/// let i = Matrix::identity(3);
/// let a = Matrix::from_fn(3, 3, |r, c| (r + c) as f64);
/// let b = (&a * &i)?;
/// assert_eq!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// ```
    /// use nsr_linalg::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// ```
    /// use nsr_linalg::Matrix;
    /// let i = Matrix::identity(2);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    ///
    /// ```
    /// use nsr_linalg::Matrix;
    /// let m = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
    /// assert_eq!(m, Matrix::identity(2));
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] for an empty input and [`Error::JaggedRows`]
    /// if the rows do not all have the same length.
    ///
    /// ```
    /// use nsr_linalg::Matrix;
    /// # fn main() -> Result<(), nsr_linalg::Error> {
    /// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// assert_eq!(m[(1, 0)], 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(Error::JaggedRows {
                    expected: cols,
                    row: i,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != rows * cols`
    /// and [`Error::Empty`] for a zero-sized shape.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(Error::Empty);
        }
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a freshly allocated vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column index {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Checked element access.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Flat row-major view of the element storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the flat row-major element storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    ///
    /// ```
    /// use nsr_linalg::Matrix;
    /// let m = Matrix::from_fn(2, 3, |r, c| (3 * r + c) as f64);
    /// let t = m.transpose();
    /// assert_eq!(t.shape(), (3, 2));
    /// assert_eq!(t[(2, 1)], m[(1, 2)]);
    /// ```
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Multiplies the matrix by a column vector, returning `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.cols()`.
    ///
    /// ```
    /// use nsr_linalg::Matrix;
    /// # fn main() -> Result<(), nsr_linalg::Error> {
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// assert_eq!(a.mul_vec(&[1.0, 1.0])?, vec![3.0, 7.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(Error::DimensionMismatch {
                op: "mul_vec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Multiplies a row vector by the matrix, returning `xᵗ·A`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(Error::DimensionMismatch {
                op: "vec_mul",
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        self.vec_mul_accumulate(x, &mut out);
        Ok(out)
    }

    /// Multiplies a row vector by the matrix into a caller-provided
    /// buffer (`out = xᵗ·A`), overwriting it. Allocation-free: batched
    /// iterations (uniformization power steps, repeated transient
    /// queries) can ping-pong two buffers instead of allocating one
    /// vector per step. Produces bit-identical values to
    /// [`Matrix::vec_mul`] — same accumulation order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `x.len() != self.rows()`
    /// or `out.len() != self.cols()`.
    pub fn vec_mul_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.rows || out.len() != self.cols {
            return Err(Error::DimensionMismatch {
                op: "vec_mul_into",
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        out.fill(0.0);
        self.vec_mul_accumulate(x, out);
        Ok(())
    }

    /// Shared kernel of [`Matrix::vec_mul`] / [`Matrix::vec_mul_into`]:
    /// accumulates `xᵗ·A` into `out` (assumed zeroed, lengths checked by
    /// the callers).
    fn vec_mul_accumulate(&self, x: &[f64], out: &mut [f64]) {
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r).iter().enumerate() {
                out[c] += xr * v;
            }
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Maximum absolute row sum (the operator ∞-norm).
    ///
    /// ```
    /// use nsr_linalg::Matrix;
    /// # fn main() -> Result<(), nsr_linalg::Error> {
    /// let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]])?;
    /// assert_eq!(a.norm_inf(), 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute column sum (the operator 1-norm).
    pub fn norm_one(&self) -> f64 {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r).iter().enumerate() {
                sums[c] += v.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// Frobenius norm (`sqrt(Σ aᵢⱼ²)`).
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `true` when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Extracts the square submatrix obtained by deleting the rows in
    /// `drop_rows` and the columns in `drop_cols` (both must be sorted and
    /// deduplicated by the caller; out-of-range entries are ignored).
    pub fn minor(&self, drop_rows: &[usize], drop_cols: &[usize]) -> Matrix {
        let keep_rows: Vec<usize> = (0..self.rows).filter(|r| !drop_rows.contains(r)).collect();
        let keep_cols: Vec<usize> = (0..self.cols).filter(|c| !drop_cols.contains(c)).collect();
        Matrix::from_fn(keep_rows.len(), keep_cols.len(), |r, c| {
            self[(keep_rows[r], keep_cols[c])]
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Result<Matrix>;

    fn add(self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::DimensionMismatch {
                op: "add",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Sub for &Matrix {
    type Output = Result<Matrix>;

    fn sub(self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::DimensionMismatch {
                op: "sub",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Mul for &Matrix {
    type Output = Result<Matrix>;

    fn mul(self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                op: "mul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for (c, v) in self.row(r).iter().enumerate() {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:>12.6e}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_jagged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(
            err,
            Error::JaggedRows {
                expected: 2,
                row: 1,
                found: 1
            }
        ));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), Error::Empty);
        let empty_row: &[f64] = &[];
        assert_eq!(Matrix::from_rows(&[empty_row]).unwrap_err(), Error::Empty);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err(),
            Error::DimensionMismatch { .. }
        ));
        assert_eq!(Matrix::from_vec(0, 2, vec![]).unwrap_err(), Error::Empty);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 7 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matrix_vector_products() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 0.0]).unwrap(), vec![1.0, 3.0]);
        assert_eq!(a.vec_mul(&[1.0, 0.0]).unwrap(), vec![1.0, 2.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
        assert!(a.vec_mul(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn mul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::identity(3);
        assert_eq!((&a * &i).unwrap(), a);
        assert_eq!((&i * &a).unwrap(), a);
    }

    #[test]
    fn mul_rectangular_shapes() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f64);
        let c = (&a * &b).unwrap();
        assert_eq!(c.shape(), (2, 4));
        // Element (1, 2): sum_k a[1,k] * b[k,2] = 1*0 + 2*2 + 3*4 = 16
        assert_eq!(c[(1, 2)], 16.0);
        assert!((&b * &a).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(2, 2, |r, c| (10 * r + c) as f64);
        let s = (&a + &b).unwrap();
        let back = (&s - &b).unwrap();
        assert_eq!(back, a);
        let bad = Matrix::zeros(3, 2);
        assert!((&a + &bad).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.0, 3.0]]).unwrap();
        assert_eq!(a.norm_inf(), 3.0);
        assert_eq!(a.norm_one(), 5.0);
        assert!((a.norm_frobenius() - (14.0f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn minor_removes_rows_and_cols() {
        let a = Matrix::from_fn(3, 3, |r, c| (3 * r + c) as f64);
        let m = a.minor(&[0], &[0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 0)], 4.0);
        assert_eq!(m[(1, 1)], 8.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn get_checked() {
        let a = Matrix::identity(2);
        assert_eq!(a.get(0, 0), Some(1.0));
        assert_eq!(a.get(2, 0), None);
        assert_eq!(a.get(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::identity(2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn scale_and_neg() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = (-&a).scaled(-1.0);
        assert_eq!(a, b);
        let mut c = a.clone();
        c.scale_mut(2.0);
        assert_eq!(c[(1, 1)], 4.0);
    }
}
