use crate::{Error, Matrix, Result};

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// The factorization is computed once and can then be reused to solve many
/// right-hand sides, compute the determinant, or form the explicit inverse.
/// This is the numerical engine behind the exact CTMC solutions: the mean
/// time to absorption of a chain with absorption matrix `R` is
/// `e₁ᵀ R⁻¹ 1`, evaluated as one [`Lu::solve`] call.
///
/// # Example
///
/// ```
/// use nsr_linalg::{Matrix, Lu};
///
/// # fn main() -> Result<(), nsr_linalg::Error> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0],
///                             &[4.0, -6.0, 0.0],
///                             &[-2.0, 7.0, 2.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[5.0, -2.0, 9.0])?;
/// let r = a.mul_vec(&x)?;
/// assert!((r[0] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds `L` (unit diagonal
    /// implied), upper triangle holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// `+1.0` or `-1.0`: sign of the permutation, used by [`Lu::det`].
    sign: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] if `a` is rectangular.
    /// * [`Error::Empty`] if `a` has zero size.
    /// * [`Error::NotFinite`] if `a` contains NaN or infinities.
    /// * [`Error::Singular`] if no usable pivot remains at some column.
    pub fn factor(a: &Matrix) -> Result<Lu> {
        if a.rows() == 0 || a.cols() == 0 {
            return Err(Error::Empty);
        }
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        if !a.is_finite() {
            return Err(Error::NotFinite { op: "lu_factor" });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max == 0.0 {
                return Err(Error::Singular { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let m = lu[(r, k)] / pivot;
                lu[(r, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let v = lu[(k, c)];
                    lu[(r, c)] -= m * v;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix (product of `U`'s diagonal times
    /// the permutation sign).
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for (c, &xc) in x.iter().enumerate().take(r) {
                acc -= self.lu[(r, c)] * xc;
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (c, &xc) in x.iter().enumerate().skip(r + 1) {
                acc -= self.lu[(r, c)] * xc;
            }
            x[r] = acc / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Solves `Aᵗ·x = b` without re-factoring (useful for the row-vector
    /// equation `τ·R = π₀` that appears in CTMC absorption analysis).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "lu_solve_transposed",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // PA = LU  =>  Aᵗ = UᵗLᵗP, so solve Uᵗy = b, then Lᵗz = y, then
        // x = Pᵗz (undo the row permutation).
        let mut y = b.to_vec();
        for r in 0..n {
            let mut acc = y[r];
            for (c, &yc) in y.iter().enumerate().take(r) {
                acc -= self.lu[(c, r)] * yc;
            }
            y[r] = acc / self.lu[(r, r)];
        }
        for r in (0..n).rev() {
            let mut acc = y[r];
            for (c, &yc) in y.iter().enumerate().skip(r + 1) {
                acc -= self.lu[(c, r)] * yc;
            }
            y[r] = acc;
        }
        let mut x = vec![0.0; n];
        for (pos, &orig) in self.perm.iter().enumerate() {
            x[orig] = y[pos];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `B` has a different number of
    /// rows than the factored matrix.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(Error::DimensionMismatch {
                op: "lu_solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }

    /// Explicit inverse `A⁻¹`.
    ///
    /// Prefer [`Lu::solve`] when only `A⁻¹·b` is needed; the explicit
    /// inverse exists for condition-number estimation and small-matrix
    /// convenience.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (cannot happen for a successfully factored
    /// matrix of matching size).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Solves `A·x = b` with one step of iterative refinement, reducing the
    /// residual for ill-conditioned systems (absorption matrices of highly
    /// reliable configurations mix rates spanning ~10 orders of magnitude).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if shapes disagree.
    pub fn solve_refined(&self, a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
        if a.shape() != (self.dim(), self.dim()) {
            return Err(Error::DimensionMismatch {
                op: "lu_solve_refined",
                left: (self.dim(), self.dim()),
                right: a.shape(),
            });
        }
        let mut x = self.solve(b)?;
        for _ in 0..2 {
            let ax = a.mul_vec(&x)?;
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            let resid_norm = r.iter().map(|v| v.abs()).fold(0.0, f64::max);
            if resid_norm == 0.0 {
                break;
            }
            let dx = self.solve(&r)?;
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
        }
        Ok(x)
    }

    /// Estimate of the ∞-norm condition number `κ∞(A) = ‖A‖∞·‖A⁻¹‖∞`,
    /// computed from the explicit inverse.
    ///
    /// # Errors
    ///
    /// Propagates solver errors from forming the inverse.
    pub fn cond_inf(&self, a: &Matrix) -> Result<f64> {
        Ok(a.norm_inf() * self.inverse()?.norm_inf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() <= tol * scale, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert_close(x[0], 0.8, 1e-14);
        assert_close(x[1], 1.4, 1e-14);
    }

    #[test]
    fn det_of_known_matrices() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_close(Lu::factor(&a).unwrap().det(), -2.0, 1e-14);
        assert_close(Lu::factor(&Matrix::identity(5)).unwrap().det(), 1.0, 1e-14);
        // Permutation matrix with one swap has determinant -1.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert_close(Lu::factor(&p).unwrap().det(), -1.0, 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            Lu::factor(&a).unwrap_err(),
            Error::Singular { .. }
        ));
        let z = Matrix::zeros(3, 3);
        assert!(matches!(
            Lu::factor(&z).unwrap_err(),
            Error::Singular { pivot: 0 }
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&rect).unwrap_err(),
            Error::NotSquare { .. }
        ));
        let mut nan = Matrix::identity(2);
        nan[(0, 1)] = f64::NAN;
        assert!(matches!(
            Lu::factor(&nan).unwrap_err(),
            Error::NotFinite { .. }
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let prod = (&a * &inv).unwrap();
        let diff = (&prod - &Matrix::identity(3)).unwrap();
        assert!(diff.norm_inf() < 1e-12);
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a =
            Matrix::from_rows(&[&[3.0, 1.0, 0.5], &[-1.0, 4.0, 2.0], &[0.25, -2.0, 5.0]]).unwrap();
        let b = [1.0, -2.0, 3.0];
        let lu = Lu::factor(&a).unwrap();
        let x1 = lu.solve_transposed(&b).unwrap();
        let lut = Lu::factor(&a.transpose()).unwrap();
        let x2 = lut.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert_close(*u, *v, 1e-12);
        }
    }

    #[test]
    fn solve_matrix_columns() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        assert_close(x[(0, 0)], 1.0, 1e-14);
        assert_close(x[(0, 1)], 2.0, 1e-14);
        assert_close(x[(1, 0)], 1.0, 1e-14);
        assert_close(x[(1, 1)], 2.0, 1e-14);
    }

    #[test]
    fn refinement_does_not_hurt_well_conditioned_systems() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let b = [1.5, 1.5];
        let x = lu.solve_refined(&a, &b).unwrap();
        assert_close(x[0], 1.0, 1e-14);
        assert_close(x[1], 1.0, 1e-14);
    }

    #[test]
    fn hilbert_matrix_refinement() {
        // The 8x8 Hilbert matrix is notoriously ill-conditioned; refinement
        // should keep the residual tiny even if the error is not.
        let n = 8;
        let h = Matrix::from_fn(n, n, |r, c| 1.0 / ((r + c + 1) as f64));
        let ones = vec![1.0; n];
        let b = h.mul_vec(&ones).unwrap();
        let lu = Lu::factor(&h).unwrap();
        let x = lu.solve_refined(&h, &b).unwrap();
        let hx = h.mul_vec(&x).unwrap();
        let resid: f64 = b
            .iter()
            .zip(&hx)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0, f64::max);
        assert!(resid < 1e-10, "residual {resid}");
    }

    #[test]
    fn cond_inf_of_identity_is_one() {
        let i = Matrix::identity(4);
        let lu = Lu::factor(&i).unwrap();
        assert_close(lu.cond_inf(&i).unwrap(), 1.0, 1e-14);
    }

    #[test]
    fn dimension_mismatch_errors() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_transposed(&[1.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
        assert!(lu
            .solve_refined(&Matrix::zeros(2, 2), &[1.0, 2.0, 3.0])
            .is_err());
    }
}
