//! Small, dependency-free dense linear-algebra kernel.
//!
//! The reliability models in this workspace reduce to solving linear systems
//! built from the infinitesimal generator of a continuous-time Markov chain
//! (CTMC). The appendix of *Reliability for Networked Storage Nodes* (Rao,
//! Hafner, Golding; DSN 2006) computes the mean time to data loss as
//!
//! ```text
//! MTTDL = ⟨1, 0, …, 0⟩ · R⁻¹ · ⟨1, …, 1⟩ᵗ
//! ```
//!
//! where `R = −Q_B` is the *absorption matrix* of the chain. This crate
//! provides exactly the numerics needed for that computation — and nothing
//! more exotic:
//!
//! * [`Matrix`]: a dense row-major `f64` matrix with the usual arithmetic,
//! * [`Lu`]: LU factorization with partial pivoting, giving
//!   [`Lu::solve`], [`Lu::det`], [`Lu::inverse`] and iterative refinement,
//! * [`BandedLu`]: the same factorization in `gbtrf`-style band storage
//!   for the near-tridiagonal repair chains, with [`bandwidth`] profiling
//!   and the [`AnyLu`] tier that picks the cheaper layout automatically,
//! * free vector helpers in [`vector`].
//!
//! # Why hand-rolled?
//!
//! The build environment allows only a small set of third-party crates, none
//! of which provide linear algebra, so the kernel is implemented here with an
//! extensive test-suite (including property tests) instead. Matrices in this
//! workspace are small (the largest CTMC solved has `2^(k+1) − 1 ≤ 127`
//! transient states), so an unblocked LU is entirely adequate.
//!
//! # Example
//!
//! ```
//! use nsr_linalg::{Matrix, Lu};
//!
//! # fn main() -> Result<(), nsr_linalg::Error> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = Lu::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! assert!((1.0 * x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod banded;
mod error;
mod lu;
mod matrix;
pub mod vector;

pub use banded::{banded_pays_off, bandwidth, AnyLu, BandedLu};
pub use error::Error;
pub use lu::Lu;
pub use matrix::Matrix;

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;
