//! Free functions on `&[f64]` vectors.
//!
//! These helpers intentionally operate on plain slices so they compose with
//! `Vec<f64>`, arrays and matrix rows alike.

/// Dot product `Σ aᵢ·bᵢ`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(nsr_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm `sqrt(Σ aᵢ²)`.
///
/// ```
/// assert_eq!(nsr_linalg::vector::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute element.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

/// Sum of absolute elements.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Sum of all elements.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Normalizes `a` in place so that its elements sum to one; returns `false`
/// (leaving `a` untouched) when the sum is zero or non-finite.
pub fn normalize_prob(a: &mut [f64]) -> bool {
    let s = sum(a);
    if s == 0.0 || !s.is_finite() {
        return false;
    }
    for v in a.iter_mut() {
        *v /= s;
    }
    true
}

/// Largest relative elementwise difference between `a` and `b`, using
/// `max(|aᵢ|, |bᵢ|, floor)` as the per-element scale.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_rel_diff(a: &[f64], b: &[f64], floor: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "max_rel_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(floor))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(sum(&[1.0, 2.0, -0.5]), 2.5);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn normalize_prob_handles_degenerate() {
        let mut p = vec![2.0, 2.0];
        assert!(normalize_prob(&mut p));
        assert_eq!(p, vec![0.5, 0.5]);
        let mut zero = vec![0.0, 0.0];
        assert!(!normalize_prob(&mut zero));
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn rel_diff() {
        assert!(max_rel_diff(&[1.0, 2.0], &[1.0, 2.0], 1e-300) == 0.0);
        let d = max_rel_diff(&[100.0], &[101.0], 1e-300);
        assert!((d - 1.0 / 101.0).abs() < 1e-12);
    }
}
