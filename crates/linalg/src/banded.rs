use crate::{Error, Lu, Matrix, Result};

/// Lower and upper bandwidths `(kl, ku)` of a square matrix: the largest
/// `i − j` (resp. `j − i`) over all nonzero entries `a_ij`. A diagonal
/// matrix profiles as `(0, 0)`, a tridiagonal one as `(1, 1)`.
pub fn bandwidth(a: &Matrix) -> (usize, usize) {
    let n = a.rows();
    let (mut kl, mut ku) = (0usize, 0usize);
    for i in 0..n {
        for (j, &v) in a.row(i).iter().enumerate() {
            if v != 0.0 {
                if i > j {
                    kl = kl.max(i - j);
                } else {
                    ku = ku.max(j - i);
                }
            }
        }
    }
    (kl, ku)
}

/// Whether a banded factorization of an `n × n` matrix with bandwidths
/// `(kl, ku)` is expected to beat the dense one.
///
/// Dense LU costs `~n³/3` flops; the banded factorization costs
/// `~n·kl·(kl + ku + 1)` (partial pivoting lets `U`'s bandwidth grow to
/// `kl + ku`). The crossover is taken with a ×4 safety margin so the
/// banded path only engages when the win is decisive — narrow chains like
/// birth–death repair models, not merely "technically banded" matrices.
pub fn banded_pays_off(n: usize, kl: usize, ku: usize) -> bool {
    if n < 8 {
        return false; // dense is trivially fast and has less overhead
    }
    let band_cost = (n as u128) * (kl as u128 + 1) * (kl as u128 + ku as u128 + 1);
    let dense_cost = (n as u128).pow(3) / 3;
    band_cost * 4 <= dense_cost
}

/// LU factorization of a banded matrix with partial pivoting, in the
/// LAPACK `gbtrf` band layout: column `j` stores rows
/// `j − kl − ku ..= j + kl` (fill from pivoting extends the upper
/// bandwidth from `ku` to `kl + ku`).
///
/// Cost is `O(n·kl·(kl + ku))` instead of the dense `O(n³)`, which is the
/// decisive win for the near-tridiagonal repair chains this workspace
/// solves (internal-RAID array models, birth–death rebuild chains).
///
/// # Example
///
/// ```
/// use nsr_linalg::{BandedLu, Matrix};
///
/// # fn main() -> Result<(), nsr_linalg::Error> {
/// // Tridiagonal system.
/// let a = Matrix::from_rows(&[
///     &[2.0, -1.0, 0.0],
///     &[-1.0, 2.0, -1.0],
///     &[0.0, -1.0, 2.0],
/// ])?;
/// let lu = BandedLu::factor(&a)?;
/// let x = lu.solve(&[1.0, 0.0, 1.0])?;
/// let r = a.mul_vec(&x)?;
/// assert!((r[0] - 1.0).abs() < 1e-12);
/// assert!((lu.det() - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BandedLu {
    /// Band storage: `ab[j][kl + ku + i − j]` holds `A(i, j)` (and, after
    /// factorization, the `L` multipliers below the diagonal and `U` above
    /// it).
    ab: Vec<Vec<f64>>,
    /// Pivot row chosen at each elimination step: `ipiv[j] ∈ j..=j+kl`.
    ipiv: Vec<usize>,
    /// Sign of the row permutation (for [`BandedLu::det`]).
    sign: f64,
    kl: usize,
    ku: usize,
}

impl BandedLu {
    /// Factors a square matrix, profiling its bandwidth internally.
    ///
    /// The factorization is exact for any square matrix — a dense matrix
    /// simply degenerates to `kl = ku = n − 1` band storage — but only
    /// worth using when [`banded_pays_off`] says so.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lu::factor`]: [`Error::Empty`],
    /// [`Error::NotSquare`], [`Error::NotFinite`], and [`Error::Singular`]
    /// if no usable pivot remains at some column.
    pub fn factor(a: &Matrix) -> Result<BandedLu> {
        let (kl, ku) = bandwidth(a);
        Self::factor_with_bandwidth(a, kl, ku)
    }

    /// Factors with caller-supplied bandwidths (entries outside the band
    /// are treated as zero, which is exact when the caller profiled
    /// correctly).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BandedLu::factor`].
    pub fn factor_with_bandwidth(a: &Matrix, kl: usize, ku: usize) -> Result<BandedLu> {
        if a.rows() == 0 || a.cols() == 0 {
            return Err(Error::Empty);
        }
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        if !a.is_finite() {
            return Err(Error::NotFinite {
                op: "banded_lu_factor",
            });
        }
        let n = a.rows();
        let kl = kl.min(n - 1);
        let ku = ku.min(n - 1);
        let off = kl + ku; // position of the diagonal within a column
        let height = off + kl + 1;

        // Load the band (fill rows 0..kl of each column start at zero).
        let mut ab: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; height]).collect();
        for j in 0..n {
            let lo = j.saturating_sub(ku);
            let hi = (j + kl).min(n - 1);
            for i in lo..=hi {
                ab[j][off + i - j] = a[(i, j)];
            }
        }

        let mut ipiv = vec![0usize; n];
        let mut sign = 1.0;
        let mut ju = 0usize; // rightmost column touched by any pivot so far
        for j in 0..n {
            let km = kl.min(n - 1 - j); // subdiagonal count in column j
                                        // Partial pivoting among rows j..=j+km of column j.
            let mut jp = 0;
            let mut max = ab[j][off].abs();
            for t in 1..=km {
                let v = ab[j][off + t].abs();
                if v > max {
                    max = v;
                    jp = t;
                }
            }
            if max == 0.0 {
                return Err(Error::Singular { pivot: j });
            }
            ipiv[j] = j + jp;
            ju = ju.max((j + ku + jp).min(n - 1));
            if jp != 0 {
                // Swap rows j and j+jp across the affected columns. Both
                // rows stay inside the band window because the original
                // upper bandwidth is ku and fill stops at kl + ku.
                for (c, col) in ab.iter_mut().enumerate().take(ju + 1).skip(j) {
                    let pj = off + j - c;
                    col.swap(pj, pj + jp);
                }
                sign = -sign;
            }
            if km > 0 {
                let pivot = ab[j][off];
                for t in 1..=km {
                    ab[j][off + t] /= pivot;
                }
                // Rank-1 update of the trailing band window.
                let (head, tail) = ab.split_at_mut(j + 1);
                let col_j = &head[j];
                for (c, col) in tail.iter_mut().enumerate().take(ju - j) {
                    let c = j + 1 + c;
                    let ujc = col[off + j - c];
                    if ujc == 0.0 {
                        continue;
                    }
                    for t in 1..=km {
                        col[off + j + t - c] -= col_j[off + t] * ujc;
                    }
                }
            }
        }
        Ok(BandedLu {
            ab,
            ipiv,
            sign,
            kl,
            ku,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.ab.len()
    }

    /// The profiled `(kl, ku)` bandwidths of the input matrix.
    pub fn bandwidths(&self) -> (usize, usize) {
        (self.kl, self.ku)
    }

    /// Determinant (product of `U`'s diagonal times the permutation sign).
    pub fn det(&self) -> f64 {
        let off = self.kl + self.ku;
        let mut d = self.sign;
        for col in &self.ab {
            d *= col[off];
        }
        d
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                op: "banded_lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let off = self.kl + self.ku;
        let mut x = b.to_vec();
        // Forward: interleaved row swaps and L eliminations, exactly the
        // order the factorization applied them.
        for j in 0..n {
            let p = self.ipiv[j];
            if p != j {
                x.swap(j, p);
            }
            let km = self.kl.min(n - 1 - j);
            for t in 1..=km {
                x[j + t] -= self.ab[j][off + t] * x[j];
            }
        }
        // Back-substitution against U (bandwidth kl + ku).
        for i in (0..n).rev() {
            let hi = (i + off).min(n - 1);
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(hi + 1).skip(i + 1) {
                acc -= self.ab[j][off + i - j] * xj;
            }
            x[i] = acc / self.ab[i][off];
        }
        Ok(x)
    }

    /// Estimate of the ∞-norm condition number `κ∞(A) = ‖A‖∞·‖A⁻¹‖∞`.
    /// `‖A⁻¹‖∞` is formed column-by-column with banded solves
    /// (`O(n²·band)` total), never materializing a dense inverse.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (cannot happen for a successfully
    /// factored matrix).
    pub fn cond_inf(&self, a: &Matrix) -> Result<f64> {
        let n = self.dim();
        // Row sums of |A⁻¹|, accumulated one solved column at a time.
        let mut row_sums = vec![0.0; n];
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for (acc, v) in row_sums.iter_mut().zip(&col) {
                *acc += v.abs();
            }
        }
        let inv_norm = row_sums.iter().fold(0.0, |m: f64, &v| m.max(v));
        Ok(a.norm_inf() * inv_norm)
    }
}

/// A factorization that picked its storage tier from the matrix's
/// bandwidth profile: banded when [`banded_pays_off`], dense otherwise.
///
/// This is the entry point solver callers should use when the matrix
/// *might* be structured — reliability repair chains often are — without
/// committing to either layout at the call site.
#[derive(Debug, Clone)]
pub enum AnyLu {
    /// Dense partial-pivoting LU.
    Dense(Lu),
    /// Banded partial-pivoting LU.
    Banded(BandedLu),
}

impl AnyLu {
    /// Profiles `a`'s bandwidth and factors with the cheaper layout.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lu::factor`] / [`BandedLu::factor`].
    pub fn factor_auto(a: &Matrix) -> Result<AnyLu> {
        let (kl, ku) = bandwidth(a);
        if banded_pays_off(a.rows(), kl, ku) {
            Ok(AnyLu::Banded(BandedLu::factor_with_bandwidth(a, kl, ku)?))
        } else {
            Ok(AnyLu::Dense(Lu::factor(a)?))
        }
    }

    /// `true` when the banded tier was selected.
    pub fn is_banded(&self) -> bool {
        matches!(self, AnyLu::Banded(_))
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        match self {
            AnyLu::Dense(lu) => lu.dim(),
            AnyLu::Banded(lu) => lu.dim(),
        }
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        match self {
            AnyLu::Dense(lu) => lu.det(),
            AnyLu::Banded(lu) => lu.det(),
        }
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        match self {
            AnyLu::Dense(lu) => lu.solve(b),
            AnyLu::Banded(lu) => lu.solve(b),
        }
    }

    /// Estimate of the ∞-norm condition number `κ∞(A)`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors from forming `‖A⁻¹‖∞`.
    pub fn cond_inf(&self, a: &Matrix) -> Result<f64> {
        match self {
            AnyLu::Dense(lu) => lu.cond_inf(a),
            AnyLu::Banded(lu) => lu.cond_inf(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn bandwidth_profiles() {
        assert_eq!(bandwidth(&Matrix::identity(4)), (0, 0));
        assert_eq!(bandwidth(&tridiag(5)), (1, 1));
        let mut m = tridiag(6);
        m[(5, 0)] = 1.0;
        assert_eq!(bandwidth(&m), (5, 1));
        assert_eq!(bandwidth(&Matrix::zeros(3, 3)), (0, 0));
    }

    #[test]
    fn pays_off_heuristic() {
        // Tridiagonal at a useful size: obvious win.
        assert!(banded_pays_off(64, 1, 1));
        // Full bandwidth: never.
        assert!(!banded_pays_off(64, 63, 63));
        // Tiny systems stay dense.
        assert!(!banded_pays_off(4, 1, 1));
    }

    #[test]
    fn tridiagonal_solve_matches_dense() {
        let a = tridiag(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64).sin() + 2.0).collect();
        let dense = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let lu = BandedLu::factor(&a).unwrap();
        assert_eq!(lu.bandwidths(), (1, 1));
        let banded = lu.solve(&b).unwrap();
        for (u, v) in dense.iter().zip(&banded) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn det_matches_dense() {
        let a = tridiag(12);
        let dd = Lu::factor(&a).unwrap().det();
        let bd = BandedLu::factor(&a).unwrap().det();
        assert!((dd - bd).abs() / dd.abs() < 1e-12, "{dd} vs {bd}");
    }

    #[test]
    fn pivoting_band_matrix() {
        // A band matrix whose natural pivot order would divide by a tiny
        // diagonal: partial pivoting must engage and stay accurate.
        let n = 20;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1e-12
            } else if i > j && i - j <= 2 {
                1.0 + (i * 7 + j) as f64 * 0.01
            } else if j > i && j - i <= 1 {
                -1.0 - (i * 3 + j) as f64 * 0.01
            } else {
                0.0
            }
        });
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let lu = BandedLu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (u, v) in b.iter().zip(&ax) {
            assert!((u - v).abs() < 1e-8 * (1.0 + u.abs()), "{u} vs {v}");
        }
        let dd = Lu::factor(&a).unwrap().det();
        let bd = lu.det();
        assert!(
            (dd - bd).abs() <= 1e-10 * dd.abs().max(1e-300),
            "{dd} vs {bd}"
        );
    }

    #[test]
    fn singular_detected() {
        let mut a = tridiag(6);
        // Zero out a whole column's band.
        a[(2, 3)] = 0.0;
        a[(3, 3)] = 0.0;
        a[(4, 3)] = 0.0;
        assert!(matches!(
            BandedLu::factor(&a).unwrap_err(),
            Error::Singular { .. }
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            BandedLu::factor(&Matrix::zeros(2, 3)).unwrap_err(),
            Error::NotSquare { .. }
        ));
        let mut nan = Matrix::identity(2);
        nan[(0, 1)] = f64::NAN;
        assert!(matches!(
            BandedLu::factor(&nan).unwrap_err(),
            Error::NotFinite { .. }
        ));
        let lu = BandedLu::factor(&tridiag(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn cond_inf_identity_is_one() {
        let i = Matrix::identity(9);
        let lu = BandedLu::factor(&i).unwrap();
        assert!((lu.cond_inf(&i).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auto_tier_selection() {
        let banded = AnyLu::factor_auto(&tridiag(40)).unwrap();
        assert!(banded.is_banded());
        let dense_m = Matrix::from_fn(10, 10, |i, j| {
            1.0 / ((i + j + 1) as f64) + if i == j { 2.0 } else { 0.0 }
        });
        let dense = AnyLu::factor_auto(&dense_m).unwrap();
        assert!(!dense.is_banded());
        // Both answer the same queries.
        let b: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        let x = banded.solve(&b).unwrap();
        assert_eq!(x.len(), 40);
        assert_eq!(banded.dim(), 40);
        assert!(banded.det().is_finite());
        assert!(banded.cond_inf(&tridiag(40)).unwrap() >= 1.0);
    }
}
