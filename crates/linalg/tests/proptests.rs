//! Property-based tests for the dense LU kernel, driven by the in-repo
//! seeded PRNG: each test draws many random cases from a fixed seed, so
//! runs are deterministic and reproducible offline.

use nsr_linalg::{bandwidth, AnyLu, BandedLu, Lu, Matrix};
use nsr_rng::rngs::StdRng;
use nsr_rng::{Rng, SeedableRng};

/// A random well-scaled square matrix made diagonally dominant so it is
/// guaranteed nonsingular and well-conditioned.
fn diag_dominant<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    let vals: Vec<f64> = (0..n * n)
        .map(|_| rng.random_range_f64(-1.0, 1.0))
        .collect();
    let mut m = Matrix::from_vec(n, n, vals).expect("sized vec");
    for i in 0..n {
        let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
        m[(i, i)] = row_sum + 1.0;
    }
    m
}

/// An arbitrary square matrix (may be singular).
fn any_square<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    let vals: Vec<f64> = (0..n * n)
        .map(|_| rng.random_range_f64(-10.0, 10.0))
        .collect();
    Matrix::from_vec(n, n, vals).expect("sized vec")
}

fn rand_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.random_range_f64(lo, hi)).collect()
}

#[test]
fn solve_residual_is_small() {
    let mut rng = StdRng::seed_from_u64(0x11ea);
    for _ in 0..256 {
        let n = rng.random_range_usize(1, 9);
        let a = diag_dominant(&mut rng, n);
        let b = rand_vec(&mut rng, n, -5.0, 5.0);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (u, v) in b.iter().zip(&ax) {
            assert!((u - v).abs() < 1e-9 * (1.0 + u.abs()));
        }
    }
}

#[test]
fn det_transpose_invariant() {
    let mut rng = StdRng::seed_from_u64(0x11eb);
    for _ in 0..64 {
        let a = diag_dominant(&mut rng, 5);
        let d1 = Lu::factor(&a).unwrap().det();
        let d2 = Lu::factor(&a.transpose()).unwrap().det();
        assert!((d1 - d2).abs() <= 1e-9 * d1.abs().max(1.0));
    }
}

#[test]
fn det_product_rule() {
    let mut rng = StdRng::seed_from_u64(0x11ec);
    for _ in 0..64 {
        let a = diag_dominant(&mut rng, 4);
        let b = diag_dominant(&mut rng, 4);
        let ab = (&a * &b).unwrap();
        let dab = Lu::factor(&ab).unwrap().det();
        let da = Lu::factor(&a).unwrap().det();
        let db = Lu::factor(&b).unwrap().det();
        assert!((dab - da * db).abs() <= 1e-7 * dab.abs().max(1.0));
    }
}

#[test]
fn inverse_is_two_sided() {
    let mut rng = StdRng::seed_from_u64(0x11ed);
    for _ in 0..64 {
        let a = diag_dominant(&mut rng, 6);
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let left = (&inv * &a).unwrap();
        let right = (&a * &inv).unwrap();
        let i = Matrix::identity(6);
        assert!((&left - &i).unwrap().norm_inf() < 1e-9);
        assert!((&right - &i).unwrap().norm_inf() < 1e-9);
    }
}

#[test]
fn transposed_solve_consistent() {
    let mut rng = StdRng::seed_from_u64(0x11ee);
    for _ in 0..64 {
        let a = diag_dominant(&mut rng, 5);
        let b = rand_vec(&mut rng, 5, -3.0, 3.0);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_transposed(&b).unwrap();
        // Check Aᵗ·x = b directly.
        let atx = a.transpose().mul_vec(&x).unwrap();
        for (u, v) in b.iter().zip(&atx) {
            assert!((u - v).abs() < 1e-9 * (1.0 + u.abs()));
        }
    }
}

#[test]
fn factor_never_panics() {
    // Either factors or reports singularity; must not panic or return
    // non-finite determinants on success.
    let mut rng = StdRng::seed_from_u64(0x11ef);
    for _ in 0..128 {
        let a = any_square(&mut rng, 6);
        if let Ok(lu) = Lu::factor(&a) {
            assert!(lu.det().is_finite());
        }
    }
}

/// A random diagonally-dominant matrix with bandwidths `(kl, ku)`.
fn banded_dominant<R: Rng + ?Sized>(rng: &mut R, n: usize, kl: usize, ku: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(kl);
        let hi = (i + ku).min(n - 1);
        for j in lo..=hi {
            if j != i {
                m[(i, j)] = rng.random_range_f64(-1.0, 1.0);
            }
        }
        let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
        m[(i, i)] = row_sum + rng.random_range_f64(0.5, 1.5);
    }
    m
}

#[test]
fn banded_solve_matches_dense_on_random_banded_systems() {
    let mut rng = StdRng::seed_from_u64(0x11f1);
    for _ in 0..128 {
        let n = rng.random_range_usize(2, 40);
        let kl = rng.random_range_usize(0, 4.min(n));
        let ku = rng.random_range_usize(0, 4.min(n));
        let a = banded_dominant(&mut rng, n, kl, ku);
        let (pkl, pku) = bandwidth(&a);
        assert!(
            pkl <= kl && pku <= ku,
            "profiled ({pkl},{pku}) > ({kl},{ku})"
        );
        let b = rand_vec(&mut rng, n, -5.0, 5.0);
        let dense = Lu::factor(&a).unwrap();
        let band = BandedLu::factor(&a).unwrap();
        let xd = dense.solve(&b).unwrap();
        let xb = band.solve(&b).unwrap();
        for (u, v) in xd.iter().zip(&xb) {
            assert!((u - v).abs() < 1e-9 * (1.0 + u.abs()), "{u} vs {v}");
        }
        let (dd, db) = (dense.det(), band.det());
        assert!(
            (dd - db).abs() <= 1e-9 * dd.abs().max(1e-300),
            "{dd} vs {db}"
        );
    }
}

#[test]
fn any_lu_agrees_with_dense_regardless_of_tier() {
    let mut rng = StdRng::seed_from_u64(0x11f2);
    for _ in 0..64 {
        let n = rng.random_range_usize(2, 32);
        let kl = rng.random_range_usize(0, n);
        let ku = rng.random_range_usize(0, n);
        let a = banded_dominant(&mut rng, n, kl, ku);
        let b = rand_vec(&mut rng, n, -3.0, 3.0);
        let auto = AnyLu::factor_auto(&a).unwrap();
        let xd = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let xa = auto.solve(&b).unwrap();
        for (u, v) in xd.iter().zip(&xa) {
            assert!((u - v).abs() < 1e-9 * (1.0 + u.abs()), "{u} vs {v}");
        }
    }
}

#[test]
fn matmul_associative() {
    let mut rng = StdRng::seed_from_u64(0x11f0);
    for _ in 0..64 {
        let a = diag_dominant(&mut rng, 3);
        let b = diag_dominant(&mut rng, 3);
        let c = diag_dominant(&mut rng, 3);
        let left = (&(&a * &b).unwrap() * &c).unwrap();
        let right = (&a * &(&b * &c).unwrap()).unwrap();
        let diff = (&left - &right).unwrap();
        let scale = left.norm_inf().max(1.0);
        assert!(diff.norm_inf() <= 1e-9 * scale);
    }
}
