//! Property-based tests for the dense LU kernel.

use nsr_linalg::{Lu, Matrix};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// Strategy: a random well-scaled square matrix made diagonally dominant so
/// it is guaranteed nonsingular and well-conditioned.
fn diag_dominant(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::from_vec(n, n, vals).expect("sized vec");
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        m
    })
}

/// Strategy: arbitrary square matrix (may be singular).
fn any_square(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, n * n)
        .prop_map(move |vals| Matrix::from_vec(n, n, vals).expect("sized vec"))
}

proptest! {
    #[test]
    fn solve_residual_is_small(n in 1usize..9, seed in 0u64..1000) {
        let _ = seed;
        // proptest's closures can't easily nest strategies with runtime n,
        // so sample the matrix through a sub-runner.
        let m_strategy = diag_dominant(n);
        let b_strategy = prop::collection::vec(-5.0f64..5.0, n);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let a = m_strategy.new_tree(&mut runner).unwrap().current();
        let b = b_strategy.new_tree(&mut runner).unwrap().current();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (u, v) in b.iter().zip(&ax) {
            prop_assert!((u - v).abs() < 1e-9 * (1.0 + u.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn det_transpose_invariant(a in diag_dominant(5)) {
        let d1 = Lu::factor(&a).unwrap().det();
        let d2 = Lu::factor(&a.transpose()).unwrap().det();
        prop_assert!((d1 - d2).abs() <= 1e-9 * d1.abs().max(1.0));
    }

    #[test]
    fn det_product_rule(a in diag_dominant(4), b in diag_dominant(4)) {
        let ab = (&a * &b).unwrap();
        let dab = Lu::factor(&ab).unwrap().det();
        let da = Lu::factor(&a).unwrap().det();
        let db = Lu::factor(&b).unwrap().det();
        prop_assert!((dab - da * db).abs() <= 1e-7 * dab.abs().max(1.0));
    }

    #[test]
    fn inverse_is_two_sided(a in diag_dominant(6)) {
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let left = (&inv * &a).unwrap();
        let right = (&a * &inv).unwrap();
        let i = Matrix::identity(6);
        prop_assert!((&left - &i).unwrap().norm_inf() < 1e-9);
        prop_assert!((&right - &i).unwrap().norm_inf() < 1e-9);
    }

    #[test]
    fn transposed_solve_consistent(a in diag_dominant(5), b in prop::collection::vec(-3.0f64..3.0, 5)) {
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_transposed(&b).unwrap();
        // Check Aᵗ·x = b directly.
        let atx = a.transpose().mul_vec(&x).unwrap();
        for (u, v) in b.iter().zip(&atx) {
            prop_assert!((u - v).abs() < 1e-9 * (1.0 + u.abs()));
        }
    }

    #[test]
    fn factor_never_panics(a in any_square(6)) {
        // Either factors or reports singularity; must not panic or return
        // non-finite determinants on success.
        if let Ok(lu) = Lu::factor(&a) {
            prop_assert!(lu.det().is_finite());
        }
    }

    #[test]
    fn matmul_associative(a in diag_dominant(3), b in diag_dominant(3), c in diag_dominant(3)) {
        let left = (&(&a * &b).unwrap() * &c).unwrap();
        let right = (&a * &(&b * &c).unwrap()).unwrap();
        let diff = (&left - &right).unwrap();
        let scale = left.norm_inf().max(1.0);
        prop_assert!(diff.norm_inf() <= 1e-9 * scale);
    }
}
