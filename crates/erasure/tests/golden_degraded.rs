//! Golden degraded-operation tests: with **exactly `t` erasures** every
//! read reconstructs the original bytes exactly, and at `t + 1` the store
//! and the code fail *cleanly* with the typed [`Error::TooManyErasures`]
//! — never a panic, never silently wrong data.

use nsr_erasure::rs::ReedSolomon;
use nsr_erasure::store::{BrickStore, ObjectId};
use nsr_erasure::Error;

/// Deterministic payload for object `i`: 96 bytes with a per-object
/// pattern, so any mix-up between objects or shards is caught byte-wise.
fn golden_payload(i: u64) -> Vec<u8> {
    (0..96u32)
        .map(|b| (b as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

#[test]
fn code_reconstructs_at_exactly_t_erasures() {
    let (data, parity) = (3, 2);
    let code = ReedSolomon::new(data, parity).unwrap();
    let original: Vec<Vec<u8>> = (0..data as u64).map(golden_payload).collect();
    let encoded = code.encode(&original).unwrap();

    // Every possible pair of erasures (t = 2) must reconstruct exactly.
    for a in 0..code.total_shards() {
        for b in (a + 1)..code.total_shards() {
            let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
            shards[a] = None;
            shards[b] = None;
            code.reconstruct(&mut shards).unwrap();
            for (i, shard) in shards.iter().enumerate() {
                assert_eq!(
                    shard.as_deref(),
                    Some(encoded[i].as_slice()),
                    "shard {i} wrong after erasing {{{a}, {b}}}"
                );
            }
        }
    }
}

#[test]
fn code_fails_typed_at_t_plus_one_erasures() {
    let code = ReedSolomon::new(3, 2).unwrap();
    let original: Vec<Vec<u8>> = (0..3u64).map(golden_payload).collect();
    let encoded = code.encode(&original).unwrap();
    let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
    shards[0] = None;
    shards[2] = None;
    shards[4] = None;
    assert_eq!(
        code.reconstruct(&mut shards).unwrap_err(),
        Error::TooManyErasures {
            missing: 3,
            tolerated: 2
        }
    );
}

#[test]
fn store_serves_exact_bytes_at_t_erasures_and_fails_typed_beyond() {
    // n = 10 nodes, r = 5 shards per object, t = 2 parity: rotational
    // placement puts ObjectId(i) on nodes i..i+5 (mod 10).
    let (n, r, t) = (10, 5, 2);
    let mut store = BrickStore::new(n, r, t).unwrap();
    let objects: Vec<(ObjectId, Vec<u8>)> = (0..n as u64)
        .map(|i| (ObjectId(i), golden_payload(i)))
        .collect();
    for (id, data) in &objects {
        store.put(*id, data).unwrap();
    }

    // Exactly t node failures inside one redundancy set: every object —
    // including those missing two of five shards — reads back exactly.
    store.fail_node(0).unwrap();
    store.fail_node(1).unwrap();
    for (id, data) in &objects {
        assert_eq!(&store.get(*id).unwrap(), data, "degraded read of {id:?}");
    }

    // Recovery path at tolerance: rebuilding both nodes restores full
    // health and still serves the exact golden bytes.
    store.rebuild_node(0).unwrap();
    store.rebuild_node(1).unwrap();
    assert!(store.failed_nodes().is_empty());
    for (id, data) in &objects {
        assert_eq!(
            &store.get(*id).unwrap(),
            data,
            "post-rebuild read of {id:?}"
        );
    }

    // t + 1 failures in one redundancy set: ObjectId(0) (on nodes 0–4)
    // now misses 3 > t shards. Reads AND rebuilds of those sets must fail
    // with the typed error — data on them is genuinely lost, and no API
    // may pretend otherwise (or panic).
    store.fail_node(0).unwrap();
    store.fail_node(1).unwrap();
    store.fail_node(2).unwrap();
    assert_eq!(
        store.get(ObjectId(0)).unwrap_err(),
        Error::TooManyErasures {
            missing: 3,
            tolerated: 2
        }
    );
    assert_eq!(
        store.rebuild_node(0).unwrap_err(),
        Error::TooManyErasures {
            missing: 3,
            tolerated: 2
        }
    );
    // …while an object on an unaffected set still reads exactly.
    assert_eq!(store.get(ObjectId(5)).unwrap(), objects[5].1);
}
