//! Property tests for the brick object store: random operation sequences
//! must never corrupt data that the code geometry promises to protect.

use nsr_erasure::store::{BrickStore, ObjectId};
use proptest::prelude::*;

/// An operation in a random store workload.
#[derive(Debug, Clone)]
enum Op {
    Put(u64, usize),
    FailNode(u32),
    RebuildNode(u32),
    Get(u64),
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40, 1usize..256).prop_map(|(id, len)| Op::Put(id, len)),
        (0u32..n).prop_map(Op::FailNode),
        (0u32..n).prop_map(Op::RebuildNode),
        (0u64..40).prop_map(Op::Get),
    ]
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (id as u8).wrapping_mul(37).wrapping_add(i as u8)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant: while at most `t` nodes are failed, every stored object
    /// reads back byte-identical. The workload interleaves puts, failures,
    /// rebuilds and reads arbitrarily; operations that the store rejects
    /// (duplicate ids, failing a failed node, too many failures for a
    /// write) are simply skipped — the invariant must hold regardless.
    #[test]
    fn reads_always_correct_within_tolerance(
        ops in prop::collection::vec(op_strategy(10), 1..60)
    ) {
        let (n, r, t) = (10u32, 5u32, 2u32);
        let mut store = BrickStore::new(n, r, t).unwrap();
        let mut stored: std::collections::HashMap<u64, usize> = Default::default();
        for op in ops {
            match op {
                Op::Put(id, len) => {
                    if store.put(ObjectId(id), &payload(id, len)).is_ok() {
                        stored.insert(id, len);
                    }
                }
                Op::FailNode(v) => {
                    if store.failed_nodes().len() < t as usize {
                        let _ = store.fail_node(v);
                    }
                }
                Op::RebuildNode(v) => {
                    // With ≤ t failures every rebuild must succeed.
                    if store.failed_nodes().contains(&v) {
                        store.rebuild_node(v).unwrap();
                    }
                }
                Op::Get(id) => {
                    if let Some(&len) = stored.get(&id) {
                        let got = store.get(ObjectId(id)).unwrap();
                        prop_assert_eq!(got, payload(id, len));
                    }
                }
            }
        }
        // Final sweep: everything still reads back.
        for (&id, &len) in &stored {
            prop_assert_eq!(store.get(ObjectId(id)).unwrap(), payload(id, len));
        }
        // And after reviving everything, the store scrubs clean.
        for v in store.failed_nodes() {
            store.rebuild_node(v).unwrap();
        }
        let scrub = store.scrub().unwrap();
        prop_assert_eq!(scrub.corrupt, 0);
        prop_assert_eq!(scrub.degraded, 0);
        prop_assert_eq!(scrub.clean as usize, stored.len());
    }

    /// Corruption of up to `t` shards of one object is always recoverable:
    /// scrub detects it, and a targeted rebuild-from-parity (fail + rebuild
    /// of the corrupted nodes) restores the bytes.
    #[test]
    fn corruption_detected_and_repairable(
        len in 8usize..128,
        byte in 0usize..1000,
        victim in 0u32..5,
    ) {
        let mut store = BrickStore::new(10, 5, 2).unwrap();
        store.put(ObjectId(1), &payload(1, len)).unwrap();
        // The rotational set 0 lives on nodes {0..4}; corrupt one of them.
        store.corrupt_shard(victim, ObjectId(1), byte).unwrap();
        prop_assert_eq!(store.scrub().unwrap().corrupt, 1);
        // Repair path: declare the node failed, rebuild from survivors.
        store.fail_node(victim).unwrap();
        store.rebuild_node(victim).unwrap();
        prop_assert_eq!(store.scrub().unwrap().corrupt, 0);
        prop_assert_eq!(store.get(ObjectId(1)).unwrap(), payload(1, len));
    }
}
