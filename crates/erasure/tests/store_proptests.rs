//! Property tests for the brick object store: random operation sequences
//! must never corrupt data that the code geometry promises to protect.
//! Workloads are drawn from the in-repo seeded PRNG for reproducibility.

use nsr_erasure::store::{BrickStore, ObjectId};
use nsr_rng::rngs::StdRng;
use nsr_rng::{Rng, SeedableRng};

/// An operation in a random store workload.
#[derive(Debug, Clone)]
enum Op {
    Put(u64, usize),
    FailNode(u32),
    RebuildNode(u32),
    Get(u64),
}

fn random_op<R: Rng + ?Sized>(rng: &mut R, n: u32) -> Op {
    match rng.random_range_usize(0, 4) {
        0 => Op::Put(
            rng.random_range_usize(0, 40) as u64,
            rng.random_range_usize(1, 256),
        ),
        1 => Op::FailNode(rng.random_range_usize(0, n as usize) as u32),
        2 => Op::RebuildNode(rng.random_range_usize(0, n as usize) as u32),
        _ => Op::Get(rng.random_range_usize(0, 40) as u64),
    }
}

fn payload(id: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (id as u8).wrapping_mul(37).wrapping_add(i as u8))
        .collect()
}

/// Invariant: while at most `t` nodes are failed, every stored object
/// reads back byte-identical. The workload interleaves puts, failures,
/// rebuilds and reads arbitrarily; operations that the store rejects
/// (duplicate ids, failing a failed node, too many failures for a
/// write) are simply skipped — the invariant must hold regardless.
#[test]
fn reads_always_correct_within_tolerance() {
    let mut rng = StdRng::seed_from_u64(0x5704_0001);
    for _ in 0..64 {
        let (n, r, t) = (10u32, 5u32, 2u32);
        let op_count = rng.random_range_usize(1, 60);
        let mut store = BrickStore::new(n, r, t).unwrap();
        let mut stored: std::collections::HashMap<u64, usize> = Default::default();
        for _ in 0..op_count {
            match random_op(&mut rng, n) {
                Op::Put(id, len) => {
                    if store.put(ObjectId(id), &payload(id, len)).is_ok() {
                        stored.insert(id, len);
                    }
                }
                Op::FailNode(v) => {
                    if store.failed_nodes().len() < t as usize {
                        let _ = store.fail_node(v);
                    }
                }
                Op::RebuildNode(v) => {
                    // With ≤ t failures every rebuild must succeed.
                    if store.failed_nodes().contains(&v) {
                        store.rebuild_node(v).unwrap();
                    }
                }
                Op::Get(id) => {
                    if let Some(&len) = stored.get(&id) {
                        let got = store.get(ObjectId(id)).unwrap();
                        assert_eq!(got, payload(id, len));
                    }
                }
            }
        }
        // Final sweep: everything still reads back.
        for (&id, &len) in &stored {
            assert_eq!(store.get(ObjectId(id)).unwrap(), payload(id, len));
        }
        // And after reviving everything, the store scrubs clean.
        for v in store.failed_nodes() {
            store.rebuild_node(v).unwrap();
        }
        let scrub = store.scrub().unwrap();
        assert_eq!(scrub.corrupt, 0);
        assert_eq!(scrub.degraded, 0);
        assert_eq!(scrub.clean as usize, stored.len());
    }
}

/// However a rebuild is driven — one-shot `rebuild_node`, arbitrary
/// `rebuild_step` budgets (including zero-budget probes), aborts that
/// restart from scratch, redundant `begin_rebuild` resumes — the
/// completed rebuild's `bytes_read`/`bytes_written`/`shards_rebuilt`
/// accounting must equal the single-shot baseline.
#[test]
fn interleaved_rebuild_accounting_matches_single_shot() {
    use nsr_erasure::store::RebuildProgress;

    let mut rng = StdRng::seed_from_u64(0x5704_0003);
    for round in 0..48 {
        let objects = rng.random_range_usize(1, 24);
        let lens: Vec<usize> = (0..objects)
            .map(|_| rng.random_range_usize(1, 200))
            .collect();
        let victim = rng.random_range_usize(0, 10) as u32;

        let build = |lens: &[usize]| {
            let mut s = BrickStore::new(10, 5, 2).unwrap();
            for (i, &len) in lens.iter().enumerate() {
                s.put(ObjectId(i as u64), &payload(i as u64, len)).unwrap();
            }
            s.fail_node(victim).unwrap();
            s
        };

        // Baseline: single-shot rebuild of an identically built store.
        let mut baseline = build(&lens);
        let want = baseline.rebuild_node(victim).unwrap();

        // Interleaved driving of the same rebuild.
        let mut s = build(&lens);
        s.begin_rebuild(victim).unwrap();
        let got = loop {
            match rng.random_range_usize(0, 8) {
                0 => {
                    // Abort and restart: completed work is discarded, so
                    // the eventual report must still match the baseline.
                    assert!(s.abort_rebuild(victim));
                    s.begin_rebuild(victim).unwrap();
                }
                1 => {
                    // Redundant begin: resumes the existing checkpoint.
                    let before = s.rebuild_checkpoint(victim);
                    s.begin_rebuild(victim).unwrap();
                    assert_eq!(s.rebuild_checkpoint(victim), before);
                }
                2 => {
                    // Zero-budget probe: reports the backlog, changes
                    // neither progress nor accounting.
                    let before = s.rebuild_checkpoint(victim).unwrap();
                    if before.objects_remaining > 0 {
                        match s.rebuild_step(victim, 0).unwrap() {
                            RebuildProgress::InProgress { objects_remaining } => {
                                assert_eq!(objects_remaining, before.objects_remaining)
                            }
                            RebuildProgress::Complete(_) => {
                                panic!("budget 0 completed a non-empty queue")
                            }
                        }
                        assert_eq!(s.rebuild_checkpoint(victim), Some(before));
                    }
                }
                _ => {
                    let budget = rng.random_range_usize(1, 5);
                    if let RebuildProgress::Complete(report) =
                        s.rebuild_step(victim, budget).unwrap()
                    {
                        break report;
                    }
                }
            }
        };
        assert_eq!(
            got, want,
            "round {round}: objects={objects} victim={victim}"
        );

        // Both stores end up byte-identical and fully scrubbed.
        for (i, &len) in lens.iter().enumerate() {
            assert_eq!(s.get(ObjectId(i as u64)).unwrap(), payload(i as u64, len));
        }
        assert!(s.failed_nodes().is_empty());
    }
}

/// Corruption of up to `t` shards of one object is always recoverable:
/// scrub detects it, and a targeted rebuild-from-parity (fail + rebuild
/// of the corrupted nodes) restores the bytes.
#[test]
fn corruption_detected_and_repairable() {
    let mut rng = StdRng::seed_from_u64(0x5704_0002);
    for _ in 0..128 {
        let len = rng.random_range_usize(8, 128);
        let byte = rng.random_range_usize(0, 1000);
        let victim = rng.random_range_usize(0, 5) as u32;
        let mut store = BrickStore::new(10, 5, 2).unwrap();
        store.put(ObjectId(1), &payload(1, len)).unwrap();
        // The rotational set 0 lives on nodes {0..4}; corrupt one of them.
        store.corrupt_shard(victim, ObjectId(1), byte).unwrap();
        assert_eq!(store.scrub().unwrap().corrupt, 1);
        // Repair path: declare the node failed, rebuild from survivors.
        store.fail_node(victim).unwrap();
        store.rebuild_node(victim).unwrap();
        assert_eq!(store.scrub().unwrap().corrupt, 0);
        assert_eq!(store.get(ObjectId(1)).unwrap(), payload(1, len));
    }
}
