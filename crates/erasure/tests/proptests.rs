//! Property-based tests for GF(2⁸) arithmetic, the Reed–Solomon code, and
//! placement accounting, driven by the in-repo seeded PRNG.

use nsr_erasure::gf256::Gf;
use nsr_erasure::placement::{Placement, RebuildFlows};
use nsr_erasure::rs::ReedSolomon;
use nsr_rng::rngs::StdRng;
use nsr_rng::{Rng, SeedableRng};

#[test]
fn gf_field_axioms() {
    let mut rng = StdRng::seed_from_u64(0x6f_0001);
    for _ in 0..512 {
        let (a, b, c) = (
            Gf(rng.random::<u8>()),
            Gf(rng.random::<u8>()),
            Gf(rng.random::<u8>()),
        );
        // Commutativity.
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        // Associativity.
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!((a * b) * c, a * (b * c));
        // Distributivity.
        assert_eq!(a * (b + c), a * b + a * c);
        // Inverses.
        if a != Gf::ZERO {
            assert_eq!(a * a.inverse().unwrap(), Gf::ONE);
        }
    }
}

#[test]
fn rs_roundtrip_arbitrary_erasures() {
    let mut rng = StdRng::seed_from_u64(0x6f_0002);
    for _ in 0..192 {
        let data_shards = rng.random_range_usize(2, 8);
        let parity_shards = rng.random_range_usize(1, 4);
        let len = rng.random_range_usize(1, 64);
        let seed = rng.random::<u64>() % 10_000;

        let code = ReedSolomon::new(data_shards, parity_shards).unwrap();
        let total = data_shards + parity_shards;
        // Deterministic pseudo-random data from the seed.
        let data: Vec<Vec<u8>> = (0..data_shards)
            .map(|i| {
                (0..len)
                    .map(|j| {
                        (seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((i * 1000 + j) as u64)
                            >> 32) as u8
                    })
                    .collect()
            })
            .collect();
        let full = code.encode(&data).unwrap();
        assert!(code.verify(&full).unwrap());

        // Erase up to `parity_shards` positions chosen by the seed.
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        let erasures = (seed as usize % parity_shards) + 1;
        let mut pos = seed as usize % total;
        for _ in 0..erasures {
            shards[pos % total] = None;
            pos = pos.wrapping_mul(7).wrapping_add(3);
        }
        code.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_deref(), Some(&full[i][..]));
        }
    }
}

#[test]
fn parity_changes_when_data_changes() {
    let mut rng = StdRng::seed_from_u64(0x6f_0003);
    for _ in 0..256 {
        let byte = rng.random::<u8>();
        let pos = rng.random_range_usize(0, 16);
        let code = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
        let base = code.encode(&data).unwrap();
        let mut tweaked = data.clone();
        if tweaked[2][pos] != byte {
            tweaked[2][pos] = byte;
            let enc = code.encode(&tweaked).unwrap();
            // Both parity shards must differ (MDS: every parity depends on
            // every data byte position-wise).
            assert_ne!(&enc[4], &base[4]);
            assert_ne!(&enc[5], &base[5]);
        }
    }
}

#[test]
fn placement_critical_fraction_matches_formula() {
    let mut rng = StdRng::seed_from_u64(0x6f_0004);
    let mut checked = 0;
    while checked < 32 {
        let n = rng.random_range_usize(6, 14) as u32;
        let r = rng.random_range_usize(3, 6) as u32;
        let t = rng.random_range_usize(1, 3) as u32;
        if r > n || t >= r {
            continue;
        }
        checked += 1;
        let p = Placement::enumerate_all(n, r).unwrap();
        let other_failed: Vec<u32> = (0..t - 1).collect();
        let got = p.critical_fraction(t - 1, &other_failed).unwrap();
        let mut expected = 1.0;
        for i in 1..t {
            expected *= (r - i) as f64 / (n - i) as f64;
        }
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }
}

#[test]
fn rebuild_flows_conserve() {
    let mut rng = StdRng::seed_from_u64(0x6f_0005);
    let mut checked = 0;
    while checked < 32 {
        let n = rng.random_range_usize(6, 12) as u32;
        let r = rng.random_range_usize(3, 6) as u32;
        let t = rng.random_range_usize(1, 3) as u32;
        let failed = rng.random_range_usize(0, 6) as u32;
        if r > n || t >= r || failed >= n {
            continue;
        }
        checked += 1;
        let p = Placement::enumerate_all(n, r).unwrap();
        let flows = RebuildFlows::for_node_failure(&p, failed, t).unwrap();
        let sourced: u64 = flows.sourced.iter().sum();
        let received: u64 = flows.received.iter().sum();
        assert_eq!(sourced, flows.network_total);
        assert_eq!(received, flows.network_total);
        let rebuilt: u64 = flows.rebuilt.iter().sum();
        assert_eq!(rebuilt, flows.lost_elements);
        assert_eq!(flows.sourced[failed as usize], 0);
    }
}
