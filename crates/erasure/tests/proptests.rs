//! Property-based tests for GF(2⁸) arithmetic, the Reed–Solomon code, and
//! placement accounting.

use nsr_erasure::gf256::Gf;
use nsr_erasure::placement::{Placement, RebuildFlows};
use nsr_erasure::rs::ReedSolomon;
use proptest::prelude::*;

proptest! {
    #[test]
    fn gf_field_axioms(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255) {
        let (a, b, c) = (Gf(a), Gf(b), Gf(c));
        // Commutativity.
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        // Associativity.
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        // Distributivity.
        prop_assert_eq!(a * (b + c), a * b + a * c);
        // Inverses.
        if a != Gf::ZERO {
            prop_assert_eq!(a * a.inverse().unwrap(), Gf::ONE);
        }
    }

    #[test]
    fn rs_roundtrip_arbitrary_erasures(
        data_shards in 2usize..8,
        parity_shards in 1usize..4,
        len in 1usize..64,
        seed in 0u64..10_000,
    ) {
        let code = ReedSolomon::new(data_shards, parity_shards).unwrap();
        let total = data_shards + parity_shards;
        // Deterministic pseudo-random data from the seed.
        let data: Vec<Vec<u8>> = (0..data_shards)
            .map(|i| {
                (0..len)
                    .map(|j| {
                        (seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((i * 1000 + j) as u64)
                            >> 32) as u8
                    })
                    .collect()
            })
            .collect();
        let full = code.encode(&data).unwrap();
        prop_assert!(code.verify(&full).unwrap());

        // Erase up to `parity_shards` positions chosen by the seed.
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        let erasures = (seed as usize % parity_shards) + 1;
        let mut pos = seed as usize % total;
        for _ in 0..erasures {
            shards[pos % total] = None;
            pos = pos.wrapping_mul(7).wrapping_add(3);
        }
        code.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_deref(), Some(&full[i][..]));
        }
    }

    #[test]
    fn parity_changes_when_data_changes(
        byte in 0u8..=255,
        pos in 0usize..16,
    ) {
        let code = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
        let base = code.encode(&data).unwrap();
        let mut tweaked = data.clone();
        if tweaked[2][pos] != byte {
            tweaked[2][pos] = byte;
            let enc = code.encode(&tweaked).unwrap();
            // Both parity shards must differ (MDS: every parity depends on
            // every data byte position-wise).
            prop_assert_ne!(&enc[4], &base[4]);
            prop_assert_ne!(&enc[5], &base[5]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn placement_critical_fraction_matches_formula(
        n in 6u32..14,
        r in 3u32..6,
        t in 1u32..3,
    ) {
        prop_assume!(r <= n && t < r);
        let p = Placement::enumerate_all(n, r).unwrap();
        let other_failed: Vec<u32> = (0..t - 1).collect();
        let got = p.critical_fraction(t - 1, &other_failed).unwrap();
        let mut expected = 1.0;
        for i in 1..t {
            expected *= (r - i) as f64 / (n - i) as f64;
        }
        prop_assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn rebuild_flows_conserve(
        n in 6u32..12,
        r in 3u32..6,
        t in 1u32..3,
        failed in 0u32..6,
    ) {
        prop_assume!(r <= n && t < r && failed < n);
        let p = Placement::enumerate_all(n, r).unwrap();
        let flows = RebuildFlows::for_node_failure(&p, failed, t).unwrap();
        let sourced: u64 = flows.sourced.iter().sum();
        let received: u64 = flows.received.iter().sum();
        prop_assert_eq!(sourced, flows.network_total);
        prop_assert_eq!(received, flows.network_total);
        let rebuilt: u64 = flows.rebuilt.iter().sum();
        prop_assert_eq!(rebuilt, flows.lost_elements);
        prop_assert_eq!(flows.sourced[failed as usize], 0);
    }
}
