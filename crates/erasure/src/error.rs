use std::fmt;

/// Errors produced by erasure-coding and placement operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A code-geometry parameter was invalid (zero shards, or the total
    /// `data + parity` exceeding the GF(2⁸) limit of 255 shards).
    InvalidGeometry {
        /// Number of data shards requested.
        data: usize,
        /// Number of parity shards requested.
        parity: usize,
    },
    /// The wrong number of shards was supplied for this code.
    ShardCountMismatch {
        /// Expected shard count.
        expected: usize,
        /// Supplied shard count.
        found: usize,
    },
    /// Shards must all have the same length.
    ShardSizeMismatch {
        /// Length of the first shard.
        expected: usize,
        /// Index of the first shard whose length differs.
        index: usize,
        /// Its length.
        found: usize,
    },
    /// More shards are missing than the code can reconstruct.
    TooManyErasures {
        /// Number of missing shards.
        missing: usize,
        /// Maximum the code tolerates.
        tolerated: usize,
    },
    /// A matrix over GF(2⁸) was singular where an invertible one was
    /// required (cannot happen for the Vandermonde-derived matrices used
    /// internally; reachable through the public matrix API).
    SingularMatrix,
    /// The decode matrix for an erasure pattern failed to invert. For a
    /// well-formed MDS generator any `k` rows are invertible, so this
    /// signals internal-state corruption (e.g. a tampered generator) —
    /// reported as an error instead of aborting the process.
    SingularDecodeMatrix,
    /// A cached [`DecodePlan`](crate::rs::DecodePlan) was applied to a
    /// stripe whose erasure pattern does not match the one the plan was
    /// built for.
    DecodePlanMismatch,
    /// A placement parameter was invalid (e.g. `R > N`, or zero sizes).
    InvalidPlacement {
        /// Description of the violated constraint.
        what: String,
    },
    /// Division by zero in GF(2⁸).
    DivisionByZero,
    /// A node has failed repeatedly and is quarantined: the store refuses
    /// to rebuild onto it until an operator clears it
    /// (`BrickStore::unquarantine`).
    Quarantined {
        /// The quarantined node.
        node: u32,
        /// How many times it has failed.
        failures: u32,
    },
    /// An internal invariant did not hold (e.g. a node map vanished
    /// between its liveness check and use). Signals a bug or tampered
    /// internal state; reported as an error so callers can degrade
    /// instead of the process aborting.
    InternalInvariant {
        /// The violated invariant.
        what: &'static str,
    },
    /// Post-rebuild verification found stripes whose parity does not
    /// check: a surviving shard was corrupted, so the reconstruction
    /// cannot be trusted. The affected shards were *not* installed.
    RebuildVerification {
        /// Number of objects whose stripes failed verification.
        objects: usize,
    },
    /// A rebuild was interrupted because a source node that was live
    /// when the rebuild pass began has since failed — the missing-shard
    /// count crossed `t` *during* the transfer, not before it. The
    /// checkpoint is kept: retrying resumes from `resumed_from` rebuilt
    /// shards instead of restarting from shard 0, and a retry with no
    /// further deaths re-derives the outcome (loss or success) against
    /// the new baseline.
    RebuildInterrupted {
        /// Shards already rebuilt and checkpointed before the
        /// interruption.
        resumed_from: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidGeometry { data, parity } => {
                write!(
                    f,
                    "invalid code geometry: {data} data + {parity} parity shards"
                )
            }
            Error::ShardCountMismatch { expected, found } => {
                write!(f, "expected {expected} shards, found {found}")
            }
            Error::ShardSizeMismatch {
                expected,
                index,
                found,
            } => write!(
                f,
                "shard {index} has length {found}, expected {expected} like shard 0"
            ),
            Error::TooManyErasures { missing, tolerated } => {
                write!(
                    f,
                    "{missing} shards missing, code tolerates only {tolerated}"
                )
            }
            Error::SingularMatrix => write!(f, "matrix is singular over GF(256)"),
            Error::SingularDecodeMatrix => write!(
                f,
                "decode matrix is singular: the generator no longer has the \
                 MDS property (internal state corrupted)"
            ),
            Error::DecodePlanMismatch => {
                write!(f, "decode plan does not match the stripe's erasure pattern")
            }
            Error::InvalidPlacement { what } => write!(f, "invalid placement: {what}"),
            Error::DivisionByZero => write!(f, "division by zero in GF(256)"),
            Error::Quarantined { node, failures } => write!(
                f,
                "node {node} is quarantined after {failures} failures; \
                 clear it with unquarantine() before rebuilding"
            ),
            Error::InternalInvariant { what } => {
                write!(f, "internal invariant violated: {what}")
            }
            Error::RebuildVerification { objects } => write!(
                f,
                "post-rebuild verification failed for {objects} object(s): \
                 a surviving shard is corrupt"
            ),
            Error::RebuildInterrupted { resumed_from } => write!(
                f,
                "rebuild interrupted by a source failure after {resumed_from} \
                 rebuilt shard(s); retry resumes from the checkpoint"
            ),
        }
    }
}

impl std::error::Error for Error {}
