//! Erasure coding and data placement for networked storage nodes.
//!
//! The reliability models in `nsr-core` assume a storage substrate: data
//! objects striped as *redundancy sets* of `R` elements (data + parity)
//! spread evenly over a node set of size `N`, protected by an erasure code
//! tolerating `t` erasures (§3–§5 of *Reliability for Networked Storage
//! Nodes*, Rao/Hafner/Golding, DSN 2006). This crate **builds that
//! substrate** so the paper's combinatorial claims can be demonstrated on
//! a working system rather than assumed:
//!
//! * [`gf256`] — arithmetic in GF(2⁸),
//! * [`matrix`] — matrices over GF(2⁸) with Gauss–Jordan inversion,
//! * [`rs`] — a systematic Reed–Solomon erasure code: `R − t` data
//!   elements, `t` parity elements, reconstruction from any `≤ t`
//!   erasures,
//! * [`placement`] — even redundancy-set placement over a node set,
//!   empirical critical-set counting (validating the §5.2 fractions), and
//!   rebuild data-flow accounting (validating the §5.1 transfer amounts),
//! * [`store`] — a working in-memory brick object store: put/get with
//!   degraded reads, node failure and distributed rebuild, scrubbing.
//!
//! # Example: encode, lose `t` nodes, reconstruct
//!
//! ```
//! use nsr_erasure::rs::ReedSolomon;
//!
//! # fn main() -> Result<(), nsr_erasure::Error> {
//! let code = ReedSolomon::new(6, 2)?; // R = 8, t = 2
//! let data: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8 * 7; 64]).collect();
//! let mut shards: Vec<Option<Vec<u8>>> =
//!     code.encode(&data)?.into_iter().map(Some).collect();
//! shards[1] = None; // node failure
//! shards[6] = None; // another node failure
//! code.reconstruct(&mut shards)?;
//! assert_eq!(shards[1].as_deref(), Some(&data[1][..]));
//! # Ok(())
//! # }
//! ```

// Unsafe is denied crate-wide; the single exception is the vectorized
// GF(2⁸) kernel in `simd`, which needs `unsafe` for CPU-feature dispatch
// and SIMD loads/stores and carries per-site SAFETY arguments.
#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
pub mod gf256;
pub mod matrix;
pub mod obs;
pub mod placement;
pub mod rs;
mod simd;
pub mod store;

pub use error::Error;

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;
