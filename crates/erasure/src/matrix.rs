//! Dense matrices over GF(2⁸) with Gauss–Jordan inversion — the decoding
//! engine of the Reed–Solomon code.

use crate::gf256::Gf;
use crate::{Error, Result};

/// A dense row-major matrix over GF(2⁸).
///
/// ```
/// use nsr_erasure::matrix::GfMatrix;
///
/// # fn main() -> Result<(), nsr_erasure::Error> {
/// let v = GfMatrix::vandermonde(4, 4)?;
/// let inv = v.inverse()?;
/// assert!(v.mul(&inv)?.is_identity());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf>,
}

impl GfMatrix {
    /// All-zero matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGeometry`] for zero dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Result<GfMatrix> {
        if rows == 0 || cols == 0 {
            return Err(Error::InvalidGeometry {
                data: rows,
                parity: cols,
            });
        }
        Ok(GfMatrix {
            rows,
            cols,
            data: vec![Gf::ZERO; rows * cols],
        })
    }

    /// The `n × n` identity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGeometry`] for `n == 0`.
    pub fn identity(n: usize) -> Result<GfMatrix> {
        let mut m = GfMatrix::zeros(n, n)?;
        for i in 0..n {
            m.set(i, i, Gf::ONE);
        }
        Ok(m)
    }

    /// The `rows × cols` Vandermonde matrix `V[r][c] = αʳ⁽ᶜ⁾ = (αʳ)ᶜ`…
    /// more precisely `V[r][c] = gᵣᶜ` with distinct generators `gᵣ = α^r`,
    /// guaranteeing any `cols` rows are linearly independent
    /// (for `rows ≤ 255`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGeometry`] for zero dimensions or
    /// `rows > 255`.
    pub fn vandermonde(rows: usize, cols: usize) -> Result<GfMatrix> {
        if rows > 255 {
            return Err(Error::InvalidGeometry {
                data: rows,
                parity: cols,
            });
        }
        let mut m = GfMatrix::zeros(rows, cols)?;
        for r in 0..rows {
            let g = Gf::alpha_pow(r as u32);
            for c in 0..cols {
                m.set(r, c, g.pow(c as u32));
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> Gf {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: Gf) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[Gf] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Builds a new matrix from a subset of this one's rows (used to form
    /// the decode matrix from surviving shards).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> GfMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            data.extend_from_slice(self.row(r));
        }
        GfMatrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGeometry`] on an inner-dimension mismatch.
    pub fn mul(&self, rhs: &GfMatrix) -> Result<GfMatrix> {
        if self.cols != rhs.rows {
            return Err(Error::InvalidGeometry {
                data: self.cols,
                parity: rhs.rows,
            });
        }
        let mut out = GfMatrix::zeros(self.rows, rhs.cols)?;
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == Gf::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    let cur = out.get(r, c);
                    out.set(r, c, cur + a * rhs.get(k, c));
                }
            }
        }
        Ok(out)
    }

    /// Whether this is the identity matrix.
    pub fn is_identity(&self) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|r| {
                (0..self.cols).all(|c| self.get(r, c) == if r == c { Gf::ONE } else { Gf::ZERO })
            })
    }

    /// Inverse by Gauss–Jordan elimination.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidGeometry`] if not square.
    /// * [`Error::SingularMatrix`] if no inverse exists.
    pub fn inverse(&self) -> Result<GfMatrix> {
        if self.rows != self.cols {
            return Err(Error::InvalidGeometry {
                data: self.rows,
                parity: self.cols,
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = GfMatrix::identity(n)?;
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n)
                .find(|&r| a.get(r, col) != Gf::ZERO)
                .ok_or(Error::SingularMatrix)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a.get(col, col).inverse().expect("pivot nonzero");
            a.scale_row(col, p);
            inv.scale_row(col, p);
            // Eliminate everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == Gf::ZERO {
                    continue;
                }
                a.add_scaled_row(r, col, factor);
                inv.add_scaled_row(r, col, factor);
            }
        }
        Ok(inv)
    }

    /// Performs Gaussian elimination to row-reduce the left `n × n` block
    /// to the identity, applying the same operations to the whole matrix —
    /// used to derive a *systematic* generator matrix from a Vandermonde
    /// matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::SingularMatrix`] if the left block is singular.
    pub fn systematize(&self) -> Result<GfMatrix> {
        // For a (k+m)×k Vandermonde V, compute V · (top k rows)⁻¹; the
        // result has the identity on top and the parity block below.
        let top: Vec<usize> = (0..self.cols).collect();
        let top_inv = self.select_rows(&top).inverse()?;
        self.mul(&top_inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        for c in 0..self.cols {
            let tmp = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, tmp);
        }
    }

    fn scale_row(&mut self, r: usize, s: Gf) {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, v * s);
        }
    }

    /// `row[r] += factor · row[src]` (XOR semantics).
    fn add_scaled_row(&mut self, r: usize, src: usize, factor: Gf) {
        for c in 0..self.cols {
            let v = self.get(r, c) + factor * self.get(src, c);
            self.set(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_zeros() {
        let i = GfMatrix::identity(3).unwrap();
        assert!(i.is_identity());
        let z = GfMatrix::zeros(2, 3).unwrap();
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(GfMatrix::zeros(0, 3).is_err());
    }

    #[test]
    fn vandermonde_square_blocks_invertible() {
        // Any k rows of a Vandermonde matrix with distinct generators form
        // an invertible k × k matrix — the MDS property.
        let v = GfMatrix::vandermonde(10, 4).unwrap();
        for rows in [[0, 1, 2, 3], [0, 3, 7, 9], [2, 4, 6, 8], [6, 7, 8, 9]] {
            let sub = v.select_rows(&rows);
            let inv = sub.inverse().unwrap();
            assert!(sub.mul(&inv).unwrap().is_identity(), "{rows:?}");
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let v = GfMatrix::vandermonde(5, 5).unwrap();
        let inv = v.inverse().unwrap();
        assert!(v.mul(&inv).unwrap().is_identity());
        assert!(inv.mul(&v).unwrap().is_identity());
    }

    #[test]
    fn singular_detected() {
        let mut m = GfMatrix::zeros(2, 2).unwrap();
        m.set(0, 0, Gf(1));
        m.set(0, 1, Gf(2));
        m.set(1, 0, Gf(1));
        m.set(1, 1, Gf(2));
        assert_eq!(m.inverse().unwrap_err(), Error::SingularMatrix);
    }

    #[test]
    fn systematize_puts_identity_on_top() {
        let v = GfMatrix::vandermonde(7, 4).unwrap();
        let s = v.systematize().unwrap();
        let top = s.select_rows(&[0, 1, 2, 3]);
        assert!(top.is_identity());
        // And preserves the MDS property: any 4 rows invertible.
        for rows in [[0, 1, 4, 6], [3, 4, 5, 6], [0, 2, 4, 5]] {
            assert!(s.select_rows(&rows).inverse().is_ok(), "{rows:?}");
        }
    }

    #[test]
    fn mul_dimension_check() {
        let a = GfMatrix::zeros(2, 3).unwrap();
        let b = GfMatrix::zeros(2, 3).unwrap();
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn non_square_inverse_rejected() {
        let a = GfMatrix::zeros(2, 3).unwrap();
        assert!(a.inverse().is_err());
    }

    #[test]
    fn oversized_vandermonde_rejected() {
        assert!(GfMatrix::vandermonde(256, 4).is_err());
    }
}
