//! Arithmetic in the Galois field GF(2⁸).
//!
//! The field is realized as polynomials over GF(2) modulo the primitive
//! polynomial `x⁸ + x⁴ + x³ + x² + 1` (`0x11d`), the conventional choice
//! for Reed–Solomon storage codes. Multiplication and division go through
//! log/antilog tables built once at startup; addition is XOR.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};
use std::sync::OnceLock;

use crate::{Error, Result};

/// The primitive polynomial `x⁸ + x⁴ + x³ + x² + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// The multiplicative generator used to build the log tables.
pub const GENERATOR: u8 = 0x02;

struct Tables {
    exp: [u8; 512], // doubled so exp[log a + log b] needs no modulo
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2⁸).
///
/// Implements the full field arithmetic via operator overloads; note that
/// in characteristic 2, subtraction *is* addition (both XOR).
///
/// ```
/// use nsr_erasure::gf256::Gf;
///
/// # fn main() -> Result<(), nsr_erasure::Error> {
/// let a = Gf(0x53);
/// assert_eq!(a * a.inverse()?, Gf(0x01));
/// assert_eq!(a + a, Gf(0)); // characteristic 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf(pub u8);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] for the zero element.
    pub fn inverse(self) -> Result<Gf> {
        if self.0 == 0 {
            return Err(Error::DivisionByZero);
        }
        let t = tables();
        Ok(Gf(t.exp[255 - t.log[self.0 as usize] as usize]))
    }

    /// `self` raised to the `n`-th power (`0⁰ = 1` by convention).
    pub fn pow(self, n: u32) -> Gf {
        if n == 0 {
            return Gf::ONE;
        }
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let log = t.log[self.0 as usize] as u32;
        Gf(t.exp[((log * n) % 255) as usize])
    }

    /// The element `α^n` for the field generator α = 2.
    pub fn alpha_pow(n: u32) -> Gf {
        Gf(GENERATOR).pow(n)
    }
}

impl Add for Gf {
    type Output = Gf;
    // In GF(2⁸) addition *is* XOR; clippy's suspicious-arithmetic lint
    // doesn't know field theory.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf {
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf {
    type Output = Gf;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf) -> Gf {
        // Characteristic 2: subtraction is addition.
        self + rhs
    }
}

impl Mul for Gf {
    type Output = Gf;
    fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        Gf(t.exp[t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf {
    fn mul_assign(&mut self, rhs: Gf) {
        *self = *self * rhs;
    }
}

impl Div for Gf {
    type Output = Result<Gf>;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Gf) -> Result<Gf> {
        Ok(self * rhs.inverse()?)
    }
}

impl std::fmt::Display for Gf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

/// Multiply-accumulate a byte slice: `dst[i] += coeff · src[i]`, the inner
/// loop of Reed–Solomon encoding and reconstruction.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], coeff: Gf) {
    assert_eq!(dst.len(), src.len(), "mul_acc: length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[coeff.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[log_c + t.log[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a) + Gf(a), Gf::ZERO);
            assert_eq!(Gf(a) + Gf::ZERO, Gf(a));
            assert_eq!(Gf(a) - Gf(a), Gf::ZERO);
        }
    }

    #[test]
    fn multiplication_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a) * Gf::ONE, Gf(a));
            assert_eq!(Gf(a) * Gf::ZERO, Gf::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let inv = Gf(a).inverse().unwrap();
            assert_eq!(Gf(a) * inv, Gf::ONE, "a = {a}");
        }
        assert!(Gf::ZERO.inverse().is_err());
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        // Spot-check associativity over a structured subset.
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                assert_eq!(Gf(a) * Gf(b), Gf(b) * Gf(a));
                for c in (0..=255u8).step_by(51) {
                    assert_eq!((Gf(a) * Gf(b)) * Gf(c), Gf(a) * (Gf(b) * Gf(c)));
                }
            }
        }
    }

    #[test]
    fn distributivity() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(Gf(a) * (Gf(b) + Gf(c)), Gf(a) * Gf(b) + Gf(a) * Gf(c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // α must generate all 255 non-zero elements.
        let mut seen = std::collections::HashSet::new();
        for n in 0..255 {
            seen.insert(Gf::alpha_pow(n).0);
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0));
        assert_eq!(Gf::alpha_pow(255), Gf::ONE);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [1u8, 2, 3, 0x53, 0xff] {
            let mut acc = Gf::ONE;
            for n in 0..20 {
                assert_eq!(Gf(a).pow(n), acc, "a={a}, n={n}");
                acc *= Gf(a);
            }
        }
        assert_eq!(Gf::ZERO.pow(0), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(5), Gf::ZERO);
    }

    #[test]
    fn division_roundtrip() {
        for a in (1..=255u8).step_by(3) {
            for b in (1..=255u8).step_by(5) {
                let q = (Gf(a) / Gf(b)).unwrap();
                assert_eq!(q * Gf(b), Gf(a));
            }
        }
        assert!((Gf(5) / Gf::ZERO).is_err());
    }

    #[test]
    fn mul_acc_matches_scalar_path() {
        let src: Vec<u8> = (0..64).map(|i| (i * 37 + 5) as u8).collect();
        for coeff in [0u8, 1, 2, 0x1d, 0xe5] {
            let mut dst = vec![0xaau8; 64];
            let mut expected = dst.clone();
            mul_acc(&mut dst, &src, Gf(coeff));
            for (e, s) in expected.iter_mut().zip(&src) {
                *e = (Gf(*e) + Gf(coeff) * Gf(*s)).0;
            }
            assert_eq!(dst, expected, "coeff = {coeff}");
        }
    }

    #[test]
    fn display_and_constants() {
        assert_eq!(format!("{}", Gf(0x1d)), "0x1d");
        assert_eq!(Gf::default(), Gf::ZERO);
        assert_eq!(Gf::ONE.0, 1);
    }
}
