//! Arithmetic in the Galois field GF(2⁸).
//!
//! The field is realized as polynomials over GF(2) modulo the primitive
//! polynomial `x⁸ + x⁴ + x³ + x² + 1` (`0x11d`), the conventional choice
//! for Reed–Solomon storage codes. Multiplication and division go through
//! log/antilog tables built once at startup; addition is XOR.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};
use std::sync::OnceLock;

use crate::{Error, Result};

/// The primitive polynomial `x⁸ + x⁴ + x³ + x² + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// The multiplicative generator used to build the log tables.
pub const GENERATOR: u8 = 0x02;

struct Tables {
    exp: [u8; 512], // doubled so exp[log a + log b] needs no modulo
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Split-nibble multiply tables: for every coefficient `c`, two 16-entry
/// tables covering the low and high 4 bits of the other factor, so that
/// `c · s = lo[c][s & 0xf] ^ hi[c][s >> 4]` (multiplication distributes
/// over the XOR decomposition `s = s_lo ⊕ (s_hi << 4)`).
///
/// 2 × 256 × 16 = 8 KiB total — the whole structure stays L1-resident,
/// unlike a flat 64 KiB product table.
struct NibbleTables {
    lo: [[u8; 16]; 256],
    hi: [[u8; 16]; 256],
}

fn nibble_tables() -> &'static NibbleTables {
    static NIBBLES: OnceLock<Box<NibbleTables>> = OnceLock::new();
    NIBBLES.get_or_init(|| {
        let mut t = Box::new(NibbleTables {
            lo: [[0u8; 16]; 256],
            hi: [[0u8; 16]; 256],
        });
        for c in 0..256usize {
            for v in 0..16usize {
                t.lo[c][v] = (Gf(c as u8) * Gf(v as u8)).0;
                t.hi[c][v] = (Gf(c as u8) * Gf((v << 4) as u8)).0;
            }
        }
        t
    })
}

/// An element of GF(2⁸).
///
/// Implements the full field arithmetic via operator overloads; note that
/// in characteristic 2, subtraction *is* addition (both XOR).
///
/// ```
/// use nsr_erasure::gf256::Gf;
///
/// # fn main() -> Result<(), nsr_erasure::Error> {
/// let a = Gf(0x53);
/// assert_eq!(a * a.inverse()?, Gf(0x01));
/// assert_eq!(a + a, Gf(0)); // characteristic 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf(pub u8);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] for the zero element.
    pub fn inverse(self) -> Result<Gf> {
        if self.0 == 0 {
            return Err(Error::DivisionByZero);
        }
        let t = tables();
        Ok(Gf(t.exp[255 - t.log[self.0 as usize] as usize]))
    }

    /// `self` raised to the `n`-th power (`0⁰ = 1` by convention).
    pub fn pow(self, n: u32) -> Gf {
        if n == 0 {
            return Gf::ONE;
        }
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let log = t.log[self.0 as usize] as u32;
        Gf(t.exp[((log * n) % 255) as usize])
    }

    /// The element `α^n` for the field generator α = 2.
    pub fn alpha_pow(n: u32) -> Gf {
        Gf(GENERATOR).pow(n)
    }
}

impl Add for Gf {
    type Output = Gf;
    // In GF(2⁸) addition *is* XOR; clippy's suspicious-arithmetic lint
    // doesn't know field theory.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf {
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf {
    type Output = Gf;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf) -> Gf {
        // Characteristic 2: subtraction is addition.
        self + rhs
    }
}

impl Mul for Gf {
    type Output = Gf;
    fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        Gf(t.exp[t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf {
    fn mul_assign(&mut self, rhs: Gf) {
        *self = *self * rhs;
    }
}

impl Div for Gf {
    type Output = Result<Gf>;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Gf) -> Result<Gf> {
        Ok(self * rhs.inverse()?)
    }
}

impl std::fmt::Display for Gf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

/// Below this many bytes the word kernel's one-time setup (flattening the
/// nibble tables) costs more than it saves; fall back to per-byte lookups.
const WIDE_KERNEL_THRESHOLD: usize = 256;

/// At or above this many bytes the vectorized kernel (when the CPU has
/// one) amortizes its per-call bit-matrix construction.
const ACCEL_THRESHOLD: usize = 64;

/// The multiply-accumulate kernel tier that large-block dispatch selects
/// on this machine: `"gfni-avx512"` when the vectorized kernel is
/// available, `"portable-wide"` otherwise. (Slices under the dispatch
/// thresholds and the 0/1 coefficients always take the scalar paths.)
/// Fixed for the life of the process; the observability layer records it
/// once at registration.
pub fn kernel_tier() -> &'static str {
    if crate::simd::accel_available() {
        "gfni-avx512"
    } else {
        "portable-wide"
    }
}

/// Multiply-accumulate a byte slice: `dst[i] += coeff · src[i]`, the inner
/// loop of Reed–Solomon encoding and reconstruction.
///
/// Three tiers, fastest available wins:
///
/// 1. a vectorized GF(2⁸) kernel (x86 `GFNI`, 64 bytes/instruction) when
///    the CPU supports it and the slice is long enough to amortize setup,
/// 2. the portable wide kernel ([`mul_acc_portable`]): a flattened
///    256-entry product table driven in 8-byte `u64` words,
/// 3. per-byte split-nibble lookups for short slices.
///
/// All tiers are differentially tested against the scalar log/exp
/// definition, [`mul_acc_reference`], and produce identical bytes.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc(dst: &mut [u8], src: &[u8], coeff: Gf) {
    assert_eq!(dst.len(), src.len(), "mul_acc: length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        xor_acc(dst, src);
        return;
    }
    if dst.len() >= ACCEL_THRESHOLD && crate::simd::mul_acc_accel(dst, src, coeff) {
        return;
    }
    mul_acc_portable_inner(dst, src, coeff);
}

/// Multiply with overwrite semantics: `dst[i] = coeff · src[i]`, ignoring
/// whatever `dst` held before. This is the first-pass form of [`mul_acc`]:
/// an encoder seeding its parity rows from the first data shard can skip
/// the zero-fill *and* the read-modify-write the accumulate form pays —
/// one store pass instead of a memset plus a load-xor-store pass, which
/// matters on the serving hot path where every parity buffer is fresh.
///
/// The common coefficients stay special-cased: `0` is a fill, `1` is a
/// straight copy (the XOR-code case).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_into(dst: &mut [u8], src: &[u8], coeff: Gf) {
    assert_eq!(dst.len(), src.len(), "mul_into: length mismatch");
    if coeff.0 == 0 {
        dst.fill(0);
        return;
    }
    if coeff.0 == 1 {
        dst.copy_from_slice(src);
        return;
    }
    // General coefficients reuse the accumulate kernels over zeroed
    // output (`x ^ 0 = x`); the two cases above cover the coefficients
    // the serving geometries actually hit on their first pass.
    dst.fill(0);
    if dst.len() >= ACCEL_THRESHOLD && crate::simd::mul_acc_accel(dst, src, coeff) {
        return;
    }
    mul_acc_portable_inner(dst, src, coeff);
}

/// The portable wide kernel behind [`mul_acc`]: the coefficient's two
/// split-nibble tables are flattened into a 256-entry product table held
/// on the stack, and the slice is processed in 8-byte `u64` words (eight
/// independent L1 lookups assembled per word, one XOR-accumulate store)
/// with scalar handling for the unaligned tail. Short slices use the
/// nibble tables directly.
///
/// Public so the perf harness can record this tier separately from the
/// vectorized dispatch; callers should normally use [`mul_acc`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_portable(dst: &mut [u8], src: &[u8], coeff: Gf) {
    assert_eq!(dst.len(), src.len(), "mul_acc: length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        xor_acc(dst, src);
        return;
    }
    mul_acc_portable_inner(dst, src, coeff);
}

fn mul_acc_portable_inner(dst: &mut [u8], src: &[u8], coeff: Gf) {
    let nt = nibble_tables();
    let lo = &nt.lo[coeff.0 as usize];
    let hi = &nt.hi[coeff.0 as usize];
    if dst.len() < WIDE_KERNEL_THRESHOLD {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= lo[(*s & 0x0f) as usize] ^ hi[(*s >> 4) as usize];
        }
        return;
    }
    // Flatten lo/hi into a single 256-entry product table (256 cheap XORs,
    // amortized over the slice): the word loop then needs one L1 load per
    // source byte instead of two.
    let mut flat = [0u8; 256];
    for (h, &hv) in hi.iter().enumerate() {
        for (l, &lv) in lo.iter().enumerate() {
            flat[(h << 4) | l] = hv ^ lv;
        }
    }
    let (d_words, d_tail) = dst.as_chunks_mut::<8>();
    let (s_words, s_tail) = src.as_chunks::<8>();
    for (d, s) in d_words.iter_mut().zip(s_words) {
        // Assembling the mapped word as a byte array (rather than shift/or
        // on a u64) keeps each lane a plain zero-extended load + byte store,
        // which measures ~25% faster than the shift/or form here.
        let mut m = [0u8; 8];
        for (mb, sb) in m.iter_mut().zip(s) {
            *mb = flat[*sb as usize];
        }
        *d = (u64::from_le_bytes(*d) ^ u64::from_le_bytes(m)).to_le_bytes();
    }
    for (d, s) in d_tail.iter_mut().zip(s_tail) {
        *d ^= flat[*s as usize];
    }
}

/// XOR-accumulate `dst[i] ^= src[i]` in 8-byte words (the `coeff == 1`
/// fast path of [`mul_acc`], also used for plain parity).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_acc(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_acc: length mismatch");
    let (d_words, d_tail) = dst.as_chunks_mut::<8>();
    let (s_words, s_tail) = src.as_chunks::<8>();
    for (d, s) in d_words.iter_mut().zip(s_words) {
        *d = (u64::from_le_bytes(*d) ^ u64::from_le_bytes(*s)).to_le_bytes();
    }
    for (d, s) in d_tail.iter_mut().zip(s_tail) {
        *d ^= s;
    }
}

/// The pre-overhaul scalar multiply-accumulate: one branchy log/exp lookup
/// per byte. Kept as the differential-testing reference for [`mul_acc`]
/// and as the "before" datapoint in the perf harness
/// (`cargo bench -p nsr-bench --bench erasure`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_reference(dst: &mut [u8], src: &[u8], coeff: Gf) {
    assert_eq!(dst.len(), src.len(), "mul_acc: length mismatch");
    if coeff.0 == 0 {
        return;
    }
    if coeff.0 == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[coeff.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[log_c + t.log[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a) + Gf(a), Gf::ZERO);
            assert_eq!(Gf(a) + Gf::ZERO, Gf(a));
            assert_eq!(Gf(a) - Gf(a), Gf::ZERO);
        }
    }

    #[test]
    fn multiplication_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a) * Gf::ONE, Gf(a));
            assert_eq!(Gf(a) * Gf::ZERO, Gf::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let inv = Gf(a).inverse().unwrap();
            assert_eq!(Gf(a) * inv, Gf::ONE, "a = {a}");
        }
        assert!(Gf::ZERO.inverse().is_err());
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        // Spot-check associativity over a structured subset.
        for a in (0..=255u8).step_by(17) {
            for b in (0..=255u8).step_by(13) {
                assert_eq!(Gf(a) * Gf(b), Gf(b) * Gf(a));
                for c in (0..=255u8).step_by(51) {
                    assert_eq!((Gf(a) * Gf(b)) * Gf(c), Gf(a) * (Gf(b) * Gf(c)));
                }
            }
        }
    }

    #[test]
    fn distributivity() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                for c in (0..=255u8).step_by(29) {
                    assert_eq!(Gf(a) * (Gf(b) + Gf(c)), Gf(a) * Gf(b) + Gf(a) * Gf(c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // α must generate all 255 non-zero elements.
        let mut seen = std::collections::HashSet::new();
        for n in 0..255 {
            seen.insert(Gf::alpha_pow(n).0);
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0));
        assert_eq!(Gf::alpha_pow(255), Gf::ONE);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [1u8, 2, 3, 0x53, 0xff] {
            let mut acc = Gf::ONE;
            for n in 0..20 {
                assert_eq!(Gf(a).pow(n), acc, "a={a}, n={n}");
                acc *= Gf(a);
            }
        }
        assert_eq!(Gf::ZERO.pow(0), Gf::ONE);
        assert_eq!(Gf::ZERO.pow(5), Gf::ZERO);
    }

    #[test]
    fn division_roundtrip() {
        for a in (1..=255u8).step_by(3) {
            for b in (1..=255u8).step_by(5) {
                let q = (Gf(a) / Gf(b)).unwrap();
                assert_eq!(q * Gf(b), Gf(a));
            }
        }
        assert!((Gf(5) / Gf::ZERO).is_err());
    }

    #[test]
    fn mul_acc_matches_scalar_path() {
        let src: Vec<u8> = (0..64).map(|i| (i * 37 + 5) as u8).collect();
        for coeff in [0u8, 1, 2, 0x1d, 0xe5] {
            let mut dst = vec![0xaau8; 64];
            let mut expected = dst.clone();
            mul_acc(&mut dst, &src, Gf(coeff));
            for (e, s) in expected.iter_mut().zip(&src) {
                *e = (Gf(*e) + Gf(coeff) * Gf(*s)).0;
            }
            assert_eq!(dst, expected, "coeff = {coeff}");
        }
    }

    #[test]
    fn mul_into_ignores_prior_contents_and_matches_acc_from_zero() {
        let src: Vec<u8> = (0..301).map(|i| (i * 31 + 7) as u8).collect();
        for coeff in [0u8, 1, 2, 0x1d, 0xe5] {
            let mut got = vec![0x55u8; src.len()]; // garbage that must vanish
            mul_into(&mut got, &src, Gf(coeff));
            let mut want = vec![0u8; src.len()];
            mul_acc(&mut want, &src, Gf(coeff));
            assert_eq!(got, want, "coeff = {coeff}");
        }
    }

    #[test]
    fn nibble_tables_decompose_multiplication() {
        let nt = nibble_tables();
        for c in 0..=255u8 {
            for s in 0..=255u8 {
                let want = (Gf(c) * Gf(s)).0;
                let got =
                    nt.lo[c as usize][(s & 0x0f) as usize] ^ nt.hi[c as usize][(s >> 4) as usize];
                assert_eq!(got, want, "c={c}, s={s}");
            }
        }
    }

    #[test]
    fn wide_kernel_matches_reference_across_lengths() {
        // Cover the short (nibble) path, the wide (u64-word) path, and the
        // vectorized dispatch tier, including every head/tail remainder
        // mod 8 and the accel threshold boundary.
        for len in (0..40).chain([63, 64, 65, 255, 256, 257, 1000, 1031]) {
            let src: Vec<u8> = (0..len).map(|i| (i * 151 + 13) as u8).collect();
            for coeff in [0u8, 1, 3, 0x1d, 0x80, 0xff] {
                let init = (0..len).map(|i| (i * 29 + 7) as u8).collect::<Vec<u8>>();
                let mut slow = init.clone();
                mul_acc_reference(&mut slow, &src, Gf(coeff));
                for (kernel, name) in [
                    (mul_acc as fn(&mut [u8], &[u8], Gf), "mul_acc"),
                    (mul_acc_portable, "mul_acc_portable"),
                ] {
                    let mut fast = init.clone();
                    kernel(&mut fast, &src, Gf(coeff));
                    assert_eq!(fast, slow, "{name}, len={len}, coeff={coeff}");
                }
            }
        }
    }

    #[test]
    fn all_coefficients_agree_across_kernels() {
        // Every coefficient, a length exercising blocks + tails on every
        // tier (the bugfix class this guards: a wrong bit-matrix or table
        // entry for one specific coefficient).
        let len = 200;
        let src: Vec<u8> = (0..len).map(|i| (i * 151 + 13) as u8).collect();
        for coeff in 0..=255u8 {
            let init = (0..len).map(|i| (i * 29 + 7) as u8).collect::<Vec<u8>>();
            let mut slow = init.clone();
            mul_acc_reference(&mut slow, &src, Gf(coeff));
            let mut fast = init.clone();
            mul_acc(&mut fast, &src, Gf(coeff));
            assert_eq!(fast, slow, "mul_acc, coeff={coeff}");
            let mut fast = init;
            mul_acc_portable(&mut fast, &src, Gf(coeff));
            assert_eq!(fast, slow, "mul_acc_portable, coeff={coeff}");
        }
    }

    #[test]
    fn xor_acc_is_mul_acc_by_one() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let src: Vec<u8> = (0..len).map(|i| (i * 91 + 3) as u8).collect();
            let mut a = (0..len).map(|i| (i * 5 + 1) as u8).collect::<Vec<u8>>();
            let mut b = a.clone();
            xor_acc(&mut a, &src);
            mul_acc_reference(&mut b, &src, Gf::ONE);
            assert_eq!(a, b, "len={len}");
        }
    }

    #[test]
    fn display_and_constants() {
        assert_eq!(format!("{}", Gf(0x1d)), "0x1d");
        assert_eq!(Gf::default(), Gf::ZERO);
        assert_eq!(Gf::ONE.0, 1);
    }
}
