//! Metric handles for the erasure crate.
//!
//! All of these are no-ops until `nsr_obs::set_metrics_enabled(true)`;
//! see `nsr-obs` for the cost contract. Instrumentation sits on coarse
//! seams (plan-cache lookups, rebuild completion, retry decisions) —
//! never inside the GF(2⁸) inner kernels, whose per-call cost is a few
//! nanoseconds.

use nsr_obs::{Counter, Gauge, Histogram};

/// Decode-plan cache hits (`BrickStore` degraded reads and rebuilds).
pub static PLAN_CACHE_HITS: Counter = Counter::new("erasure.plan_cache.hits");
/// Decode-plan cache misses (a matrix inversion was paid).
pub static PLAN_CACHE_MISSES: Counter = Counter::new("erasure.plan_cache.misses");
/// Hit fraction `hits / (hits + misses)`; recomputed on each lookup.
pub static PLAN_CACHE_HIT_RATE: Gauge = Gauge::new("erasure.plan_cache.hit_rate");
/// Puts redirected past a redundancy set containing a failed node.
pub static PUT_REDIRECTS: Counter = Counter::new("erasure.store.put_redirects");
/// Shards reconstructed by completed rebuilds.
pub static REBUILD_SHARDS: Counter = Counter::new("erasure.rebuild.shards_rebuilt");
/// Bytes read from surviving nodes by completed rebuilds.
pub static REBUILD_BYTES_READ: Counter = Counter::new("erasure.rebuild.bytes_read");
/// Bytes written to revived nodes by completed rebuilds.
pub static REBUILD_BYTES_WRITTEN: Counter = Counter::new("erasure.rebuild.bytes_written");
/// Whole-rebuild throughput (bytes read + written per wall second) of
/// each `rebuild_node` call.
pub static REBUILD_BYTES_PER_S: Histogram = Histogram::new("erasure.rebuild.bytes_per_s");
/// Retryable rebuild failures that triggered a backoff + retry.
pub static REBUILD_RETRIES: Counter = Counter::new("erasure.rebuild.retries");
/// Backoff durations (hours) scheduled by `rebuild_with_retry`.
pub static RETRY_BACKOFF_HOURS: Histogram = Histogram::new("erasure.rebuild.backoff_hours");
/// 1.0 when the vectorized GF(2⁸) kernel is available on this CPU, else
/// 0.0 (see `gf256::kernel_tier`).
pub static KERNEL_ACCEL: Gauge = Gauge::new("erasure.kernel.accel");

/// Recomputes [`PLAN_CACHE_HIT_RATE`] from the two counters.
pub fn update_plan_cache_hit_rate() {
    if !nsr_obs::metrics_enabled() {
        return;
    }
    let hits = PLAN_CACHE_HITS.get() as f64;
    let misses = PLAN_CACHE_MISSES.get() as f64;
    if hits + misses > 0.0 {
        PLAN_CACHE_HIT_RATE.set(hits / (hits + misses));
    }
}

/// Registers every metric in this module with the global registry and
/// records the (process-constant) kernel tier.
pub fn register() {
    PLAN_CACHE_HITS.register();
    PLAN_CACHE_MISSES.register();
    PLAN_CACHE_HIT_RATE.register();
    PUT_REDIRECTS.register();
    REBUILD_SHARDS.register();
    REBUILD_BYTES_READ.register();
    REBUILD_BYTES_WRITTEN.register();
    REBUILD_BYTES_PER_S.register();
    REBUILD_RETRIES.register();
    RETRY_BACKOFF_HOURS.register();
    KERNEL_ACCEL.register();
    let tier = crate::gf256::kernel_tier();
    KERNEL_ACCEL.set(if tier == "gfni-avx512" { 1.0 } else { 0.0 });
    nsr_obs::trace::event("erasure.kernel_tier", || {
        vec![("tier", nsr_obs::Json::Str(tier.into()))]
    });
}
