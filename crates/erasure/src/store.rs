//! A miniature brick object store: the storage system the paper models,
//! working end to end in memory.
//!
//! Objects are striped over a redundancy set (§4.1): split into `R − t`
//! data shards, encoded to `R` shards with the Reed–Solomon code, and
//! placed on the `R` nodes of a rotational redundancy set. The store
//! supports the failure modes the reliability analysis reasons about:
//!
//! * **node failure** (`fail_node`) — every shard on the node is lost;
//! * **degraded reads** (`get` keeps working while ≤ `t` of an object's
//!   nodes are down, decoding on the fly);
//! * **distributed rebuild** (`rebuild_node`) — lost shards are
//!   reconstructed from survivors, with the §5.1-style traffic reported;
//! * **latent sector corruption** (`corrupt_shard`) and **scrubbing**
//!   (`scrub`) — parity verification across all objects.
//!
//! This is deliberately a *functional* model (no I/O scheduling); timing
//! belongs to `nsr-core`'s rebuild model and `nsr-sim`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::placement::Placement;
use crate::rs::ReedSolomon;
use crate::{Error, Result};

/// Identifier of a stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct ObjectMeta {
    set_index: usize,
    len: usize,
    shard_len: usize,
}

/// Traffic accounting for one node rebuild, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebuildReport {
    /// Shards reconstructed onto the revived node.
    pub shards_rebuilt: u64,
    /// Bytes read from surviving nodes to feed the reconstructions.
    pub bytes_read: u64,
    /// Bytes written to the revived node.
    pub bytes_written: u64,
}

/// Result of a full-store parity scrub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Objects whose stripe verified clean.
    pub clean: u64,
    /// Objects with a parity mismatch (latent corruption).
    pub corrupt: u64,
    /// Objects that could not be fully checked (shards on failed nodes).
    pub degraded: u64,
}

/// An in-memory brick store over `N` nodes with redundancy sets of size
/// `R` and erasure-code fault tolerance `t`.
///
/// # Example
///
/// ```
/// use nsr_erasure::store::{BrickStore, ObjectId};
///
/// # fn main() -> Result<(), nsr_erasure::Error> {
/// let mut store = BrickStore::new(8, 5, 2)?;
/// store.put(ObjectId(1), b"hello, bricks!")?;
/// store.fail_node(0)?;
/// store.fail_node(3)?;
/// assert_eq!(store.get(ObjectId(1))?, b"hello, bricks!"); // degraded read
/// store.rebuild_node(0)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BrickStore {
    placement: Placement,
    code: ReedSolomon,
    t: usize,
    /// `nodes[v]` is `None` while node `v` is failed; otherwise the shard
    /// map `(object, position-in-set) → bytes`.
    nodes: Vec<Option<HashMap<(ObjectId, usize), Vec<u8>>>>,
    objects: HashMap<ObjectId, ObjectMeta>,
    next_set: usize,
}

impl BrickStore {
    /// Creates an empty store with the rotational placement.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] / [`Error::InvalidGeometry`] for
    ///   impossible sizes (`t >= r`, `r > n`, …).
    pub fn new(n: u32, r: u32, t: u32) -> Result<BrickStore> {
        if t == 0 || t >= r {
            return Err(Error::InvalidPlacement {
                what: format!("fault tolerance {t} must satisfy 1 <= t < R = {r}"),
            });
        }
        let placement = Placement::rotational(n, r)?;
        let code = ReedSolomon::new((r - t) as usize, t as usize)?;
        Ok(BrickStore {
            placement,
            code,
            t: t as usize,
            nodes: (0..n).map(|_| Some(HashMap::new())).collect(),
            objects: HashMap::new(),
            next_set: 0,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Ids of currently-failed nodes.
    pub fn failed_nodes(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(v, n)| n.is_none().then_some(v as u32))
            .collect()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Stores an object, striping it across the next redundancy set.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] if the id is already present, the
    ///   object is empty, or any target node is currently failed (writes
    ///   require a whole set; real systems would pick another set — kept
    ///   strict here to make tests deterministic).
    pub fn put(&mut self, id: ObjectId, data: &[u8]) -> Result<()> {
        if self.objects.contains_key(&id) {
            return Err(Error::InvalidPlacement { what: format!("{id} already stored") });
        }
        if data.is_empty() {
            return Err(Error::InvalidPlacement { what: "cannot store an empty object".into() });
        }
        let set_index = self.next_set % self.placement.len();
        let set = &self.placement.sets()[set_index];
        if set.iter().any(|&v| self.nodes[v as usize].is_none()) {
            return Err(Error::InvalidPlacement {
                what: format!("redundancy set {set_index} has a failed node"),
            });
        }
        let k = self.code.data_shards();
        let shard_len = data.len().div_ceil(k);
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(k);
        for i in 0..k {
            let start = (i * shard_len).min(data.len());
            let end = ((i + 1) * shard_len).min(data.len());
            let mut s = data[start..end].to_vec();
            s.resize(shard_len, 0);
            shards.push(s);
        }
        let encoded = self.code.encode(&shards)?;
        for (pos, shard) in encoded.into_iter().enumerate() {
            let node = set[pos] as usize;
            self.nodes[node]
                .as_mut()
                .expect("checked alive")
                .insert((id, pos), shard);
        }
        self.objects
            .insert(id, ObjectMeta { set_index, len: data.len(), shard_len });
        self.next_set += 1;
        Ok(())
    }

    /// Reads an object back, decoding around up to `t` failed nodes.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] for unknown ids.
    /// * [`Error::TooManyErasures`] when more than `t` of the object's
    ///   shards are unavailable — the paper's data-loss event.
    pub fn get(&self, id: ObjectId) -> Result<Vec<u8>> {
        let meta = self
            .objects
            .get(&id)
            .ok_or_else(|| Error::InvalidPlacement { what: format!("{id} not found") })?;
        let set = &self.placement.sets()[meta.set_index];
        let mut shards: Vec<Option<Vec<u8>>> = set
            .iter()
            .enumerate()
            .map(|(pos, &node)| {
                self.nodes[node as usize]
                    .as_ref()
                    .and_then(|m| m.get(&(id, pos)).cloned())
            })
            .collect();
        let missing = shards.iter().filter(|s| s.is_none()).count();
        if missing > 0 {
            self.code.reconstruct(&mut shards)?;
        }
        let k = self.code.data_shards();
        let mut out = Vec::with_capacity(meta.len);
        for shard in shards.into_iter().take(k) {
            out.extend_from_slice(&shard.expect("reconstructed"));
        }
        out.truncate(meta.len);
        Ok(out)
    }

    /// Marks a node failed, dropping every shard it held.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPlacement`] for out-of-range or
    /// already-failed nodes.
    pub fn fail_node(&mut self, node: u32) -> Result<()> {
        let slot = self
            .nodes
            .get_mut(node as usize)
            .ok_or_else(|| Error::InvalidPlacement { what: format!("node {node} out of range") })?;
        if slot.is_none() {
            return Err(Error::InvalidPlacement { what: format!("node {node} already failed") });
        }
        *slot = None;
        Ok(())
    }

    /// Revives a failed node and reconstructs every shard it should hold,
    /// reading `R − t` surviving shards per affected object — the rebuild
    /// whose traffic §5.1 accounts for.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] if the node is not failed.
    /// * [`Error::TooManyErasures`] if some object has lost more than `t`
    ///   shards (data loss: the rebuild cannot complete).
    pub fn rebuild_node(&mut self, node: u32) -> Result<RebuildReport> {
        let idx = node as usize;
        match self.nodes.get(idx) {
            Some(None) => {}
            Some(Some(_)) => {
                return Err(Error::InvalidPlacement {
                    what: format!("node {node} is not failed"),
                })
            }
            None => {
                return Err(Error::InvalidPlacement {
                    what: format!("node {node} out of range"),
                })
            }
        }
        let mut restored: HashMap<(ObjectId, usize), Vec<u8>> = HashMap::new();
        let mut report = RebuildReport { shards_rebuilt: 0, bytes_read: 0, bytes_written: 0 };
        for (&id, meta) in &self.objects {
            let set = &self.placement.sets()[meta.set_index];
            let Some(pos) = set.iter().position(|&v| v == node) else { continue };
            // Gather survivors.
            let mut shards: Vec<Option<Vec<u8>>> = set
                .iter()
                .enumerate()
                .map(|(p, &v)| {
                    self.nodes[v as usize]
                        .as_ref()
                        .and_then(|m| m.get(&(id, p)).cloned())
                })
                .collect();
            let available = shards.iter().filter(|s| s.is_some()).count();
            report.bytes_read +=
                (self.code.data_shards().min(available) * meta.shard_len) as u64;
            self.code.reconstruct(&mut shards)?;
            let shard = shards[pos].take().expect("reconstructed");
            report.bytes_written += shard.len() as u64;
            report.shards_rebuilt += 1;
            restored.insert((id, pos), shard);
        }
        self.nodes[idx] = Some(restored);
        Ok(report)
    }

    /// Flips one byte of a stored shard — a latent sector error for tests
    /// and scrubbing demonstrations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPlacement`] if the shard is not present on
    /// that node.
    pub fn corrupt_shard(&mut self, node: u32, id: ObjectId, byte: usize) -> Result<()> {
        let meta = self
            .objects
            .get(&id)
            .ok_or_else(|| Error::InvalidPlacement { what: format!("{id} not found") })?;
        let set = &self.placement.sets()[meta.set_index];
        let pos = set
            .iter()
            .position(|&v| v == node)
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("node {node} does not hold {id}"),
            })?;
        let shard = self
            .nodes
            .get_mut(node as usize)
            .and_then(|n| n.as_mut())
            .and_then(|m| m.get_mut(&(id, pos)))
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("node {node} has no live shard of {id}"),
            })?;
        let i = byte % shard.len();
        shard[i] ^= 0x5a;
        Ok(())
    }

    /// Verifies the parity of every fully-available object.
    ///
    /// # Errors
    ///
    /// Propagates code errors (cannot occur for well-formed stored data).
    pub fn scrub(&self) -> Result<ScrubReport> {
        let mut report = ScrubReport { clean: 0, corrupt: 0, degraded: 0 };
        for (&id, meta) in &self.objects {
            let set = &self.placement.sets()[meta.set_index];
            let shards: Vec<Option<&Vec<u8>>> = set
                .iter()
                .enumerate()
                .map(|(p, &v)| self.nodes[v as usize].as_ref().and_then(|m| m.get(&(id, p))))
                .collect();
            if shards.iter().any(|s| s.is_none()) {
                report.degraded += 1;
                continue;
            }
            let full: Vec<&[u8]> = shards.into_iter().map(|s| s.expect("checked").as_slice()).collect();
            if self.code.verify(&full)? {
                report.clean += 1;
            } else {
                report.corrupt += 1;
            }
        }
        let _ = self.t;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BrickStore {
        BrickStore::new(10, 5, 2).unwrap()
    }

    fn blob(seed: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| seed.wrapping_mul(31).wrapping_add(i as u8)).collect()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = store();
        for i in 0..20u64 {
            s.put(ObjectId(i), &blob(i as u8, 100 + i as usize * 13)).unwrap();
        }
        assert_eq!(s.len(), 20);
        for i in 0..20u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 100 + i as usize * 13));
        }
    }

    #[test]
    fn odd_sizes_pad_and_truncate() {
        let mut s = store();
        for (i, len) in [1usize, 2, 3, 7, 299].iter().enumerate() {
            let id = ObjectId(i as u64);
            s.put(id, &blob(i as u8 + 1, *len)).unwrap();
            assert_eq!(s.get(id).unwrap().len(), *len);
        }
    }

    #[test]
    fn degraded_reads_survive_t_failures() {
        let mut s = store();
        for i in 0..30u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(2).unwrap();
        s.fail_node(7).unwrap();
        for i in 0..30u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 64), "object {i}");
        }
    }

    #[test]
    fn data_loss_past_tolerance() {
        let mut s = store();
        for i in 0..30u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        // Fail three adjacent nodes: the rotational sets {1,2,3,4,5} etc.
        // lose three members.
        s.fail_node(2).unwrap();
        s.fail_node(3).unwrap();
        s.fail_node(4).unwrap();
        let lost = (0..30u64)
            .filter(|&i| s.get(ObjectId(i)).is_err())
            .count();
        assert!(lost > 0, "some objects must be lost past tolerance");
        // And the error is the data-loss error, not a panic.
        let err = (0..30u64)
            .find_map(|i| s.get(ObjectId(i)).err())
            .expect("a loss exists");
        assert!(matches!(err, Error::TooManyErasures { .. }));
    }

    #[test]
    fn rebuild_restores_exactly_the_lost_shards() {
        let mut s = store();
        for i in 0..40u64 {
            s.put(ObjectId(i), &blob(i as u8, 128)).unwrap();
        }
        s.fail_node(4).unwrap();
        let report = s.rebuild_node(4).unwrap();
        assert!(report.shards_rebuilt > 0);
        // Each rebuilt shard read R−t = 3 survivors of shard_len bytes
        // (128-byte objects over k = 3 data shards: ceil(128/3) = 43).
        assert_eq!(report.bytes_read, report.shards_rebuilt * 3 * 43);
        assert_eq!(report.bytes_written, report.shards_rebuilt * 43);
        assert!(s.failed_nodes().is_empty());
        for i in 0..40u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 128));
        }
        // Scrub confirms parity consistency after rebuild.
        let scrub = s.scrub().unwrap();
        assert_eq!(scrub.corrupt, 0);
        assert_eq!(scrub.degraded, 0);
        assert_eq!(scrub.clean, 40);
    }

    #[test]
    fn rebuild_with_concurrent_failure_still_works_within_t() {
        let mut s = store();
        for i in 0..40u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(1).unwrap();
        s.fail_node(5).unwrap();
        // Rebuild node 1 while node 5 is still down (t = 2 allows it).
        let report = s.rebuild_node(1).unwrap();
        assert!(report.shards_rebuilt > 0);
        for i in 0..40u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 64));
        }
    }

    #[test]
    fn scrub_finds_latent_corruption() {
        let mut s = store();
        s.put(ObjectId(1), &blob(9, 256)).unwrap();
        s.put(ObjectId(2), &blob(10, 256)).unwrap();
        assert_eq!(s.scrub().unwrap(), ScrubReport { clean: 2, corrupt: 0, degraded: 0 });
        // Corrupt a shard of object 1 on one of its nodes (set 1 starts at
        // node 1 for the rotational layout).
        s.corrupt_shard(2, ObjectId(1), 17).unwrap();
        let r = s.scrub().unwrap();
        assert_eq!(r.corrupt, 1);
        assert_eq!(r.clean, 1);
    }

    #[test]
    fn scrub_reports_degraded_objects() {
        let mut s = store();
        s.put(ObjectId(1), &blob(3, 64)).unwrap();
        s.fail_node(1).unwrap();
        let r = s.scrub().unwrap();
        assert_eq!(r.degraded, 1);
    }

    #[test]
    fn api_validation() {
        let mut s = store();
        s.put(ObjectId(1), &blob(1, 32)).unwrap();
        assert!(s.put(ObjectId(1), &blob(1, 32)).is_err()); // duplicate
        assert!(s.put(ObjectId(2), b"").is_err()); // empty
        assert!(s.get(ObjectId(99)).is_err()); // unknown
        assert!(s.fail_node(99).is_err());
        s.fail_node(3).unwrap();
        assert!(s.fail_node(3).is_err()); // double failure
        assert!(s.rebuild_node(4).is_err()); // not failed
        assert!(BrickStore::new(4, 5, 2).is_err()); // R > N
        assert!(BrickStore::new(8, 4, 4).is_err()); // t >= R
        assert!(BrickStore::new(8, 4, 0).is_err()); // t == 0
    }

    #[test]
    fn writes_to_degraded_sets_are_refused() {
        let mut s = BrickStore::new(6, 6, 2).unwrap(); // every set spans all nodes
        s.fail_node(0).unwrap();
        assert!(s.put(ObjectId(1), &blob(1, 32)).is_err());
    }

    #[test]
    fn display_and_helpers() {
        let s = store();
        assert!(s.is_empty());
        assert_eq!(s.node_count(), 10);
        assert_eq!(format!("{}", ObjectId(7)), "obj7");
    }
}
