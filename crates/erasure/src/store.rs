//! A miniature brick object store: the storage system the paper models,
//! working end to end in memory.
//!
//! Objects are striped over a redundancy set (§4.1): split into `R − t`
//! data shards, encoded to `R` shards with the Reed–Solomon code, and
//! placed on the `R` nodes of a rotational redundancy set. The store
//! supports the failure modes the reliability analysis reasons about:
//!
//! * **node failure** (`fail_node`) — every shard on the node is lost;
//! * **degraded reads** (`get` keeps working while ≤ `t` of an object's
//!   nodes are down, decoding on the fly);
//! * **distributed rebuild** (`rebuild_node`) — lost shards are
//!   reconstructed from survivors, with the §5.1-style traffic reported;
//! * **latent sector corruption** (`corrupt_shard`) and **scrubbing**
//!   (`scrub`) — parity verification across all objects.
//!
//! # Degraded-operation hardening
//!
//! Rebuilds are built for hostile conditions, the regime the
//! fault-injection campaigns (`nsr-sim`) exercise:
//!
//! * **Checkpointing** — [`BrickStore::begin_rebuild`] /
//!   [`BrickStore::rebuild_step`] process a bounded number of objects per
//!   step; an interrupted rebuild resumes from its checkpoint instead of
//!   restarting, and concurrent failures of *other* nodes (within `t`)
//!   do not invalidate completed work.
//! * **Post-rebuild verification** — every reconstructed stripe is
//!   parity-verified before the node is revived. If a surviving shard
//!   was silently corrupted, the rebuild reports
//!   [`Error::RebuildVerification`] and re-queues the affected objects
//!   rather than installing garbage: injected corruption is never
//!   silently absorbed.
//! * **Bounded-backoff retry** — [`rebuild_with_retry`] retries
//!   retryable rebuild failures with an exponential, capped backoff
//!   schedule (recorded, not slept — this is a functional model).
//! * **Quarantine** — nodes that fail repeatedly
//!   ([`BrickStore::set_quarantine_threshold`]) are refused rebuilds
//!   until an operator clears them with [`BrickStore::unquarantine`],
//!   so a flapping node cannot consume rebuild bandwidth forever.
//!
//! This is deliberately a *functional* model (no I/O scheduling); timing
//! belongs to `nsr-core`'s rebuild model and `nsr-sim`.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::placement::Placement;
use crate::rs::{DecodePlan, ReedSolomon};
use crate::{Error, Result};

/// Capacity of the per-store decode-plan cache. Patterns are tiny
/// (≤ `t` failed nodes at a time) so a handful of entries covers every
/// realistic failure set.
const PLAN_CACHE_CAP: usize = 8;

/// A small LRU of decode plans keyed by erasure pattern, so repeated
/// degraded reads (and rebuild passes) under one failure set invert the
/// decode matrix once instead of per access.
#[derive(Debug, Clone, Default)]
struct PlanCache {
    /// Entries ordered least- to most-recently used.
    entries: Vec<(Vec<usize>, DecodePlan)>,
}

impl PlanCache {
    /// Fetches the plan for `missing`, building (and caching) it on a miss.
    fn get_or_build(&mut self, code: &ReedSolomon, missing: &[usize]) -> Result<DecodePlan> {
        if let Some(i) = self.entries.iter().position(|(k, _)| k == missing) {
            crate::obs::PLAN_CACHE_HITS.inc();
            crate::obs::update_plan_cache_hit_rate();
            let entry = self.entries.remove(i);
            let plan = entry.1.clone();
            self.entries.push(entry); // move to most-recently-used
            return Ok(plan);
        }
        crate::obs::PLAN_CACHE_MISSES.inc();
        crate::obs::update_plan_cache_hit_rate();
        let plan = code.plan_reconstruction(missing)?;
        if self.entries.len() >= PLAN_CACHE_CAP {
            self.entries.remove(0);
        }
        self.entries.push((missing.to_vec(), plan.clone()));
        Ok(plan)
    }
}

/// Identifier of a stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct ObjectMeta {
    set_index: usize,
    len: usize,
    shard_len: usize,
}

/// Traffic accounting for one node rebuild, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebuildReport {
    /// Shards reconstructed onto the revived node.
    pub shards_rebuilt: u64,
    /// Bytes read from surviving nodes to feed the reconstructions.
    pub bytes_read: u64,
    /// Bytes written to the revived node.
    pub bytes_written: u64,
    /// Stripes parity-verified after reconstruction (stripes with other
    /// nodes still down cannot be fully verified and are not counted).
    pub stripes_verified: u64,
}

/// Result of a full-store parity scrub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Objects whose stripe verified clean.
    pub clean: u64,
    /// Objects with a parity mismatch (latent corruption).
    pub corrupt: u64,
    /// Objects that could not be fully checked (shards on failed nodes).
    pub degraded: u64,
}

/// Progress returned by [`BrickStore::rebuild_step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildProgress {
    /// The step's object budget was exhausted; call `rebuild_step` again
    /// to continue from the checkpoint.
    InProgress {
        /// Objects still awaiting reconstruction.
        objects_remaining: u64,
    },
    /// The rebuild finished and the node is live again.
    Complete(RebuildReport),
}

/// Introspection snapshot of an in-progress, checkpointed rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildCheckpoint {
    /// The node being rebuilt.
    pub node: u32,
    /// Shards reconstructed so far (kept across interruptions).
    pub shards_done: u64,
    /// Objects still awaiting reconstruction.
    pub objects_remaining: u64,
}

/// Bounded-backoff retry policy for [`rebuild_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum rebuild attempts (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in hours.
    pub base_backoff_hours: f64,
    /// Cap on any single backoff, in hours (the schedule is
    /// `min(base · 2^i, cap)`).
    pub max_backoff_hours: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_hours: 0.25,
            max_backoff_hours: 4.0,
        }
    }
}

impl RetryPolicy {
    fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(Error::InvalidPlacement {
                what: "retry policy needs at least one attempt".into(),
            });
        }
        if !self.base_backoff_hours.is_finite()
            || self.base_backoff_hours < 0.0
            || !self.max_backoff_hours.is_finite()
            || self.max_backoff_hours < self.base_backoff_hours
        {
            return Err(Error::InvalidPlacement {
                what: "retry backoff must satisfy 0 <= base <= cap, finite".into(),
            });
        }
        Ok(())
    }

    /// The backoff after failed attempt `i` (0-based): `min(base·2^i, cap)`.
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        (self.base_backoff_hours * 2f64.powi(attempt.min(60) as i32)).min(self.max_backoff_hours)
    }
}

/// Outcome of a [`rebuild_with_retry`] call that eventually succeeded.
#[derive(Debug, Clone, PartialEq)]
pub struct RetriedRebuild {
    /// Attempts used (1 = first try succeeded).
    pub attempts: u32,
    /// Backoff recorded before each retry, in hours.
    pub backoff_hours: Vec<f64>,
    /// The completed rebuild's traffic report.
    pub report: RebuildReport,
}

#[derive(Debug, Clone)]
struct RebuildState {
    /// Object ids still to process, sorted descending so `pop()` walks
    /// them in ascending order (deterministic across runs).
    remaining: Vec<ObjectId>,
    /// Reconstructed shards awaiting installation.
    restored: HashMap<(ObjectId, usize), Vec<u8>>,
    report: RebuildReport,
    /// Which nodes were live when this rebuild pass was baselined. A
    /// reconstruction failure while some baseline-live node is down is an
    /// *interruption* (the source died mid-transfer), not permanent loss;
    /// the failure re-baselines so a retry re-derives the true outcome.
    live_at_begin: Vec<bool>,
}

/// Per-node shard map: `(object, position-in-set) → bytes`.
type ShardMap = HashMap<(ObjectId, usize), Vec<u8>>;

/// An in-memory brick store over `N` nodes with redundancy sets of size
/// `R` and erasure-code fault tolerance `t`.
///
/// # Example
///
/// ```
/// use nsr_erasure::store::{BrickStore, ObjectId};
///
/// # fn main() -> Result<(), nsr_erasure::Error> {
/// let mut store = BrickStore::new(8, 5, 2)?;
/// store.put(ObjectId(1), b"hello, bricks!")?;
/// store.fail_node(0)?;
/// store.fail_node(3)?;
/// assert_eq!(store.get(ObjectId(1))?, b"hello, bricks!"); // degraded read
/// store.rebuild_node(0)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BrickStore {
    placement: Placement,
    code: ReedSolomon,
    t: usize,
    /// `nodes[v]` is `None` while node `v` is failed; otherwise its shard
    /// map.
    nodes: Vec<Option<ShardMap>>,
    objects: HashMap<ObjectId, ObjectMeta>,
    next_set: usize,
    /// Lifetime failure count per node (drives quarantine).
    failure_counts: Vec<u32>,
    quarantined: Vec<bool>,
    /// Failures after which a node is quarantined; 0 disables.
    quarantine_threshold: u32,
    /// Checkpointed rebuilds in progress, one per failed node.
    rebuilds: HashMap<u32, RebuildState>,
    /// Decode plans for recently seen erasure patterns (interior
    /// mutability so degraded `get`s can cache through `&self`).
    plan_cache: RefCell<PlanCache>,
}

impl BrickStore {
    /// Creates an empty store with the rotational placement. Quarantine
    /// is disabled by default; enable it with
    /// [`set_quarantine_threshold`](BrickStore::set_quarantine_threshold).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] / [`Error::InvalidGeometry`] for
    ///   impossible sizes (`t >= r`, `r > n`, …).
    pub fn new(n: u32, r: u32, t: u32) -> Result<BrickStore> {
        if t == 0 || t >= r {
            return Err(Error::InvalidPlacement {
                what: format!("fault tolerance {t} must satisfy 1 <= t < R = {r}"),
            });
        }
        let placement = Placement::rotational(n, r)?;
        let code = ReedSolomon::new((r - t) as usize, t as usize)?;
        Ok(BrickStore {
            placement,
            code,
            t: t as usize,
            nodes: (0..n).map(|_| Some(HashMap::new())).collect(),
            objects: HashMap::new(),
            next_set: 0,
            failure_counts: vec![0; n as usize],
            quarantined: vec![false; n as usize],
            quarantine_threshold: 0,
            rebuilds: HashMap::new(),
            plan_cache: RefCell::new(PlanCache::default()),
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Ids of currently-failed nodes.
    pub fn failed_nodes(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(v, n)| n.is_none().then_some(v as u32))
            .collect()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Enables (or, with 0, disables) quarantine: a node whose lifetime
    /// failure count reaches the threshold is refused rebuilds until
    /// [`unquarantine`](BrickStore::unquarantine) clears it.
    pub fn set_quarantine_threshold(&mut self, threshold: u32) {
        self.quarantine_threshold = threshold;
    }

    /// Nodes currently quarantined.
    pub fn quarantined_nodes(&self) -> Vec<u32> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(v, &q)| q.then_some(v as u32))
            .collect()
    }

    /// Lifetime failure count of a node, if it exists.
    pub fn failure_count(&self, node: u32) -> Option<u32> {
        self.failure_counts.get(node as usize).copied()
    }

    /// Operator override: clears a node's quarantine and resets its
    /// failure count. The node stays failed until rebuilt.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidPlacement`] if the node is out of range or not
    /// quarantined.
    pub fn unquarantine(&mut self, node: u32) -> Result<()> {
        let idx = node as usize;
        match self.quarantined.get(idx) {
            Some(true) => {
                self.quarantined[idx] = false;
                self.failure_counts[idx] = 0;
                Ok(())
            }
            Some(false) => Err(Error::InvalidPlacement {
                what: format!("node {node} is not quarantined"),
            }),
            None => Err(Error::InvalidPlacement {
                what: format!("node {node} out of range"),
            }),
        }
    }

    /// Stores an object, striping it across the next *fully live*
    /// redundancy set in round-robin order.
    ///
    /// Writes require a whole set, so placement probes up to
    /// `placement.len()` sets starting from the round-robin cursor and
    /// skips any set containing a failed node: a single failed node no
    /// longer write-deadlocks the store while healthy sets remain, and
    /// successive puts keep rotating over the healthy sets so placement
    /// stays balanced.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] if the id is already present, the
    ///   object is empty, or **every** redundancy set contains a failed
    ///   node.
    pub fn put(&mut self, id: ObjectId, data: &[u8]) -> Result<()> {
        if self.objects.contains_key(&id) {
            return Err(Error::InvalidPlacement {
                what: format!("{id} already stored"),
            });
        }
        if data.is_empty() {
            return Err(Error::InvalidPlacement {
                what: "cannot store an empty object".into(),
            });
        }
        let n_sets = self.placement.len();
        let set_index = (0..n_sets)
            .map(|probe| (self.next_set + probe) % n_sets)
            .find(|&si| {
                self.placement.sets()[si]
                    .iter()
                    .all(|&v| self.nodes[v as usize].is_some())
            })
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("all {n_sets} redundancy sets contain a failed node"),
            })?;
        if set_index != self.next_set % n_sets {
            crate::obs::PUT_REDIRECTS.inc();
        }
        let set = &self.placement.sets()[set_index];
        let k = self.code.data_shards();
        let shard_len = data.len().div_ceil(k);
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(k);
        for i in 0..k {
            let start = (i * shard_len).min(data.len());
            let end = ((i + 1) * shard_len).min(data.len());
            let mut s = data[start..end].to_vec();
            s.resize(shard_len, 0);
            shards.push(s);
        }
        let encoded = self.code.encode(&shards)?;
        for (pos, shard) in encoded.into_iter().enumerate() {
            let node = set[pos] as usize;
            self.nodes[node]
                .as_mut()
                .ok_or(Error::InternalInvariant {
                    what: "node failed between liveness check and shard install",
                })?
                .insert((id, pos), shard);
        }
        self.objects.insert(
            id,
            ObjectMeta {
                set_index,
                len: data.len(),
                shard_len,
            },
        );
        // Advance the cursor past the *chosen* set (not merely by one)
        // so probing under failures keeps rotating over healthy sets.
        self.next_set = set_index + 1;
        Ok(())
    }

    /// Reads an object back, decoding around up to `t` failed nodes.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] for unknown ids.
    /// * [`Error::TooManyErasures`] when more than `t` of the object's
    ///   shards are unavailable — the paper's data-loss event.
    pub fn get(&self, id: ObjectId) -> Result<Vec<u8>> {
        let meta = self
            .objects
            .get(&id)
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("{id} not found"),
            })?;
        let set = &self.placement.sets()[meta.set_index];
        let mut shards: Vec<Option<Vec<u8>>> = set
            .iter()
            .enumerate()
            .map(|(pos, &node)| {
                self.nodes[node as usize]
                    .as_ref()
                    .and_then(|m| m.get(&(id, pos)).cloned())
            })
            .collect();
        let missing: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if !missing.is_empty() {
            // Repeated degraded reads under one failure set share the
            // cached decode plan instead of re-inverting per read.
            let plan = self
                .plan_cache
                .borrow_mut()
                .get_or_build(&self.code, &missing)?;
            self.code.reconstruct_with_plan(&plan, &mut shards)?;
        }
        let k = self.code.data_shards();
        let mut out = Vec::with_capacity(meta.len);
        for shard in shards.into_iter().take(k) {
            out.extend_from_slice(&shard.ok_or(Error::InternalInvariant {
                what: "data shard still missing after reconstruction",
            })?);
        }
        out.truncate(meta.len);
        Ok(out)
    }

    /// Marks a node failed, dropping every shard it held and bumping its
    /// lifetime failure count (which may quarantine it). A checkpointed
    /// rebuild of a *different* node survives; its completed work is
    /// kept.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPlacement`] for out-of-range or
    /// already-failed nodes.
    pub fn fail_node(&mut self, node: u32) -> Result<()> {
        let idx = node as usize;
        let slot = self
            .nodes
            .get_mut(idx)
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("node {node} out of range"),
            })?;
        if slot.is_none() {
            return Err(Error::InvalidPlacement {
                what: format!("node {node} already failed"),
            });
        }
        *slot = None;
        self.failure_counts[idx] += 1;
        if self.quarantine_threshold > 0 && self.failure_counts[idx] >= self.quarantine_threshold {
            self.quarantined[idx] = true;
        }
        Ok(())
    }

    /// Starts (or resumes) a checkpointed rebuild of a failed node. A
    /// no-op if a checkpoint for this node already exists.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] if the node is out of range or not
    ///   failed.
    /// * [`Error::Quarantined`] if the node is quarantined.
    pub fn begin_rebuild(&mut self, node: u32) -> Result<()> {
        let idx = node as usize;
        match self.nodes.get(idx) {
            Some(None) => {}
            Some(Some(_)) => {
                return Err(Error::InvalidPlacement {
                    what: format!("node {node} is not failed"),
                })
            }
            None => {
                return Err(Error::InvalidPlacement {
                    what: format!("node {node} out of range"),
                })
            }
        }
        if self.quarantined[idx] {
            return Err(Error::Quarantined {
                node,
                failures: self.failure_counts[idx],
            });
        }
        if self.rebuilds.contains_key(&node) {
            return Ok(()); // resume the existing checkpoint
        }
        let mut remaining: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, meta)| self.placement.sets()[meta.set_index].contains(&node))
            .map(|(&id, _)| id)
            .collect();
        remaining.sort_unstable_by(|a, b| b.cmp(a));
        let live_at_begin = self.nodes.iter().map(|n| n.is_some()).collect();
        self.rebuilds.insert(
            node,
            RebuildState {
                remaining,
                restored: HashMap::new(),
                report: RebuildReport::default(),
                live_at_begin,
            },
        );
        Ok(())
    }

    /// Classifies a reconstruction failure against the rebuild's baseline:
    /// [`Error::TooManyErasures`] while a baseline-live node is down means
    /// a source died mid-transfer, so the typed result is
    /// [`Error::RebuildInterrupted`] carrying the checkpoint — and the
    /// baseline is refreshed so a retry with no further deaths reports the
    /// real outcome instead of "interrupted" forever.
    fn classify_rebuild_failure(&self, st: &mut RebuildState, err: Error) -> Error {
        let source_died = st
            .live_at_begin
            .iter()
            .zip(self.nodes.iter())
            .any(|(&was_live, now)| was_live && now.is_none());
        if source_died && matches!(err, Error::TooManyErasures { .. }) {
            let resumed_from = st.report.shards_rebuilt;
            st.live_at_begin = self.nodes.iter().map(|n| n.is_some()).collect();
            Error::RebuildInterrupted { resumed_from }
        } else {
            err
        }
    }

    /// The checkpoint of an in-progress rebuild, if any.
    pub fn rebuild_checkpoint(&self, node: u32) -> Option<RebuildCheckpoint> {
        self.rebuilds.get(&node).map(|st| RebuildCheckpoint {
            node,
            shards_done: st.report.shards_rebuilt,
            objects_remaining: st.remaining.len() as u64,
        })
    }

    /// Abandons a checkpointed rebuild, discarding its reconstructed
    /// shards. Returns whether a checkpoint existed.
    pub fn abort_rebuild(&mut self, node: u32) -> bool {
        self.rebuilds.remove(&node).is_some()
    }

    /// Advances a checkpointed rebuild by up to `budget` objects. When
    /// the last object is done, every reconstructed stripe that is fully
    /// available is parity-verified, and only then is the node revived.
    ///
    /// A `budget` of 0 against a non-empty queue is a pure probe: no
    /// reconstruction happens, the checkpoint and its
    /// `bytes_read`/`bytes_written`/`shards_rebuilt` accounting are left
    /// untouched, and the call reports the current backlog as
    /// [`RebuildProgress::InProgress`]. (If the queue is already empty —
    /// e.g. the node held no shards — any budget, including 0, runs the
    /// verification tail and completes.)
    ///
    /// On error the checkpoint is **kept** (with the offending objects
    /// re-queued), so the rebuild resumes — rather than restarts — once
    /// the obstacle is cleared.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] if no rebuild of `node` is in
    ///   progress.
    /// * [`Error::RebuildInterrupted`] if an object crossed `t` missing
    ///   shards because a node live at the rebuild baseline has since
    ///   failed (a source died mid-transfer); the checkpoint records the
    ///   shards already rebuilt and a retry resumes from it.
    /// * [`Error::TooManyErasures`] if an object had lost more than `t`
    ///   shards before the pass was baselined (data loss: the rebuild
    ///   cannot complete).
    /// * [`Error::RebuildVerification`] if reconstructed stripes fail
    ///   parity (a surviving shard is corrupt). The affected shards are
    ///   *not* installed and the node stays failed.
    pub fn rebuild_step(&mut self, node: u32, budget: usize) -> Result<RebuildProgress> {
        let mut st = self
            .rebuilds
            .remove(&node)
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("no rebuild of node {node} in progress"),
            })?;
        let mut done = 0usize;
        while done < budget {
            let Some(id) = st.remaining.pop() else { break };
            let Some(meta) = self.objects.get(&id) else {
                continue;
            };
            let set = &self.placement.sets()[meta.set_index];
            let Some(pos) = set.iter().position(|&v| v == node) else {
                continue;
            };
            let mut shards: Vec<Option<Vec<u8>>> = set
                .iter()
                .enumerate()
                .map(|(p, &v)| {
                    self.nodes[v as usize]
                        .as_ref()
                        .and_then(|m| m.get(&(id, p)).cloned())
                })
                .collect();
            let available = shards.iter().filter(|s| s.is_some()).count();
            let missing: Vec<usize> = shards
                .iter()
                .enumerate()
                .filter_map(|(p, s)| s.is_none().then_some(p))
                .collect();
            // One decode-matrix inversion per erasure pattern for the
            // whole pass, not one per object.
            let plan_applied = self
                .plan_cache
                .borrow_mut()
                .get_or_build(&self.code, &missing)
                .and_then(|plan| self.code.reconstruct_with_plan(&plan, &mut shards));
            if let Err(e) = plan_applied {
                st.remaining.push(id); // keep the checkpoint resumable
                let e = self.classify_rebuild_failure(&mut st, e);
                self.rebuilds.insert(node, st);
                return Err(e);
            }
            st.report.bytes_read +=
                (self.code.data_shards().min(available) * meta.shard_len) as u64;
            let shard = shards[pos].take().ok_or(Error::TooManyErasures {
                missing: set.len() - available,
                tolerated: self.t,
            })?;
            st.report.bytes_written += shard.len() as u64;
            st.report.shards_rebuilt += 1;
            st.restored.insert((id, pos), shard);
            done += 1;
        }
        if !st.remaining.is_empty() {
            let objects_remaining = st.remaining.len() as u64;
            self.rebuilds.insert(node, st);
            return Ok(RebuildProgress::InProgress { objects_remaining });
        }
        self.finish_rebuild(node, st)
    }

    /// Verification + installation tail shared by the serial
    /// ([`rebuild_step`](BrickStore::rebuild_step)) and parallel
    /// ([`rebuild_node`](BrickStore::rebuild_node)) rebuild paths: every
    /// reconstructed stripe that is fully available is parity-checked,
    /// corrupt stripes are re-queued (their shards discarded), and only a
    /// fully verified shard set revives the node.
    fn finish_rebuild(&mut self, node: u32, mut st: RebuildState) -> Result<RebuildProgress> {
        // Post-rebuild verification: parity-check each reconstructed
        // stripe that is fully available. Corrupt stripes are re-queued
        // and their shards discarded — never silently installed.
        let mut corrupt: Vec<ObjectId> = Vec::new();
        for (&(id, pos), shard) in &st.restored {
            let Some(meta) = self.objects.get(&id) else {
                continue;
            };
            let set = &self.placement.sets()[meta.set_index];
            let mut full: Vec<&[u8]> = Vec::with_capacity(set.len());
            let mut complete = true;
            for (p, &v) in set.iter().enumerate() {
                if p == pos {
                    full.push(shard.as_slice());
                } else if let Some(s) = self.nodes[v as usize]
                    .as_ref()
                    .and_then(|m| m.get(&(id, p)))
                {
                    full.push(s.as_slice());
                } else {
                    complete = false;
                    break;
                }
            }
            if !complete {
                continue; // another node is down; cannot verify this stripe yet
            }
            if self.code.verify(&full)? {
                st.report.stripes_verified += 1;
            } else {
                corrupt.push(id);
            }
        }
        if !corrupt.is_empty() {
            corrupt.sort_unstable_by(|a, b| b.cmp(a));
            let objects = corrupt.len();
            for &id in &corrupt {
                st.restored.retain(|&(oid, _), _| oid != id);
            }
            st.remaining = corrupt;
            self.rebuilds.insert(node, st);
            return Err(Error::RebuildVerification { objects });
        }

        self.nodes[node as usize] = Some(st.restored);
        let report = st.report;
        crate::obs::REBUILD_SHARDS.add(report.shards_rebuilt);
        crate::obs::REBUILD_BYTES_READ.add(report.bytes_read);
        crate::obs::REBUILD_BYTES_WRITTEN.add(report.bytes_written);
        nsr_obs::trace::event("erasure.rebuild.complete", || {
            vec![
                ("node", nsr_obs::Json::Num(f64::from(node))),
                (
                    "shards_rebuilt",
                    nsr_obs::Json::Num(report.shards_rebuilt as f64),
                ),
                ("bytes_read", nsr_obs::Json::Num(report.bytes_read as f64)),
                (
                    "bytes_written",
                    nsr_obs::Json::Num(report.bytes_written as f64),
                ),
            ]
        });
        Ok(RebuildProgress::Complete(report))
    }

    /// Revives a failed node and reconstructs every shard it should hold,
    /// reading `R − t` surviving shards per affected object — the rebuild
    /// whose traffic §5.1 accounts for. Equivalent to
    /// [`begin_rebuild`](BrickStore::begin_rebuild) + driving
    /// [`rebuild_step`](BrickStore::rebuild_step) to completion, but the
    /// per-object reconstruction is spread over scoped worker threads
    /// (one per available core). Work assignment is deterministic
    /// (object `i` of the ascending order goes to worker `i mod W`) and
    /// each object's reconstruction is a pure function of the surviving
    /// shards, so the resulting store is byte-identical to the serial
    /// path for any worker count. On failure the checkpoint survives for
    /// later resumption.
    ///
    /// # Errors
    ///
    /// As for [`rebuild_step`](BrickStore::rebuild_step), plus
    /// [`Error::Quarantined`] for quarantined nodes.
    pub fn rebuild_node(&mut self, node: u32) -> Result<RebuildReport> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.rebuild_node_with_workers(node, workers)
    }

    /// [`rebuild_node`](BrickStore::rebuild_node) with an explicit worker
    /// count (exposed for determinism tests; `rebuild_node` picks the
    /// available parallelism).
    fn rebuild_node_with_workers(&mut self, node: u32, workers: usize) -> Result<RebuildReport> {
        let t0 = nsr_obs::metrics_timer();
        self.begin_rebuild(node)?;
        let mut st = self
            .rebuilds
            .remove(&node)
            .ok_or(Error::InternalInvariant {
                what: "begin_rebuild left no checkpoint",
            })?;
        // `remaining` is sorted descending for pop(); workers walk the
        // ascending order, object i going to worker i mod W.
        let todo: Vec<ObjectId> = st.remaining.drain(..).rev().collect();
        let workers = workers.clamp(1, todo.len().max(1));

        struct Restored {
            id: ObjectId,
            pos: usize,
            shard: Vec<u8>,
            bytes_read: u64,
        }
        struct WorkerOut {
            restored: Vec<Restored>,
            failed: Vec<(ObjectId, Error)>,
        }

        // Workers share the immutable store state but not `self`: the
        // decode-plan cache is a RefCell (not Sync), so each worker keeps
        // its own per-pattern plan memo instead.
        let nodes = &self.nodes;
        let objects = &self.objects;
        let placement = &self.placement;
        let code = &self.code;
        let outputs: Vec<WorkerOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let todo = &todo;
                    scope.spawn(move || {
                        let mut out = WorkerOut {
                            restored: Vec::new(),
                            failed: Vec::new(),
                        };
                        let mut plans: HashMap<Vec<usize>, DecodePlan> = HashMap::new();
                        for &id in todo.iter().skip(w).step_by(workers) {
                            let Some(meta) = objects.get(&id) else {
                                continue;
                            };
                            let set = &placement.sets()[meta.set_index];
                            let Some(pos) = set.iter().position(|&v| v == node) else {
                                continue;
                            };
                            let mut shards: Vec<Option<Vec<u8>>> = set
                                .iter()
                                .enumerate()
                                .map(|(p, &v)| {
                                    nodes[v as usize]
                                        .as_ref()
                                        .and_then(|m| m.get(&(id, p)).cloned())
                                })
                                .collect();
                            let available = shards.iter().filter(|s| s.is_some()).count();
                            let missing: Vec<usize> = shards
                                .iter()
                                .enumerate()
                                .filter_map(|(p, s)| s.is_none().then_some(p))
                                .collect();
                            let plan = match plans.get(&missing) {
                                Some(p) => p,
                                None => match code.plan_reconstruction(&missing) {
                                    Ok(p) => plans.entry(missing.clone()).or_insert(p),
                                    Err(e) => {
                                        out.failed.push((id, e));
                                        continue;
                                    }
                                },
                            };
                            if let Err(e) = code.reconstruct_with_plan(plan, &mut shards) {
                                out.failed.push((id, e));
                                continue;
                            }
                            let Some(shard) = shards[pos].take() else {
                                out.failed.push((
                                    id,
                                    Error::InternalInvariant {
                                        what: "rebuilt shard missing after reconstruction",
                                    },
                                ));
                                continue;
                            };
                            let bytes_read =
                                (code.data_shards().min(available) * meta.shard_len) as u64;
                            out.restored.push(Restored {
                                id,
                                pos,
                                shard,
                                bytes_read,
                            });
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(w, h)| {
                    h.join().unwrap_or_else(|_| WorkerOut {
                        restored: Vec::new(),
                        failed: todo
                            .iter()
                            .skip(w)
                            .step_by(workers)
                            .map(|&id| {
                                (
                                    id,
                                    Error::InternalInvariant {
                                        what: "rebuild worker panicked",
                                    },
                                )
                            })
                            .collect(),
                    })
                })
                .collect()
        });

        let mut failed: Vec<(ObjectId, Error)> = Vec::new();
        for out in outputs {
            for r in out.restored {
                st.report.bytes_read += r.bytes_read;
                st.report.bytes_written += r.shard.len() as u64;
                st.report.shards_rebuilt += 1;
                st.restored.insert((r.id, r.pos), r.shard);
            }
            failed.extend(out.failed);
        }
        if !failed.is_empty() {
            // Deterministic regardless of worker count: report the error
            // of the smallest failing object, re-queue the rest (sorted
            // descending so pop() resumes in ascending order).
            failed.sort_unstable_by_key(|f| std::cmp::Reverse(f.0));
            let err = failed
                .last()
                .map(|(_, e)| e.clone())
                .ok_or(Error::InternalInvariant {
                    what: "failure merge lost its entries",
                })?;
            st.remaining = failed.into_iter().map(|(id, _)| id).collect();
            let err = self.classify_rebuild_failure(&mut st, err);
            self.rebuilds.insert(node, st);
            return Err(err);
        }
        match self.finish_rebuild(node, st)? {
            RebuildProgress::Complete(report) => {
                if let Some(t0) = t0 {
                    let secs = t0.elapsed().as_secs_f64().max(1e-9);
                    crate::obs::REBUILD_BYTES_PER_S
                        .observe((report.bytes_read + report.bytes_written) as f64 / secs);
                }
                Ok(report)
            }
            RebuildProgress::InProgress { .. } => Err(Error::InternalInvariant {
                what: "rebuild finished with objects still queued",
            }),
        }
    }

    /// Flips one byte of a stored shard — a latent sector error for tests
    /// and scrubbing demonstrations. (Applying it twice to the same byte
    /// restores the original contents.)
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPlacement`] if the shard is not present on
    /// that node.
    pub fn corrupt_shard(&mut self, node: u32, id: ObjectId, byte: usize) -> Result<()> {
        let meta = self
            .objects
            .get(&id)
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("{id} not found"),
            })?;
        let set = &self.placement.sets()[meta.set_index];
        let pos = set
            .iter()
            .position(|&v| v == node)
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("node {node} does not hold {id}"),
            })?;
        let shard = self
            .nodes
            .get_mut(node as usize)
            .and_then(|n| n.as_mut())
            .and_then(|m| m.get_mut(&(id, pos)))
            .ok_or_else(|| Error::InvalidPlacement {
                what: format!("node {node} has no live shard of {id}"),
            })?;
        let i = byte % shard.len();
        shard[i] ^= 0x5a;
        Ok(())
    }

    /// Verifies the parity of every fully-available object.
    ///
    /// # Errors
    ///
    /// Propagates code errors (cannot occur for well-formed stored data).
    pub fn scrub(&self) -> Result<ScrubReport> {
        let mut report = ScrubReport {
            clean: 0,
            corrupt: 0,
            degraded: 0,
        };
        for (&id, meta) in &self.objects {
            let set = &self.placement.sets()[meta.set_index];
            let shards: Vec<Option<&Vec<u8>>> = set
                .iter()
                .enumerate()
                .map(|(p, &v)| {
                    self.nodes[v as usize]
                        .as_ref()
                        .and_then(|m| m.get(&(id, p)))
                })
                .collect();
            if shards.iter().any(|s| s.is_none()) {
                report.degraded += 1;
                continue;
            }
            let mut full: Vec<&[u8]> = Vec::with_capacity(shards.len());
            for s in shards {
                full.push(
                    s.ok_or(Error::InternalInvariant {
                        what: "shard vanished between availability check and verify",
                    })?
                    .as_slice(),
                );
            }
            if self.code.verify(&full)? {
                report.clean += 1;
            } else {
                report.corrupt += 1;
            }
        }
        let _ = self.t;
        Ok(report)
    }
}

/// Rebuilds a node with bounded-backoff retries: retryable failures
/// ([`Error::TooManyErasures`], [`Error::RebuildVerification`],
/// [`Error::RebuildInterrupted`]) trigger the `recover` callback (the
/// model's stand-in for "wait for the transient condition to clear"),
/// and progress made before a failure is never lost — each attempt
/// resumes the checkpoint.
///
/// # Errors
///
/// The last retryable error once attempts are exhausted; non-retryable
/// errors ([`Error::Quarantined`], invalid arguments) immediately.
pub fn rebuild_with_retry<F>(
    store: &mut BrickStore,
    node: u32,
    policy: &RetryPolicy,
    mut recover: F,
) -> Result<RetriedRebuild>
where
    F: FnMut(&mut BrickStore, u32),
{
    policy.validate()?;
    let mut backoff_hours = Vec::new();
    let mut last_err = None;
    for attempt in 0..policy.max_attempts {
        store.begin_rebuild(node)?;
        match store.rebuild_step(node, usize::MAX) {
            Ok(RebuildProgress::Complete(report)) => {
                return Ok(RetriedRebuild {
                    attempts: attempt + 1,
                    backoff_hours,
                    report,
                })
            }
            Ok(RebuildProgress::InProgress { .. }) => continue, // budget not exhausted in practice
            Err(
                e @ (Error::TooManyErasures { .. }
                | Error::RebuildVerification { .. }
                | Error::RebuildInterrupted { .. }),
            ) => {
                last_err = Some(e);
                if attempt + 1 < policy.max_attempts {
                    let backoff = policy.backoff_for(attempt);
                    crate::obs::REBUILD_RETRIES.inc();
                    crate::obs::RETRY_BACKOFF_HOURS.observe(backoff);
                    nsr_obs::trace::event("erasure.rebuild.retry", || {
                        vec![
                            ("node", nsr_obs::Json::Num(f64::from(node))),
                            ("attempt", nsr_obs::Json::Num(f64::from(attempt))),
                            ("backoff_hours", nsr_obs::Json::Num(backoff)),
                        ]
                    });
                    backoff_hours.push(backoff);
                    recover(store, attempt);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or(Error::InvalidPlacement {
        what: "retry loop ended without an attempt".into(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BrickStore {
        BrickStore::new(10, 5, 2).unwrap()
    }

    fn blob(seed: u8, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| seed.wrapping_mul(31).wrapping_add(i as u8))
            .collect()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = store();
        for i in 0..20u64 {
            s.put(ObjectId(i), &blob(i as u8, 100 + i as usize * 13))
                .unwrap();
        }
        assert_eq!(s.len(), 20);
        for i in 0..20u64 {
            assert_eq!(
                s.get(ObjectId(i)).unwrap(),
                blob(i as u8, 100 + i as usize * 13)
            );
        }
    }

    #[test]
    fn odd_sizes_pad_and_truncate() {
        let mut s = store();
        for (i, len) in [1usize, 2, 3, 7, 299].iter().enumerate() {
            let id = ObjectId(i as u64);
            s.put(id, &blob(i as u8 + 1, *len)).unwrap();
            assert_eq!(s.get(id).unwrap().len(), *len);
        }
    }

    #[test]
    fn degraded_reads_survive_t_failures() {
        let mut s = store();
        for i in 0..30u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(2).unwrap();
        s.fail_node(7).unwrap();
        for i in 0..30u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 64), "object {i}");
        }
    }

    #[test]
    fn data_loss_past_tolerance() {
        let mut s = store();
        for i in 0..30u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        // Fail three adjacent nodes: the rotational sets {1,2,3,4,5} etc.
        // lose three members.
        s.fail_node(2).unwrap();
        s.fail_node(3).unwrap();
        s.fail_node(4).unwrap();
        let lost = (0..30u64).filter(|&i| s.get(ObjectId(i)).is_err()).count();
        assert!(lost > 0, "some objects must be lost past tolerance");
        // And the error is the data-loss error, not a panic.
        let err = (0..30u64)
            .find_map(|i| s.get(ObjectId(i)).err())
            .expect("a loss exists");
        assert!(matches!(err, Error::TooManyErasures { .. }));
    }

    #[test]
    fn rebuild_restores_exactly_the_lost_shards() {
        let mut s = store();
        for i in 0..40u64 {
            s.put(ObjectId(i), &blob(i as u8, 128)).unwrap();
        }
        s.fail_node(4).unwrap();
        let report = s.rebuild_node(4).unwrap();
        assert!(report.shards_rebuilt > 0);
        // Each rebuilt shard read R−t = 3 survivors of shard_len bytes
        // (128-byte objects over k = 3 data shards: ceil(128/3) = 43).
        assert_eq!(report.bytes_read, report.shards_rebuilt * 3 * 43);
        assert_eq!(report.bytes_written, report.shards_rebuilt * 43);
        // With no other nodes down, every stripe is verified.
        assert_eq!(report.stripes_verified, report.shards_rebuilt);
        assert!(s.failed_nodes().is_empty());
        for i in 0..40u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 128));
        }
        // Scrub confirms parity consistency after rebuild.
        let scrub = s.scrub().unwrap();
        assert_eq!(scrub.corrupt, 0);
        assert_eq!(scrub.degraded, 0);
        assert_eq!(scrub.clean, 40);
    }

    #[test]
    fn rebuild_with_concurrent_failure_still_works_within_t() {
        let mut s = store();
        for i in 0..40u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(1).unwrap();
        s.fail_node(5).unwrap();
        // Rebuild node 1 while node 5 is still down (t = 2 allows it).
        let report = s.rebuild_node(1).unwrap();
        assert!(report.shards_rebuilt > 0);
        for i in 0..40u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 64));
        }
    }

    #[test]
    fn checkpointed_rebuild_in_bounded_steps() {
        let mut s = store();
        for i in 0..40u64 {
            s.put(ObjectId(i), &blob(i as u8, 96)).unwrap();
        }
        s.fail_node(4).unwrap();
        s.begin_rebuild(4).unwrap();
        let total = s.rebuild_checkpoint(4).unwrap().objects_remaining;
        assert!(total > 0);
        let mut steps = 0;
        let report = loop {
            match s.rebuild_step(4, 5).unwrap() {
                RebuildProgress::InProgress { objects_remaining } => {
                    steps += 1;
                    assert_eq!(
                        s.rebuild_checkpoint(4).unwrap().objects_remaining,
                        objects_remaining
                    );
                }
                RebuildProgress::Complete(r) => break r,
            }
        };
        assert!(steps >= 2, "a 5-object budget must take several steps");
        assert!(s.rebuild_checkpoint(4).is_none());
        assert_eq!(report.stripes_verified, report.shards_rebuilt);
        for i in 0..40u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 96));
        }
    }

    #[test]
    fn interrupted_rebuild_resumes_across_concurrent_failure() {
        let mut s = store();
        for i in 0..40u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(2).unwrap();
        s.begin_rebuild(2).unwrap();
        // Partial progress…
        assert!(matches!(
            s.rebuild_step(2, 3).unwrap(),
            RebuildProgress::InProgress { .. }
        ));
        let done_before = s.rebuild_checkpoint(2).unwrap().shards_done;
        assert_eq!(done_before, 3);
        // …then another node fails mid-rebuild (still within t = 2).
        s.fail_node(8).unwrap();
        // begin_rebuild resumes the same checkpoint rather than restarting.
        s.begin_rebuild(2).unwrap();
        assert_eq!(s.rebuild_checkpoint(2).unwrap().shards_done, done_before);
        let report = loop {
            match s.rebuild_step(2, 7).unwrap() {
                RebuildProgress::InProgress { .. } => continue,
                RebuildProgress::Complete(r) => break r,
            }
        };
        assert!(report.shards_rebuilt >= done_before);
        // Degraded reads work throughout; node 8 can still be rebuilt.
        for i in 0..40u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 64));
        }
        s.rebuild_node(8).unwrap();
        assert!(s.failed_nodes().is_empty());
        let scrub = s.scrub().unwrap();
        assert_eq!((scrub.corrupt, scrub.degraded), (0, 0));
    }

    #[test]
    fn rebuild_verification_rejects_corrupt_survivor() {
        let mut s = store();
        s.put(ObjectId(1), &blob(9, 256)).unwrap();
        // Corrupt a survivor shard (object 1 lives on set 1 = nodes 1–5),
        // then fail a *different* node of the same set.
        s.corrupt_shard(2, ObjectId(1), 17).unwrap();
        s.fail_node(1).unwrap();
        let err = s.rebuild_node(1).unwrap_err();
        assert_eq!(err, Error::RebuildVerification { objects: 1 });
        // Never silently absorbed: the node stays failed, the checkpoint
        // re-queued the object, and scrub still reports the corruption.
        assert_eq!(s.failed_nodes(), vec![1]);
        assert_eq!(s.rebuild_checkpoint(1).unwrap().objects_remaining, 1);
        // Clearing the corruption lets the resumed rebuild verify.
        s.corrupt_shard(2, ObjectId(1), 17).unwrap(); // XOR restores
        let report = s.rebuild_node(1).unwrap();
        assert_eq!(report.stripes_verified, 1);
        assert_eq!(s.get(ObjectId(1)).unwrap(), blob(9, 256));
        assert_eq!(s.scrub().unwrap().corrupt, 0);
    }

    #[test]
    fn retry_with_backoff_recovers_from_transient_corruption() {
        let mut s = store();
        s.put(ObjectId(1), &blob(5, 128)).unwrap();
        s.corrupt_shard(2, ObjectId(1), 4).unwrap();
        s.fail_node(1).unwrap();
        let policy = RetryPolicy::default();
        let outcome = rebuild_with_retry(&mut s, 1, &policy, |st, _attempt| {
            // The "transient condition clears": a scrub repair restores
            // the survivor (XOR of the same byte undoes the corruption).
            st.corrupt_shard(2, ObjectId(1), 4).unwrap();
        })
        .unwrap();
        assert_eq!(outcome.attempts, 2);
        assert_eq!(outcome.backoff_hours, vec![policy.base_backoff_hours]);
        assert_eq!(s.get(ObjectId(1)).unwrap(), blob(5, 128));
    }

    #[test]
    fn retry_exhaustion_returns_last_error_and_keeps_checkpoint() {
        let mut s = store();
        s.put(ObjectId(1), &blob(5, 128)).unwrap();
        s.corrupt_shard(2, ObjectId(1), 4).unwrap();
        s.fail_node(1).unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_hours: 0.5,
            max_backoff_hours: 0.75,
        };
        let err = rebuild_with_retry(&mut s, 1, &policy, |_, _| {}).unwrap_err();
        assert_eq!(err, Error::RebuildVerification { objects: 1 });
        // Backoff schedule is bounded: 0.5, then capped at 0.75.
        assert_eq!(policy.backoff_for(0), 0.5);
        assert_eq!(policy.backoff_for(1), 0.75);
        assert_eq!(policy.backoff_for(10), 0.75);
        assert!(s.rebuild_checkpoint(1).is_some());
        assert!(RetryPolicy {
            max_attempts: 0,
            ..policy
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            base_backoff_hours: -1.0,
            ..policy
        }
        .validate()
        .is_err());
    }

    #[test]
    fn source_death_mid_rebuild_surfaces_typed_interruption() {
        let mut s = store(); // 10 nodes, R = 5, t = 2
        for i in 0..12u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(0).unwrap();
        s.begin_rebuild(0).unwrap();
        // Partial progress: node 0's objects rebuild in ascending order
        // (0, 6, 7, 8, 9, 10); do the first two, checkpointing them.
        assert!(matches!(
            s.rebuild_step(0, 2).unwrap(),
            RebuildProgress::InProgress { .. }
        ));
        assert_eq!(s.rebuild_checkpoint(0).unwrap().shards_done, 2);
        // Two sources die mid-transfer. Stripes holding all of {0, 1, 2}
        // now miss 3 > t shards — but both deaths are *newer* than the
        // rebuild baseline, so the typed result is an interruption
        // carrying the resume point, not a bare data-loss error.
        s.fail_node(1).unwrap();
        s.fail_node(2).unwrap();
        match s.rebuild_step(0, usize::MAX) {
            // Object 7 ({7,8,9,0,1}: 2 missing) still rebuilds; object 8
            // ({8,9,0,1,2}: 3 missing) trips the interruption.
            Err(Error::RebuildInterrupted { resumed_from }) => assert_eq!(resumed_from, 3),
            other => panic!("expected RebuildInterrupted, got {other:?}"),
        }
        // Nothing restarted from shard 0: the checkpoint kept every
        // completed shard and re-queued only the unprocessed objects.
        let ckpt = s.rebuild_checkpoint(0).unwrap();
        assert_eq!((ckpt.shards_done, ckpt.objects_remaining), (3, 3));
        // The interruption re-baselined the pass: a retry with no further
        // deaths re-derives the outcome, which here is permanent loss.
        assert!(matches!(
            s.rebuild_step(0, usize::MAX),
            Err(Error::TooManyErasures {
                missing: 3,
                tolerated: 2
            })
        ));
        assert_eq!(s.rebuild_checkpoint(0).unwrap().shards_done, 3);
    }

    #[test]
    fn parallel_rebuild_classifies_interruption_against_baseline() {
        let mut s = store();
        for i in 0..12u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(0).unwrap();
        s.begin_rebuild(0).unwrap(); // baseline: everyone but node 0 live
        s.fail_node(1).unwrap();
        s.fail_node(2).unwrap();
        // The worker-parallel path classifies against the same baseline:
        // recoverable stripes (objects 6 and 7) rebuild, the four stripes
        // holding {0, 1, 2} trip the typed interruption.
        match s.rebuild_node(0) {
            Err(Error::RebuildInterrupted { resumed_from }) => assert_eq!(resumed_from, 2),
            other => panic!("expected RebuildInterrupted, got {other:?}"),
        }
        let ckpt = s.rebuild_checkpoint(0).unwrap();
        assert_eq!((ckpt.shards_done, ckpt.objects_remaining), (2, 4));
        // Re-baselined retry re-derives the outcome: permanent loss.
        assert!(matches!(
            s.rebuild_node(0),
            Err(Error::TooManyErasures { .. })
        ));
    }

    #[test]
    fn retry_treats_interruption_as_retryable() {
        let mut s = store();
        for i in 0..12u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(0).unwrap();
        s.begin_rebuild(0).unwrap();
        s.fail_node(1).unwrap();
        s.fail_node(2).unwrap();
        let mut recoveries = 0u32;
        let err = rebuild_with_retry(
            &mut s,
            0,
            &RetryPolicy {
                max_attempts: 2,
                base_backoff_hours: 0.25,
                max_backoff_hours: 1.0,
            },
            |_, _| recoveries += 1,
        )
        .unwrap_err();
        // Attempt 1 → RebuildInterrupted (retryable: recover ran once);
        // attempt 2 runs against the refreshed baseline and reports the
        // true outcome — these stripes are permanently lost.
        assert_eq!(recoveries, 1);
        assert!(matches!(err, Error::TooManyErasures { .. }));
        assert!(s.rebuild_checkpoint(0).is_some(), "checkpoint survives");
    }

    #[test]
    fn quarantine_after_repeated_failures() {
        let mut s = store();
        s.put(ObjectId(1), &blob(1, 64)).unwrap();
        s.set_quarantine_threshold(2);
        s.fail_node(2).unwrap();
        s.rebuild_node(2).unwrap(); // first failure: rebuild allowed
        assert_eq!(s.failure_count(2), Some(1));
        s.fail_node(2).unwrap(); // second failure: quarantined
        assert_eq!(s.quarantined_nodes(), vec![2]);
        let err = s.rebuild_node(2).unwrap_err();
        assert_eq!(
            err,
            Error::Quarantined {
                node: 2,
                failures: 2
            }
        );
        // Degraded reads keep working while it sits quarantined.
        assert_eq!(s.get(ObjectId(1)).unwrap(), blob(1, 64));
        // Operator override clears it.
        s.unquarantine(2).unwrap();
        assert_eq!(s.failure_count(2), Some(0));
        s.rebuild_node(2).unwrap();
        assert!(s.failed_nodes().is_empty());
        assert!(s.unquarantine(2).is_err()); // not quarantined
        assert!(s.unquarantine(99).is_err()); // out of range
    }

    #[test]
    fn parallel_rebuild_is_byte_identical_to_serial() {
        let mk = || {
            let mut s = store();
            for i in 0..60u64 {
                s.put(ObjectId(i), &blob(i as u8, 90 + (i % 7) as usize))
                    .unwrap();
            }
            s.fail_node(4).unwrap();
            s.fail_node(7).unwrap(); // concurrent failure within t
            s
        };
        // Serial reference: begin + step loop.
        let mut serial = mk();
        serial.begin_rebuild(4).unwrap();
        let serial_report = loop {
            match serial.rebuild_step(4, 3).unwrap() {
                RebuildProgress::InProgress { .. } => continue,
                RebuildProgress::Complete(r) => break r,
            }
        };
        // Parallel with several worker counts, including more workers
        // than cores and more than objects.
        for workers in [1usize, 2, 3, 8, 1000] {
            let mut par = mk();
            let report = par.rebuild_node_with_workers(4, workers).unwrap();
            assert_eq!(report, serial_report, "workers = {workers}");
            assert_eq!(par.nodes, serial.nodes, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_rebuild_requeues_failures_deterministically() {
        // Corrupt a survivor so verification re-queues the object: the
        // parallel path must surface the same error and checkpoint as
        // the serial one, for any worker count.
        for workers in [1usize, 3] {
            let mut s = store();
            s.put(ObjectId(1), &blob(9, 256)).unwrap();
            s.corrupt_shard(2, ObjectId(1), 17).unwrap();
            s.fail_node(1).unwrap();
            let err = s.rebuild_node_with_workers(1, workers).unwrap_err();
            assert_eq!(err, Error::RebuildVerification { objects: 1 });
            assert_eq!(s.rebuild_checkpoint(1).unwrap().objects_remaining, 1);
            s.corrupt_shard(2, ObjectId(1), 17).unwrap(); // restore
            let report = s.rebuild_node_with_workers(1, workers).unwrap();
            assert_eq!(report.stripes_verified, 1);
            assert_eq!(s.get(ObjectId(1)).unwrap(), blob(9, 256));
        }
    }

    #[test]
    fn degraded_reads_hit_the_plan_cache() {
        let mut s = store();
        for i in 0..30u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(2).unwrap();
        s.fail_node(7).unwrap();
        for _round in 0..3 {
            for i in 0..30u64 {
                assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 64));
            }
        }
        // Two failed nodes hit each rotational set in at most a few
        // distinct positions; far fewer plans than reads.
        let cached = s.plan_cache.borrow().entries.len();
        assert!(
            (1..=PLAN_CACHE_CAP).contains(&cached),
            "expected a small plan cache, got {cached}"
        );
    }

    #[test]
    fn scrub_finds_latent_corruption() {
        let mut s = store();
        s.put(ObjectId(1), &blob(9, 256)).unwrap();
        s.put(ObjectId(2), &blob(10, 256)).unwrap();
        assert_eq!(
            s.scrub().unwrap(),
            ScrubReport {
                clean: 2,
                corrupt: 0,
                degraded: 0
            }
        );
        // Corrupt a shard of object 1 on one of its nodes (set 1 starts at
        // node 1 for the rotational layout).
        s.corrupt_shard(2, ObjectId(1), 17).unwrap();
        let r = s.scrub().unwrap();
        assert_eq!(r.corrupt, 1);
        assert_eq!(r.clean, 1);
    }

    #[test]
    fn scrub_reports_degraded_objects() {
        let mut s = store();
        s.put(ObjectId(1), &blob(3, 64)).unwrap();
        s.fail_node(1).unwrap();
        let r = s.scrub().unwrap();
        assert_eq!(r.degraded, 1);
    }

    #[test]
    fn api_validation() {
        let mut s = store();
        s.put(ObjectId(1), &blob(1, 32)).unwrap();
        assert!(s.put(ObjectId(1), &blob(1, 32)).is_err()); // duplicate
        assert!(s.put(ObjectId(2), b"").is_err()); // empty
        assert!(s.get(ObjectId(99)).is_err()); // unknown
        assert!(s.fail_node(99).is_err());
        s.fail_node(3).unwrap();
        assert!(s.fail_node(3).is_err()); // double failure
        assert!(s.rebuild_node(4).is_err()); // not failed
        assert!(s.begin_rebuild(99).is_err()); // out of range
        assert!(s.rebuild_step(4, 1).is_err()); // no checkpoint
        assert!(!s.abort_rebuild(4)); // nothing to abort
        assert!(BrickStore::new(4, 5, 2).is_err()); // R > N
        assert!(BrickStore::new(8, 4, 4).is_err()); // t >= R
        assert!(BrickStore::new(8, 4, 0).is_err()); // t == 0
    }

    #[test]
    fn abort_discards_checkpoint() {
        let mut s = store();
        for i in 0..10u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        s.fail_node(2).unwrap();
        s.begin_rebuild(2).unwrap();
        let _ = s.rebuild_step(2, 2).unwrap();
        assert!(s.abort_rebuild(2));
        assert!(s.rebuild_checkpoint(2).is_none());
        // A fresh rebuild still works from scratch.
        s.rebuild_node(2).unwrap();
        assert!(s.failed_nodes().is_empty());
    }

    #[test]
    fn writes_to_degraded_sets_are_refused() {
        let mut s = BrickStore::new(6, 6, 2).unwrap(); // every set spans all nodes
        s.fail_node(0).unwrap();
        assert!(s.put(ObjectId(1), &blob(1, 32)).is_err());
    }

    #[test]
    fn puts_probe_past_degraded_sets() {
        // Regression: a put whose round-robin cursor landed on a set with
        // a failed node used to error even though other sets were fully
        // live — with one failed node the very first put was refused.
        let mut s = store(); // 10 nodes, 10 rotational sets of 5
        s.fail_node(0).unwrap();
        for i in 0..25u64 {
            s.put(ObjectId(i), &blob(i as u8, 64)).unwrap();
        }
        // Everything reads back, and nothing was placed on a degraded set.
        let healthy: Vec<usize> = (0..s.placement.len())
            .filter(|&si| s.placement.sets()[si].iter().all(|&v| v != 0))
            .collect();
        assert_eq!(healthy.len(), 5);
        let mut per_set = vec![0u32; s.placement.len()];
        for i in 0..25u64 {
            assert_eq!(s.get(ObjectId(i)).unwrap(), blob(i as u8, 64));
            per_set[s.objects[&ObjectId(i)].set_index] += 1;
        }
        // Placement stays balanced: the 25 puts rotate over the 5 healthy
        // sets, 5 objects each; degraded sets get nothing.
        for (si, &got) in per_set.iter().enumerate() {
            let want = if healthy.contains(&si) { 5 } else { 0 };
            assert_eq!(got, want, "set {si}");
        }
        // After the node is rebuilt, placement resumes using all sets.
        s.rebuild_node(0).unwrap();
        s.put(ObjectId(100), &blob(100, 64)).unwrap();
        assert_eq!(s.get(ObjectId(100)).unwrap(), blob(100, 64));
    }

    #[test]
    fn rebuild_step_zero_budget_is_a_pure_probe() {
        let mut s = store();
        for i in 0..8u64 {
            s.put(ObjectId(i), &blob(i as u8, 96)).unwrap();
        }
        s.fail_node(2).unwrap();
        s.begin_rebuild(2).unwrap();
        // Make partial progress so the checkpoint carries accounting.
        let _ = s.rebuild_step(2, 1).unwrap();
        let before = s.rebuild_checkpoint(2).unwrap();
        assert!(before.objects_remaining > 0);
        for _ in 0..3 {
            match s.rebuild_step(2, 0).unwrap() {
                RebuildProgress::InProgress { objects_remaining } => {
                    assert_eq!(objects_remaining, before.objects_remaining)
                }
                RebuildProgress::Complete(_) => {
                    panic!("budget 0 must not complete a non-empty queue")
                }
            }
            // Checkpoint (progress *and* accounting) untouched.
            assert_eq!(s.rebuild_checkpoint(2), Some(before));
        }
        // The rebuild still runs to completion afterwards.
        match s.rebuild_step(2, usize::MAX).unwrap() {
            RebuildProgress::Complete(report) => assert!(report.shards_rebuilt > 0),
            p => panic!("expected completion, got {p:?}"),
        }
        // Against an *empty* queue (node held no shards), budget 0 runs
        // the (vacuous) verification tail and completes immediately.
        let mut empty = store();
        empty.fail_node(7).unwrap();
        empty.begin_rebuild(7).unwrap();
        match empty.rebuild_step(7, 0).unwrap() {
            RebuildProgress::Complete(report) => assert_eq!(report, RebuildReport::default()),
            p => panic!("expected completion, got {p:?}"),
        }
        assert!(empty.failed_nodes().is_empty());
    }

    #[test]
    fn display_and_helpers() {
        let s = store();
        assert!(s.is_empty());
        assert_eq!(s.node_count(), 10);
        assert_eq!(format!("{}", ObjectId(7)), "obj7");
    }
}
