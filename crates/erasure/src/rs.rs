//! Systematic Reed–Solomon erasure coding.
//!
//! A redundancy set of size `R = k + t` holds `k` data elements and `t`
//! parity elements; the code reconstructs the originals from **any** `k`
//! surviving elements (maximum distance separable). This realizes the
//! "codes that can tolerate 1, 2 and 3 node failures" of the paper's §3 —
//! for `t = 1` the code degenerates to plain parity (RAID-5-like), and
//! higher `t` gives the multi-failure codes of Frølund et al. \[2\] that the
//! paper builds on.
//!
//! The generator matrix is a systematized Vandermonde matrix: data shards
//! pass through untouched and the `t` parity rows are dense GF(2⁸)
//! combinations.

use crate::gf256::{mul_acc, mul_into, Gf};
use crate::matrix::GfMatrix;
use crate::{Error, Result};

/// A precomputed reconstruction plan for one erasure pattern.
///
/// Building a plan inverts the `k × k` decode matrix once; applying it is
/// pure multiply-accumulate over the survivors — `(#missing) · k` kernel
/// calls, independent of how many shards survived. Callers that see the
/// same failure pattern repeatedly (degraded reads under a down node)
/// should build the plan once and reuse it; see
/// [`ReedSolomon::plan_reconstruction`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodePlan {
    /// Missing shard indices, sorted ascending.
    missing: Vec<usize>,
    /// The `k` survivor indices whose shards feed reconstruction.
    survivors: Vec<usize>,
    /// One `k`-coefficient row per missing shard:
    /// `shard[missing[j]] = Σ_c rows[j][c] · shard[survivors[c]]`.
    rows: Vec<Vec<Gf>>,
}

impl DecodePlan {
    /// The erasure pattern this plan reconstructs (sorted ascending).
    pub fn missing(&self) -> &[usize] {
        &self.missing
    }

    /// The `k` survivor shards the plan reads from.
    pub fn survivors(&self) -> &[usize] {
        &self.survivors
    }
}

/// A systematic Reed–Solomon erasure code with fixed geometry.
///
/// # Example
///
/// ```
/// use nsr_erasure::rs::ReedSolomon;
///
/// # fn main() -> Result<(), nsr_erasure::Error> {
/// let code = ReedSolomon::new(4, 2)?;
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
/// let shards = code.encode(&data)?;
/// assert_eq!(shards.len(), 6);
/// assert_eq!(&shards[0], &data[0]); // systematic: data passes through
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReedSolomon {
    data_shards: usize,
    parity_shards: usize,
    /// The full `(k+t) × k` systematic generator matrix.
    generator: GfMatrix,
}

impl ReedSolomon {
    /// Creates a code with `data_shards` data and `parity_shards` parity
    /// elements.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGeometry`] if either count is zero or the
    /// total exceeds 255 (the GF(2⁸) limit).
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<ReedSolomon> {
        if data_shards == 0 || parity_shards == 0 || data_shards + parity_shards > 255 {
            return Err(Error::InvalidGeometry {
                data: data_shards,
                parity: parity_shards,
            });
        }
        let generator =
            GfMatrix::vandermonde(data_shards + parity_shards, data_shards)?.systematize()?;
        Ok(ReedSolomon {
            data_shards,
            parity_shards,
            generator,
        })
    }

    /// Number of data shards `k = R − t`.
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Number of parity shards `t`.
    pub fn parity_shards(&self) -> usize {
        self.parity_shards
    }

    /// Total shards `R`.
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    fn check_sizes(&self, shards: &[impl AsRef<[u8]>], expected_count: usize) -> Result<usize> {
        if shards.len() != expected_count {
            return Err(Error::ShardCountMismatch {
                expected: expected_count,
                found: shards.len(),
            });
        }
        let len = shards[0].as_ref().len();
        for (i, s) in shards.iter().enumerate() {
            if s.as_ref().len() != len {
                return Err(Error::ShardSizeMismatch {
                    expected: len,
                    index: i,
                    found: s.as_ref().len(),
                });
            }
        }
        Ok(len)
    }

    /// Encodes `k` equal-length data shards into the full `R`-shard stripe
    /// (data first, then parity).
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] / [`Error::ShardSizeMismatch`] for
    ///   malformed input.
    pub fn encode(&self, data: &[impl AsRef<[u8]>]) -> Result<Vec<Vec<u8>>> {
        let len = self.check_sizes(data, self.data_shards)?;
        let mut parity: Vec<Vec<u8>> = vec![vec![0u8; len]; self.parity_shards];
        self.encode_parity_into(data, &mut parity)?;
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.total_shards());
        for d in data {
            out.push(d.as_ref().to_vec());
        }
        out.extend(parity);
        Ok(out)
    }

    /// Computes the `t` parity shards into caller-provided buffers without
    /// copying the data shards — the zero-copy core of [`encode`].
    ///
    /// `parity_out` must hold exactly `t` buffers of the data-shard length;
    /// they are overwritten (any prior contents are cleared first).
    ///
    /// The loop is coefficient-major: each data shard is streamed through
    /// [`mul_acc`] once per parity row while it is hot in cache, with the
    /// generator coefficient hoisted out of the byte loop entirely.
    ///
    /// [`encode`]: ReedSolomon::encode
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] / [`Error::ShardSizeMismatch`] for
    ///   malformed data shards or parity buffers of the wrong count/length.
    pub fn encode_parity_into(
        &self,
        data: &[impl AsRef<[u8]>],
        parity_out: &mut [impl AsMut<[u8]>],
    ) -> Result<()> {
        let len = self.check_sizes(data, self.data_shards)?;
        if parity_out.len() != self.parity_shards {
            return Err(Error::ShardCountMismatch {
                expected: self.parity_shards,
                found: parity_out.len(),
            });
        }
        for (i, p) in parity_out.iter_mut().enumerate() {
            let p = p.as_mut();
            if p.len() != len {
                return Err(Error::ShardSizeMismatch {
                    expected: len,
                    index: i,
                    found: p.len(),
                });
            }
        }
        // Data-shard-outer order: each source shard stays cache-hot while
        // it feeds every parity row. The first data shard seeds each
        // parity row with overwrite semantics (`mul_into`), which both
        // clears any prior contents and skips the zero-fill-then-
        // accumulate pass a fresh parity buffer would otherwise pay.
        for (c, d) in data.iter().enumerate() {
            let src = d.as_ref();
            for (p, out) in parity_out.iter_mut().enumerate() {
                let coeff = self.generator.row(self.data_shards + p)[c];
                if c == 0 {
                    mul_into(out.as_mut(), src, coeff);
                } else {
                    mul_acc(out.as_mut(), src, coeff);
                }
            }
        }
        Ok(())
    }

    /// Reconstructs all missing shards in place. `shards` must have length
    /// `R`; `None` entries are the erasures.
    ///
    /// Only the missing shards are computed — `(#missing) · k`
    /// multiply-accumulates rather than recovering all `k` data shards and
    /// re-encoding. Callers with a recurring erasure pattern should use
    /// [`plan_reconstruction`](ReedSolomon::plan_reconstruction) +
    /// [`reconstruct_with_plan`](ReedSolomon::reconstruct_with_plan) to
    /// also amortize the matrix inversion.
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] / [`Error::ShardSizeMismatch`] for
    ///   malformed input.
    /// * [`Error::TooManyErasures`] if more than `t` entries are `None`.
    /// * [`Error::SingularDecodeMatrix`] if the decode matrix fails to
    ///   invert (impossible for an intact MDS generator; reported rather
    ///   than panicking so hostile internal state degrades gracefully).
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<()> {
        if shards.len() != self.total_shards() {
            return Err(Error::ShardCountMismatch {
                expected: self.total_shards(),
                found: shards.len(),
            });
        }
        let missing: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        let plan = self.plan_reconstruction(&missing)?;
        self.reconstruct_with_plan(&plan, shards)
    }

    /// Builds a [`DecodePlan`] for the given erasure pattern.
    ///
    /// This performs the `O(k³)` decode-matrix inversion; applying the plan
    /// afterwards is pure multiply-accumulate. The plan depends only on the
    /// erasure pattern, not shard contents, so it can be cached and reused
    /// across stripes failing in the same way.
    ///
    /// For a missing **data** shard `m`, the plan row is row `m` of `D⁻¹`
    /// (where `D` is the generator restricted to the `k` survivors used);
    /// for a missing **parity** shard it is `G[m] · D⁻¹`, folding the
    /// recover-then-re-encode step into a single row of coefficients.
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] for an out-of-range or duplicate
    ///   missing index.
    /// * [`Error::TooManyErasures`] if the pattern exceeds `t` erasures.
    /// * [`Error::SingularDecodeMatrix`] if the decode matrix fails to
    ///   invert (impossible for an intact MDS generator).
    pub fn plan_reconstruction(&self, missing: &[usize]) -> Result<DecodePlan> {
        let mut missing = missing.to_vec();
        missing.sort_unstable();
        missing.dedup();
        if missing.len() > self.parity_shards {
            return Err(Error::TooManyErasures {
                missing: missing.len(),
                tolerated: self.parity_shards,
            });
        }
        if let Some(&bad) = missing.iter().find(|&&m| m >= self.total_shards()) {
            return Err(Error::ShardCountMismatch {
                expected: self.total_shards(),
                found: bad,
            });
        }
        let survivors: Vec<usize> = (0..self.total_shards())
            .filter(|i| !missing.contains(i))
            .take(self.data_shards)
            .collect();
        let decode = self
            .generator
            .select_rows(&survivors)
            .inverse()
            .map_err(|_| Error::SingularDecodeMatrix)?;
        let rows = missing
            .iter()
            .map(|&m| {
                if m < self.data_shards {
                    decode.row(m).to_vec()
                } else {
                    // G[m] · D⁻¹: one row of the folded parity decode.
                    let grow = self.generator.row(m);
                    (0..self.data_shards)
                        .map(|c| {
                            let mut acc = Gf::ZERO;
                            for (j, &g) in grow.iter().enumerate() {
                                acc += g * decode.row(j)[c];
                            }
                            acc
                        })
                        .collect()
                }
            })
            .collect();
        Ok(DecodePlan {
            missing,
            survivors,
            rows,
        })
    }

    /// Applies a previously built [`DecodePlan`] to a stripe, filling in
    /// exactly the shards the plan was built for.
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] / [`Error::ShardSizeMismatch`] for
    ///   malformed input.
    /// * [`Error::DecodePlanMismatch`] if a shard the plan expects present
    ///   is `None`, or one it reconstructs is already `Some`.
    pub fn reconstruct_with_plan(
        &self,
        plan: &DecodePlan,
        shards: &mut [Option<Vec<u8>>],
    ) -> Result<()> {
        if shards.len() != self.total_shards() {
            return Err(Error::ShardCountMismatch {
                expected: self.total_shards(),
                found: shards.len(),
            });
        }
        if plan.missing.iter().any(|&m| shards[m].is_some()) {
            return Err(Error::DecodePlanMismatch);
        }
        let mut survivors: Vec<&[u8]> = Vec::with_capacity(self.data_shards);
        for &i in &plan.survivors {
            survivors.push(shards[i].as_deref().ok_or(Error::DecodePlanMismatch)?);
        }
        let len = self.check_sizes(&survivors, self.data_shards)?;
        let mut rebuilt: Vec<Vec<u8>> = Vec::with_capacity(plan.missing.len());
        for row in &plan.rows {
            let mut shard = vec![0u8; len];
            for (c, &coeff) in row.iter().enumerate() {
                mul_acc(&mut shard, survivors[c], coeff);
            }
            rebuilt.push(shard);
        }
        for (&m, shard) in plan.missing.iter().zip(rebuilt) {
            shards[m] = Some(shard);
        }
        Ok(())
    }

    /// Verifies that a full stripe is consistent (parity matches data).
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] / [`Error::ShardSizeMismatch`] for
    ///   malformed input.
    pub fn verify(&self, shards: &[impl AsRef<[u8]>]) -> Result<bool> {
        let _ = self.check_sizes(shards, self.total_shards())?;
        let data: Vec<&[u8]> = shards
            .iter()
            .take(self.data_shards)
            .map(|s| s.as_ref())
            .collect();
        let expected = self.encode(&data)?;
        Ok(expected
            .iter()
            .zip(shards)
            .all(|(e, s)| e.as_slice() == s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 3) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_is_systematic() {
        let code = ReedSolomon::new(6, 3).unwrap();
        let data = sample_data(6, 100);
        let shards = code.encode(&data).unwrap();
        assert_eq!(shards.len(), 9);
        for i in 0..6 {
            assert_eq!(shards[i], data[i]);
        }
    }

    #[test]
    fn reconstruct_every_single_erasure() {
        let code = ReedSolomon::new(5, 2).unwrap();
        let data = sample_data(5, 64);
        let full = code.encode(&data).unwrap();
        for lost in 0..7 {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[lost] = None;
            code.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_deref(), Some(&full[i][..]), "lost {lost}, shard {i}");
            }
        }
    }

    #[test]
    fn reconstruct_all_double_erasures() {
        let code = ReedSolomon::new(6, 2).unwrap();
        let data = sample_data(6, 32);
        let full = code.encode(&data).unwrap();
        for a in 0..8 {
            for b in (a + 1)..8 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                code.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_deref(), Some(&full[i][..]), "lost ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn triple_tolerance_code() {
        // The paper's strongest cross-node code: t = 3.
        let code = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(5, 48);
        let full = code.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[4] = None;
        shards[7] = None;
        code.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_deref(), Some(&full[i][..]));
        }
    }

    #[test]
    fn too_many_erasures_rejected() {
        let code = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let full = code.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            code.reconstruct(&mut shards).unwrap_err(),
            Error::TooManyErasures {
                missing: 3,
                tolerated: 2
            }
        ));
    }

    #[test]
    fn verify_detects_corruption() {
        let code = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let mut full = code.encode(&data).unwrap();
        assert!(code.verify(&full).unwrap());
        full[5][3] ^= 0x40;
        assert!(!code.verify(&full).unwrap());
    }

    #[test]
    fn no_erasures_is_a_noop() {
        let code = ReedSolomon::new(3, 1).unwrap();
        let data = sample_data(3, 8);
        let full = code.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        code.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_deref(), Some(&full[i][..]));
        }
    }

    #[test]
    fn single_parity_is_xor() {
        // t = 1 must degenerate to plain parity: the parity shard is the
        // XOR of the data shards (up to a scalar; verify reconstruction
        // instead of representation).
        let code = ReedSolomon::new(4, 1).unwrap();
        let data = sample_data(4, 16);
        let full = code.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[2] = None;
        code.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[2].as_deref(), Some(&data[2][..]));
    }

    #[test]
    fn geometry_validation() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(2, 0).is_err());
        assert!(ReedSolomon::new(200, 56).is_err());
        assert!(ReedSolomon::new(200, 55).is_ok());
    }

    #[test]
    fn input_validation() {
        let code = ReedSolomon::new(3, 2).unwrap();
        // Wrong shard count.
        assert!(code.encode(&sample_data(2, 8)).is_err());
        // Jagged shards.
        let mut jagged = sample_data(3, 8);
        jagged[1].pop();
        assert!(matches!(
            code.encode(&jagged).unwrap_err(),
            Error::ShardSizeMismatch { index: 1, .. }
        ));
        // Wrong reconstruct length.
        let mut short: Vec<Option<Vec<u8>>> = vec![Some(vec![0; 8]); 4];
        assert!(code.reconstruct(&mut short).is_err());
    }

    #[test]
    fn encode_parity_into_matches_encode() {
        let code = ReedSolomon::new(6, 3).unwrap();
        let data = sample_data(6, 100);
        let full = code.encode(&data).unwrap();
        let mut parity = vec![vec![0xffu8; 100]; 3]; // dirty buffers get cleared
        code.encode_parity_into(&data, &mut parity).unwrap();
        assert_eq!(&parity[..], &full[6..]);
    }

    #[test]
    fn encode_parity_into_validates_buffers() {
        let code = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let mut wrong_count = vec![vec![0u8; 16]; 3];
        assert!(matches!(
            code.encode_parity_into(&data, &mut wrong_count)
                .unwrap_err(),
            Error::ShardCountMismatch {
                expected: 2,
                found: 3
            }
        ));
        let mut wrong_len = vec![vec![0u8; 16], vec![0u8; 15]];
        assert!(matches!(
            code.encode_parity_into(&data, &mut wrong_len).unwrap_err(),
            Error::ShardSizeMismatch { index: 1, .. }
        ));
    }

    #[test]
    fn plan_reuse_across_stripes() {
        // One plan, many stripes failing the same way — the cached-decode
        // path the store uses for degraded reads.
        let code = ReedSolomon::new(5, 2).unwrap();
        let plan = code.plan_reconstruction(&[1, 6]).unwrap();
        assert_eq!(plan.missing(), &[1, 6]);
        assert_eq!(plan.survivors().len(), 5);
        for seed in 0..4 {
            let data: Vec<Vec<u8>> = (0..5)
                .map(|i| {
                    (0..33)
                        .map(|j| ((i * 7 + j * 13 + seed) % 256) as u8)
                        .collect()
                })
                .collect();
            let full = code.encode(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[1] = None;
            shards[6] = None;
            code.reconstruct_with_plan(&plan, &mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_deref(), Some(&full[i][..]), "seed {seed}, shard {i}");
            }
        }
    }

    #[test]
    fn plan_mismatch_is_detected() {
        let code = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let full = code.encode(&data).unwrap();
        let plan = code.plan_reconstruction(&[0]).unwrap();
        // Shard 0 still present: plan says it's missing.
        let mut intact: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        assert!(matches!(
            code.reconstruct_with_plan(&plan, &mut intact).unwrap_err(),
            Error::DecodePlanMismatch
        ));
        // A survivor the plan reads from is gone.
        let mut wrong: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        wrong[0] = None;
        wrong[2] = None;
        assert!(matches!(
            code.reconstruct_with_plan(&plan, &mut wrong).unwrap_err(),
            Error::DecodePlanMismatch
        ));
    }

    #[test]
    fn plan_validation() {
        let code = ReedSolomon::new(4, 2).unwrap();
        assert!(matches!(
            code.plan_reconstruction(&[0, 1, 2]).unwrap_err(),
            Error::TooManyErasures {
                missing: 3,
                tolerated: 2
            }
        ));
        assert!(code.plan_reconstruction(&[9]).is_err());
        // Duplicates collapse to one erasure.
        let plan = code.plan_reconstruction(&[3, 3]).unwrap();
        assert_eq!(plan.missing(), &[3]);
    }

    #[test]
    fn paper_baseline_geometry() {
        // R = 8 with t = 1, 2, 3 — the paper's three cross-node codes.
        for t in 1..=3usize {
            let code = ReedSolomon::new(8 - t, t).unwrap();
            assert_eq!(code.total_shards(), 8);
            let data = sample_data(8 - t, 128);
            let full = code.encode(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for i in 0..t {
                shards[i * 2] = None; // t erasures, spread out
            }
            code.reconstruct(&mut shards).unwrap();
            assert!(code
                .verify(
                    &shards
                        .iter()
                        .map(|s| s.clone().unwrap())
                        .collect::<Vec<_>>()
                )
                .unwrap());
        }
    }
}
