//! Systematic Reed–Solomon erasure coding.
//!
//! A redundancy set of size `R = k + t` holds `k` data elements and `t`
//! parity elements; the code reconstructs the originals from **any** `k`
//! surviving elements (maximum distance separable). This realizes the
//! "codes that can tolerate 1, 2 and 3 node failures" of the paper's §3 —
//! for `t = 1` the code degenerates to plain parity (RAID-5-like), and
//! higher `t` gives the multi-failure codes of Frølund et al. \[2\] that the
//! paper builds on.
//!
//! The generator matrix is a systematized Vandermonde matrix: data shards
//! pass through untouched and the `t` parity rows are dense GF(2⁸)
//! combinations.

use crate::gf256::mul_acc;
use crate::matrix::GfMatrix;
use crate::{Error, Result};

/// A systematic Reed–Solomon erasure code with fixed geometry.
///
/// # Example
///
/// ```
/// use nsr_erasure::rs::ReedSolomon;
///
/// # fn main() -> Result<(), nsr_erasure::Error> {
/// let code = ReedSolomon::new(4, 2)?;
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
/// let shards = code.encode(&data)?;
/// assert_eq!(shards.len(), 6);
/// assert_eq!(&shards[0], &data[0]); // systematic: data passes through
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReedSolomon {
    data_shards: usize,
    parity_shards: usize,
    /// The full `(k+t) × k` systematic generator matrix.
    generator: GfMatrix,
}

impl ReedSolomon {
    /// Creates a code with `data_shards` data and `parity_shards` parity
    /// elements.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGeometry`] if either count is zero or the
    /// total exceeds 255 (the GF(2⁸) limit).
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<ReedSolomon> {
        if data_shards == 0 || parity_shards == 0 || data_shards + parity_shards > 255 {
            return Err(Error::InvalidGeometry {
                data: data_shards,
                parity: parity_shards,
            });
        }
        let generator =
            GfMatrix::vandermonde(data_shards + parity_shards, data_shards)?.systematize()?;
        Ok(ReedSolomon {
            data_shards,
            parity_shards,
            generator,
        })
    }

    /// Number of data shards `k = R − t`.
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Number of parity shards `t`.
    pub fn parity_shards(&self) -> usize {
        self.parity_shards
    }

    /// Total shards `R`.
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    fn check_sizes(&self, shards: &[impl AsRef<[u8]>], expected_count: usize) -> Result<usize> {
        if shards.len() != expected_count {
            return Err(Error::ShardCountMismatch {
                expected: expected_count,
                found: shards.len(),
            });
        }
        let len = shards[0].as_ref().len();
        for (i, s) in shards.iter().enumerate() {
            if s.as_ref().len() != len {
                return Err(Error::ShardSizeMismatch {
                    expected: len,
                    index: i,
                    found: s.as_ref().len(),
                });
            }
        }
        Ok(len)
    }

    /// Encodes `k` equal-length data shards into the full `R`-shard stripe
    /// (data first, then parity).
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] / [`Error::ShardSizeMismatch`] for
    ///   malformed input.
    pub fn encode(&self, data: &[impl AsRef<[u8]>]) -> Result<Vec<Vec<u8>>> {
        let len = self.check_sizes(data, self.data_shards)?;
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.total_shards());
        for d in data {
            out.push(d.as_ref().to_vec());
        }
        for p in 0..self.parity_shards {
            let row = self.generator.row(self.data_shards + p);
            let mut parity = vec![0u8; len];
            for (c, &coeff) in row.iter().enumerate() {
                mul_acc(&mut parity, data[c].as_ref(), coeff);
            }
            out.push(parity);
        }
        Ok(out)
    }

    /// Reconstructs all missing shards in place. `shards` must have length
    /// `R`; `None` entries are the erasures.
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] / [`Error::ShardSizeMismatch`] for
    ///   malformed input.
    /// * [`Error::TooManyErasures`] if more than `t` entries are `None`.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<()> {
        if shards.len() != self.total_shards() {
            return Err(Error::ShardCountMismatch {
                expected: self.total_shards(),
                found: shards.len(),
            });
        }
        let missing: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > self.parity_shards {
            return Err(Error::TooManyErasures {
                missing: missing.len(),
                tolerated: self.parity_shards,
            });
        }
        let present: Vec<usize> = (0..self.total_shards())
            .filter(|i| shards[*i].is_some())
            .collect();
        let survivors: Vec<&[u8]> = present
            .iter()
            .take(self.data_shards)
            .map(|&i| shards[i].as_deref().expect("present"))
            .collect();
        let len = self.check_sizes(&survivors, self.data_shards)?;

        // Decode matrix: the generator rows of the k survivors we use,
        // inverted, recovers the original data: data = D⁻¹ · survivors.
        let decode = self
            .generator
            .select_rows(&present[..self.data_shards])
            .inverse()
            .expect("any k rows of an MDS generator are invertible");

        // Recover the data shards first.
        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.data_shards);
        for r in 0..self.data_shards {
            let mut shard = vec![0u8; len];
            for (c, &coeff) in decode.row(r).iter().enumerate() {
                mul_acc(&mut shard, survivors[c], coeff);
            }
            data.push(shard);
        }
        // Re-derive every missing shard (data or parity) from the data.
        for &m in &missing {
            let mut shard = vec![0u8; len];
            for (c, &coeff) in self.generator.row(m).iter().enumerate() {
                mul_acc(&mut shard, &data[c], coeff);
            }
            shards[m] = Some(shard);
        }
        Ok(())
    }

    /// Verifies that a full stripe is consistent (parity matches data).
    ///
    /// # Errors
    ///
    /// * [`Error::ShardCountMismatch`] / [`Error::ShardSizeMismatch`] for
    ///   malformed input.
    pub fn verify(&self, shards: &[impl AsRef<[u8]>]) -> Result<bool> {
        let _ = self.check_sizes(shards, self.total_shards())?;
        let data: Vec<&[u8]> = shards
            .iter()
            .take(self.data_shards)
            .map(|s| s.as_ref())
            .collect();
        let expected = self.encode(&data)?;
        Ok(expected
            .iter()
            .zip(shards)
            .all(|(e, s)| e.as_slice() == s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 3) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_is_systematic() {
        let code = ReedSolomon::new(6, 3).unwrap();
        let data = sample_data(6, 100);
        let shards = code.encode(&data).unwrap();
        assert_eq!(shards.len(), 9);
        for i in 0..6 {
            assert_eq!(shards[i], data[i]);
        }
    }

    #[test]
    fn reconstruct_every_single_erasure() {
        let code = ReedSolomon::new(5, 2).unwrap();
        let data = sample_data(5, 64);
        let full = code.encode(&data).unwrap();
        for lost in 0..7 {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[lost] = None;
            code.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_deref(), Some(&full[i][..]), "lost {lost}, shard {i}");
            }
        }
    }

    #[test]
    fn reconstruct_all_double_erasures() {
        let code = ReedSolomon::new(6, 2).unwrap();
        let data = sample_data(6, 32);
        let full = code.encode(&data).unwrap();
        for a in 0..8 {
            for b in (a + 1)..8 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                code.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_deref(), Some(&full[i][..]), "lost ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn triple_tolerance_code() {
        // The paper's strongest cross-node code: t = 3.
        let code = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(5, 48);
        let full = code.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[4] = None;
        shards[7] = None;
        code.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_deref(), Some(&full[i][..]));
        }
    }

    #[test]
    fn too_many_erasures_rejected() {
        let code = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let full = code.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            code.reconstruct(&mut shards).unwrap_err(),
            Error::TooManyErasures {
                missing: 3,
                tolerated: 2
            }
        ));
    }

    #[test]
    fn verify_detects_corruption() {
        let code = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let mut full = code.encode(&data).unwrap();
        assert!(code.verify(&full).unwrap());
        full[5][3] ^= 0x40;
        assert!(!code.verify(&full).unwrap());
    }

    #[test]
    fn no_erasures_is_a_noop() {
        let code = ReedSolomon::new(3, 1).unwrap();
        let data = sample_data(3, 8);
        let full = code.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        code.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.as_deref(), Some(&full[i][..]));
        }
    }

    #[test]
    fn single_parity_is_xor() {
        // t = 1 must degenerate to plain parity: the parity shard is the
        // XOR of the data shards (up to a scalar; verify reconstruction
        // instead of representation).
        let code = ReedSolomon::new(4, 1).unwrap();
        let data = sample_data(4, 16);
        let full = code.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[2] = None;
        code.reconstruct(&mut shards).unwrap();
        assert_eq!(shards[2].as_deref(), Some(&data[2][..]));
    }

    #[test]
    fn geometry_validation() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(2, 0).is_err());
        assert!(ReedSolomon::new(200, 56).is_err());
        assert!(ReedSolomon::new(200, 55).is_ok());
    }

    #[test]
    fn input_validation() {
        let code = ReedSolomon::new(3, 2).unwrap();
        // Wrong shard count.
        assert!(code.encode(&sample_data(2, 8)).is_err());
        // Jagged shards.
        let mut jagged = sample_data(3, 8);
        jagged[1].pop();
        assert!(matches!(
            code.encode(&jagged).unwrap_err(),
            Error::ShardSizeMismatch { index: 1, .. }
        ));
        // Wrong reconstruct length.
        let mut short: Vec<Option<Vec<u8>>> = vec![Some(vec![0; 8]); 4];
        assert!(code.reconstruct(&mut short).is_err());
    }

    #[test]
    fn paper_baseline_geometry() {
        // R = 8 with t = 1, 2, 3 — the paper's three cross-node codes.
        for t in 1..=3usize {
            let code = ReedSolomon::new(8 - t, t).unwrap();
            assert_eq!(code.total_shards(), 8);
            let data = sample_data(8 - t, 128);
            let full = code.encode(&data).unwrap();
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for i in 0..t {
                shards[i * 2] = None; // t erasures, spread out
            }
            code.reconstruct(&mut shards).unwrap();
            assert!(code
                .verify(
                    &shards
                        .iter()
                        .map(|s| s.clone().unwrap())
                        .collect::<Vec<_>>()
                )
                .unwrap());
        }
    }
}
