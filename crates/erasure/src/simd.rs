//! Vectorized GF(2⁸) multiply-accumulate via the x86 `GFNI` extension.
//!
//! Multiplication by a fixed coefficient `c` in GF(2⁸) is GF(2)-linear in
//! the other factor, so it is exactly an 8×8 bit-matrix product — which is
//! what `vgf2p8affineqb` computes for 64 bytes per instruction. The matrix
//! for `c` is derived at call time from the images of the basis elements
//! (`c·x⁰ … c·x⁷`, eight table multiplies), so the instruction's hardwired
//! AES polynomial never enters the picture and the kernel works for this
//! crate's `0x11d` field (the affine form is polynomial-agnostic; only
//! `gf2p8mulb` is tied to `0x11B`).
//!
//! This is the only module in the crate allowed to use `unsafe`: the
//! feature-gated kernel call and the SIMD loads/stores require it. Every
//! site carries a SAFETY argument; the dispatch is behind cached runtime
//! CPUID detection and the module is a no-op (always reports
//! "unavailable") on other architectures, so builds and results stay
//! portable. Correctness is pinned by differential tests against
//! [`crate::gf256::mul_acc_reference`] over all 256 coefficients.
#![allow(unsafe_code)]

use crate::gf256::Gf;

/// Accumulates `dst[i] ^= c · src[i]` with the GFNI kernel when the CPU
/// supports it. Returns `false` (having done nothing) when unsupported,
/// letting the caller fall back to the portable word kernel.
///
/// Expects `coeff ∉ {0, 1}` (the caller handles those identities) and
/// equal-length slices.
pub(crate) fn mul_acc_accel(dst: &mut [u8], src: &[u8], coeff: Gf) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::available() {
            // SAFETY: `available()` confirmed via CPUID that this CPU
            // supports every feature `mul_acc_zmm` is compiled with
            // (gfni, avx512f, avx512bw).
            unsafe { x86::mul_acc_zmm(dst, src, mul_matrix(coeff)) };
            return true;
        }
        false
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (dst, src, coeff);
        false
    }
}

/// Whether the vectorized kernel is usable on this CPU (always `false`
/// off x86_64). Lets `gf256::kernel_tier` report which tier large-block
/// dispatch will select without doing any work.
pub(crate) fn accel_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        x86::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Builds the `vgf2p8affineqb` bit-matrix for multiplication by `c`.
///
/// Output bit `i` of a product byte is `Σ_j input[j] · bit_i(c·x^j)`, so
/// row `i` of the matrix (as a bitmask over input bits) is
/// `row_i[j] = bit_i(c·x^j)`. The instruction reads row `i` from matrix
/// byte `7−i` of each qword.
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
fn mul_matrix(c: Gf) -> u64 {
    let mut cols = [0u8; 8];
    for (j, col) in cols.iter_mut().enumerate() {
        *col = (c * Gf(1 << j)).0;
    }
    let mut matrix = 0u64;
    for i in 0..8u64 {
        let mut row = 0u8;
        for (j, col) in cols.iter().enumerate() {
            row |= ((col >> i) & 1) << j;
        }
        matrix |= u64::from(row) << (8 * (7 - i));
    }
    matrix
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m512i, _mm512_gf2p8affine_epi64_epi8, _mm512_loadu_si512, _mm512_set1_epi64,
        _mm512_storeu_si512, _mm512_xor_si512,
    };
    use std::sync::OnceLock;

    /// Cached CPUID check for every feature the kernel needs.
    pub(super) fn available() -> bool {
        static HAVE: OnceLock<bool> = OnceLock::new();
        *HAVE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("gfni")
                && std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
        })
    }

    /// 64-byte-block multiply-accumulate: `dst ^= matrix ⊗ src` per byte,
    /// with a scalar tail.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports gfni + avx512f + avx512bw
    /// (see [`available`]).
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    pub(super) unsafe fn mul_acc_zmm(dst: &mut [u8], src: &[u8], matrix: u64) {
        debug_assert_eq!(dst.len(), src.len());
        #[allow(clippy::cast_possible_wrap)]
        let m = _mm512_set1_epi64(matrix as i64);
        let (d_blocks, d_tail) = dst.as_chunks_mut::<64>();
        let (s_blocks, s_tail) = src.as_chunks::<64>();
        for (d, s) in d_blocks.iter_mut().zip(s_blocks) {
            // SAFETY: `d` and `s` are exactly-64-byte array references, so
            // both unaligned 64-byte loads and the store stay in bounds.
            unsafe {
                let x = _mm512_loadu_si512(s.as_ptr().cast::<__m512i>());
                let prod = _mm512_gf2p8affine_epi64_epi8::<0>(x, m);
                let acc = _mm512_loadu_si512(d.as_ptr().cast::<__m512i>());
                _mm512_storeu_si512(
                    d.as_mut_ptr().cast::<__m512i>(),
                    _mm512_xor_si512(acc, prod),
                );
            }
        }
        // Tail (< 64 bytes): scalar multiply through the same matrix
        // semantics via the field tables.
        for (d, s) in d_tail.iter_mut().zip(s_tail) {
            *d ^= super::apply_matrix_scalar(matrix, *s);
        }
    }
}

/// Scalar model of the affine instruction: applies the bit-matrix to one
/// byte. Used for tails and for testing the matrix construction without
/// needing the CPU feature.
fn apply_matrix_scalar(matrix: u64, x: u8) -> u8 {
    let mut out = 0u8;
    for i in 0..8u32 {
        let row = (matrix >> (8 * (7 - i))) as u8;
        out |= (((row & x).count_ones() & 1) as u8) << i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256::mul_acc_reference;

    #[test]
    fn matrix_reproduces_field_multiplication() {
        // The affine matrix must agree with table multiplication for every
        // coefficient × operand pair — checked through the scalar model of
        // the instruction, so this holds on every architecture.
        for c in 0..=255u8 {
            let m = mul_matrix(Gf(c));
            for s in 0..=255u8 {
                assert_eq!(apply_matrix_scalar(m, s), (Gf(c) * Gf(s)).0, "c={c}, s={s}");
            }
        }
    }

    #[test]
    fn accel_kernel_matches_reference_when_available() {
        // Exercises the real vector instructions (on CPUs that have them)
        // across block/tail splits; on other machines mul_acc_accel
        // declines and the test trivially passes.
        for len in [64usize, 65, 127, 128, 191, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i * 151 + 13) as u8).collect();
            for coeff in [2u8, 3, 0x1d, 0x80, 0xff] {
                let mut fast: Vec<u8> = (0..len).map(|i| (i * 29 + 7) as u8).collect();
                let mut slow = fast.clone();
                if mul_acc_accel(&mut fast, &src, Gf(coeff)) {
                    mul_acc_reference(&mut slow, &src, Gf(coeff));
                    assert_eq!(fast, slow, "len={len}, coeff={coeff}");
                }
            }
        }
    }
}
