//! Redundancy-set placement over a node set (§4.1) and the resulting
//! rebuild data flows (§5.1) and critical-set counts (§5.2) — measured on
//! an actual layout instead of assumed.
//!
//! The paper's §4.1 model: data is spread evenly, so every one of the
//! `C(N, R)` node combinations carries the same number of redundancy sets.
//! This module can enumerate that full design for small `N` (validating
//! the combinatorial fractions exactly) and also provides the *rotational*
//! layout — `N` sets, set `i` occupying nodes `{i, i+1, …, i+R−1} mod N` —
//! as a practical even placement.

use crate::{Error, Result};

/// Guard for full-design enumeration: `C(N, R)` may not exceed this.
pub const MAX_ENUMERATED_SETS: u64 = 2_000_000;

/// A concrete assignment of redundancy sets to nodes.
///
/// # Example
///
/// ```
/// use nsr_erasure::placement::Placement;
///
/// # fn main() -> Result<(), nsr_erasure::Error> {
/// let p = Placement::enumerate_all(10, 4)?;
/// assert_eq!(p.len(), 210); // C(10, 4)
/// // Every node appears in C(9, 3) = 84 sets — perfectly even.
/// assert!(
///     (0..10).all(|v| p.sets_touching(v) == 84)
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    n: u32,
    r: u32,
    /// Each set is a sorted list of distinct node ids.
    sets: Vec<Vec<u32>>,
}

fn binomial_u64(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

impl Placement {
    fn validate(n: u32, r: u32) -> Result<()> {
        if n == 0 || r == 0 {
            return Err(Error::InvalidPlacement {
                what: "node set and redundancy set must be non-empty".into(),
            });
        }
        if r > n {
            return Err(Error::InvalidPlacement {
                what: format!("redundancy set size {r} exceeds node set size {n}"),
            });
        }
        Ok(())
    }

    /// The full even design: every one of the `C(N, R)` node combinations
    /// as one redundancy set — the paper's §4.1 layout.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidPlacement`] for bad sizes or when `C(N, R)` would
    ///   exceed [`MAX_ENUMERATED_SETS`].
    pub fn enumerate_all(n: u32, r: u32) -> Result<Placement> {
        Self::validate(n, r)?;
        let count = binomial_u64(n as u64, r as u64);
        if count > MAX_ENUMERATED_SETS {
            return Err(Error::InvalidPlacement {
                what: format!("C({n}, {r}) = {count} sets exceeds enumeration limit"),
            });
        }
        let mut sets = Vec::with_capacity(count as usize);
        let mut comb: Vec<u32> = (0..r).collect();
        loop {
            sets.push(comb.clone());
            // Next lexicographic combination.
            let mut i = r as i64 - 1;
            while i >= 0 && comb[i as usize] == n - r + i as u32 {
                i -= 1;
            }
            if i < 0 {
                break;
            }
            comb[i as usize] += 1;
            for j in (i as usize + 1)..r as usize {
                comb[j] = comb[j - 1] + 1;
            }
        }
        Ok(Placement { n, r, sets })
    }

    /// The rotational layout: `N` sets, set `i` on nodes
    /// `{i, i+1, …, i+R−1} mod N`. Every node appears in exactly `R` sets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPlacement`] for bad sizes.
    pub fn rotational(n: u32, r: u32) -> Result<Placement> {
        Self::validate(n, r)?;
        let sets = (0..n)
            .map(|i| {
                let mut s: Vec<u32> = (0..r).map(|j| (i + j) % n).collect();
                s.sort_unstable();
                s
            })
            .collect();
        Ok(Placement { n, r, sets })
    }

    /// Node set size `N`.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Redundancy set size `R`.
    pub fn set_size(&self) -> u32 {
        self.r
    }

    /// Number of redundancy sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the placement has no sets (never true for constructed
    /// placements).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The sets themselves (each a sorted node-id list).
    pub fn sets(&self) -> &[Vec<u32>] {
        &self.sets
    }

    /// Number of sets that include `node`.
    pub fn sets_touching(&self, node: u32) -> usize {
        self.sets.iter().filter(|s| s.contains(&node)).count()
    }

    /// Empirical §5.2.1 critical fraction `k_t`: among the redundancy sets
    /// touching the node being rebuilt (`rebuilding`), the fraction that
    /// also contain **all** of the `other_failed` nodes — i.e. the sets
    /// that are critical while `other_failed.len() + 1` failures are
    /// outstanding under a code of exactly that tolerance (Figure 11).
    ///
    /// For the full design this equals
    /// `k_t = C(N−t, R−t)/C(N−1, R−1)`, with `t = other_failed.len() + 1`;
    /// in particular `k₁ = 1` (the rebuilt node's own data is all
    /// critical).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPlacement`] if `rebuilding` is listed in
    /// `other_failed`, any node id is out of range, or the node touches no
    /// sets.
    pub fn critical_fraction(&self, rebuilding: u32, other_failed: &[u32]) -> Result<f64> {
        if other_failed.contains(&rebuilding) {
            return Err(Error::InvalidPlacement {
                what: "rebuilding node cannot be one of the other failed nodes".into(),
            });
        }
        for &v in other_failed.iter().chain(std::iter::once(&rebuilding)) {
            if v >= self.n {
                return Err(Error::InvalidPlacement {
                    what: format!("node id {v} out of range (N = {})", self.n),
                });
            }
        }
        let mut touching = 0u64;
        let mut critical = 0u64;
        for s in &self.sets {
            if !s.contains(&rebuilding) {
                continue;
            }
            touching += 1;
            if other_failed.iter().all(|f| s.contains(f)) {
                critical += 1;
            }
        }
        if touching == 0 {
            return Err(Error::InvalidPlacement {
                what: format!("node {rebuilding} appears in no redundancy set"),
            });
        }
        Ok(critical as f64 / touching as f64)
    }
}

/// Per-node accounting of one distributed node rebuild, in units of
/// redundancy-set *elements* moved — the empirical counterpart of §5.1.
#[derive(Debug, Clone, PartialEq)]
pub struct RebuildFlows {
    /// `received[v]`: elements received over the network by node `v`
    /// (source elements it needs for the reconstructions it performs).
    pub received: Vec<u64>,
    /// `sourced[v]`: elements sent by node `v` to rebuilding peers.
    pub sourced: Vec<u64>,
    /// `rebuilt[v]`: lost elements reconstructed (and written) on node `v`.
    pub rebuilt: Vec<u64>,
    /// Total elements that crossed the network.
    pub network_total: u64,
    /// Elements the failed node held (its "node's worth of data").
    pub lost_elements: u64,
}

impl RebuildFlows {
    /// Simulates the §5.1 rebuild of `failed` under fault tolerance `t`:
    /// every set containing the failed node loses one element; the
    /// replacement is assigned round-robin over the survivors (spare space
    /// is distributed evenly), and the `R − t` source elements are read
    /// from the set's surviving nodes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPlacement`] if `failed` is out of range or
    /// `t >= R`.
    pub fn for_node_failure(placement: &Placement, failed: u32, t: u32) -> Result<RebuildFlows> {
        if failed >= placement.n {
            return Err(Error::InvalidPlacement {
                what: format!("node id {failed} out of range"),
            });
        }
        if t >= placement.r {
            return Err(Error::InvalidPlacement {
                what: format!("fault tolerance {t} must be below set size {}", placement.r),
            });
        }
        let n = placement.n as usize;
        let sources_needed = (placement.r - t) as usize;
        let mut flows = RebuildFlows {
            received: vec![0; n],
            sourced: vec![0; n],
            rebuilt: vec![0; n],
            network_total: 0,
            lost_elements: 0,
        };
        // Round-robin replacement assignment over survivors.
        let survivors: Vec<u32> = (0..placement.n).filter(|&v| v != failed).collect();
        let mut next_replacement = 0usize;
        for set in &placement.sets {
            if !set.contains(&failed) {
                continue;
            }
            flows.lost_elements += 1;
            let replacement = survivors[next_replacement % survivors.len()];
            next_replacement += 1;
            flows.rebuilt[replacement as usize] += 1;
            // Read R−t surviving elements of this set. Prefer the
            // replacement's own element when it is a set member (a local
            // read is free), then rotate through the remaining survivors
            // so sourcing load spreads evenly across nodes.
            let survivors_in_set: Vec<u32> = set.iter().copied().filter(|&m| m != failed).collect();
            let mut taken = 0usize;
            if survivors_in_set.contains(&replacement) {
                taken += 1; // local read: disk I/O but no network transfer
            }
            let rotation = flows.lost_elements as usize;
            let len = survivors_in_set.len();
            for i in 0..len {
                if taken == sources_needed {
                    break;
                }
                let member = survivors_in_set[(i + rotation) % len];
                if member == replacement {
                    continue; // already counted as the local read
                }
                flows.sourced[member as usize] += 1;
                flows.received[replacement as usize] += 1;
                flows.network_total += 1;
                taken += 1;
            }
        }
        Ok(flows)
    }

    /// Largest relative deviation of the per-survivor received amounts from
    /// the §5.1 prediction `lost · (R−t)/(N−1)` (skipping the failed node).
    pub fn received_imbalance(&self, failed: u32, r: u32, t: u32) -> f64 {
        let n = self.received.len() as f64;
        let ideal = self.lost_elements as f64 * (r - t) as f64 / (n - 1.0);
        self.received
            .iter()
            .enumerate()
            .filter(|(v, _)| *v as u32 != failed)
            .map(|(_, &got)| (got as f64 - ideal).abs() / ideal.max(1e-12))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_all_counts() {
        let p = Placement::enumerate_all(8, 3).unwrap();
        assert_eq!(p.len(), 56);
        // Every node in C(7, 2) = 21 sets.
        for v in 0..8 {
            assert_eq!(p.sets_touching(v), 21);
        }
        // All sets distinct and sorted.
        let unique: std::collections::HashSet<_> = p.sets().iter().collect();
        assert_eq!(unique.len(), 56);
        assert!(p.sets().iter().all(|s| s.windows(2).all(|w| w[0] < w[1])));
    }

    #[test]
    fn enumeration_limit_enforced() {
        // C(64, 8) ≈ 4.4e9 ≫ limit.
        assert!(matches!(
            Placement::enumerate_all(64, 8).unwrap_err(),
            Error::InvalidPlacement { .. }
        ));
    }

    #[test]
    fn rotational_layout_is_even() {
        let p = Placement::rotational(16, 5).unwrap();
        assert_eq!(p.len(), 16);
        for v in 0..16 {
            assert_eq!(p.sets_touching(v), 5);
        }
    }

    #[test]
    fn critical_fraction_matches_section_5_2_formula() {
        // Full design, N=12, R=5: k_t = Π_{i=1}^{t−1} (R−i)/(N−i).
        let p = Placement::enumerate_all(12, 5).unwrap();
        for t in 1u32..=3 {
            // t failures outstanding: node t−1 is being rebuilt, nodes
            // 0..t−1 are the other failures.
            let other_failed: Vec<u32> = (0..t - 1).collect();
            let got = p.critical_fraction(t - 1, &other_failed).unwrap();
            let mut expected = 1.0;
            for i in 1..t {
                expected *= (5 - i) as f64 / (12 - i) as f64;
            }
            assert!(
                (got - expected).abs() < 1e-12,
                "t={t}: empirical {got} vs formula {expected}"
            );
        }
    }

    #[test]
    fn critical_fraction_validation() {
        let p = Placement::enumerate_all(6, 3).unwrap();
        assert!(p.critical_fraction(0, &[0]).is_err());
        assert!(p.critical_fraction(9, &[0]).is_err());
        assert!(p.critical_fraction(1, &[9]).is_err());
    }

    #[test]
    fn rebuild_flows_conservation() {
        let p = Placement::enumerate_all(10, 4).unwrap();
        let flows = RebuildFlows::for_node_failure(&p, 3, 2).unwrap();
        // The failed node held C(9, 3) = 84 elements.
        assert_eq!(flows.lost_elements, 84);
        // Conservation: total sourced == total received == network total.
        let sourced: u64 = flows.sourced.iter().sum();
        let received: u64 = flows.received.iter().sum();
        assert_eq!(sourced, flows.network_total);
        assert_eq!(received, flows.network_total);
        // Every lost element was rebuilt exactly once.
        let rebuilt: u64 = flows.rebuilt.iter().sum();
        assert_eq!(rebuilt, flows.lost_elements);
        // The failed node neither sources nor receives.
        assert_eq!(flows.sourced[3], 0);
        assert_eq!(flows.received[3], 0);
    }

    #[test]
    fn rebuild_flows_match_section_5_1_amounts() {
        // §5.1: total network traffic = (R−t) node's-worths; per-node
        // received ≈ (R−t)/(N−1) node's-worths. Local reads on the
        // replacement node make the empirical network total slightly
        // *smaller* — the paper's figure is the conservative upper bound.
        let (n, r, t) = (12u32, 5u32, 2u32);
        let p = Placement::enumerate_all(n, r).unwrap();
        let flows = RebuildFlows::for_node_failure(&p, 0, t).unwrap();
        let node_worth = flows.lost_elements as f64;
        let network_fraction = flows.network_total as f64 / node_worth;
        let paper_bound = (r - t) as f64;
        assert!(network_fraction <= paper_bound + 1e-12);
        assert!(
            network_fraction > paper_bound * 0.6,
            "fraction {network_fraction}"
        );
        // Per-survivor balance within 15 % of the ideal §5.1 share.
        let imbalance = flows.received_imbalance(0, r, t);
        assert!(imbalance < 0.15, "imbalance {imbalance}");
    }

    #[test]
    fn rebuild_flow_validation() {
        let p = Placement::enumerate_all(6, 3).unwrap();
        assert!(RebuildFlows::for_node_failure(&p, 9, 1).is_err());
        assert!(RebuildFlows::for_node_failure(&p, 0, 3).is_err());
    }

    #[test]
    fn placement_validation() {
        assert!(Placement::enumerate_all(0, 1).is_err());
        assert!(Placement::enumerate_all(4, 0).is_err());
        assert!(Placement::enumerate_all(4, 5).is_err());
        assert!(Placement::rotational(4, 5).is_err());
    }

    #[test]
    fn single_node_sets_degenerate() {
        let p = Placement::enumerate_all(5, 1).unwrap();
        assert_eq!(p.len(), 5);
        for v in 0..5 {
            assert_eq!(p.sets_touching(v), 1);
        }
    }
}
