//! Minimal hand-rolled argument parsing (no external dependency).

use std::collections::HashMap;

use nsr_core::config::Configuration;
use nsr_core::params::{Duplex, Params};
use nsr_core::raid::InternalRaid;
use nsr_core::units::{Bytes, Gbps, Hours};

use crate::{CliError, Result};

/// Commands that accept extra positional arguments: `bench` (whose
/// `--compare <old.json> <new.json>` form supplies the second report
/// path positionally) and `explain` (which takes the configuration name
/// positionally). Every other command rejects positionals so typos fail
/// loudly.
const POSITIONAL_COMMANDS: &[&str] = &["bench", "explain"];

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs (keys without the leading dashes).
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Extra positional arguments, only populated for
    /// [`POSITIONAL_COMMANDS`].
    pub positionals: Vec<String>,
}

impl ParsedArgs {
    /// Parses an argument list (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns an error when no subcommand is present, an option is
    /// missing its value, or a positional argument appears after a
    /// command that takes none.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<ParsedArgs> {
        let mut iter = args.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| CliError("missing subcommand; try `nsr help`".into()))?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                if POSITIONAL_COMMANDS.contains(&command.as_str()) {
                    positionals.push(arg);
                    continue;
                }
                return Err(CliError(format!("unexpected positional argument '{arg}'")));
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    options.insert(key.to_string(), iter.next().expect("peeked"));
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(ParsedArgs {
            command,
            options,
            flags,
            positionals,
        })
    }

    /// Looks up an option, parsed as `T`.
    ///
    /// # Errors
    ///
    /// Returns an error if present but unparseable.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>> {
        match self.options.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| CliError(format!("cannot parse --{key} value '{v}'"))),
        }
    }

    /// Looks up an option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if present but unparseable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        Ok(self.get(key)?.unwrap_or(default))
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Parses a configuration name of the form `ft<k>-<nir|ir5|ir6>`
/// (e.g. `ft2-ir5`, `ft3-nir`).
///
/// # Errors
///
/// Returns an error for malformed names.
pub fn parse_config(name: &str) -> Result<Configuration> {
    let lower = name.to_ascii_lowercase();
    let (ft_part, raid_part) = lower
        .split_once('-')
        .ok_or_else(|| CliError(format!("bad config '{name}'; expected e.g. ft2-ir5")))?;
    let k: u32 = ft_part
        .strip_prefix("ft")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CliError(format!("bad fault tolerance in '{name}'")))?;
    let internal = match raid_part {
        "nir" | "none" => InternalRaid::None,
        "ir5" | "raid5" => InternalRaid::Raid5,
        "ir6" | "raid6" => InternalRaid::Raid6,
        other => return Err(CliError(format!("unknown internal RAID '{other}'"))),
    };
    Configuration::new(internal, k).map_err(Into::into)
}

/// Canonical short name for a configuration (inverse of [`parse_config`]).
pub fn config_name(config: Configuration) -> String {
    let raid = match config.internal() {
        InternalRaid::None => "nir",
        InternalRaid::Raid5 => "ir5",
        InternalRaid::Raid6 => "ir6",
    };
    format!("ft{}-{raid}", config.node_fault_tolerance())
}

/// Applies the shared parameter-override options to a baseline parameter
/// set. Recognized options:
///
/// `--drive-mttf H`, `--node-mttf H`, `--nodes N`, `--rset R`,
/// `--drives D`, `--link-gbps G`, `--rebuild-kib K`, `--restripe-kib K`,
/// `--capacity-util F`, `--bw-util F`, `--her E` (errors per bit),
/// `--drive-gb G`, `--half-duplex` (flag).
///
/// # Errors
///
/// Returns parse or validation errors.
pub fn params_from(args: &ParsedArgs) -> Result<Params> {
    let mut p = Params::baseline();
    if let Some(v) = args.get::<f64>("drive-mttf")? {
        p.drive.mttf = Hours(v);
    }
    if let Some(v) = args.get::<f64>("node-mttf")? {
        p.node.mttf = Hours(v);
    }
    if let Some(v) = args.get::<u32>("nodes")? {
        p.system.node_count = v;
    }
    if let Some(v) = args.get::<u32>("rset")? {
        p.system.redundancy_set_size = v;
    }
    if let Some(v) = args.get::<u32>("drives")? {
        p.node.drives_per_node = v;
    }
    if let Some(v) = args.get::<f64>("link-gbps")? {
        p.system.link_speed = Gbps(v);
    }
    if let Some(v) = args.get::<f64>("rebuild-kib")? {
        p.system.rebuild_command = Bytes::from_kib(v);
    }
    if let Some(v) = args.get::<f64>("restripe-kib")? {
        p.system.restripe_command = Bytes::from_kib(v);
    }
    if let Some(v) = args.get::<f64>("capacity-util")? {
        p.system.capacity_utilization = v;
    }
    if let Some(v) = args.get::<f64>("bw-util")? {
        p.system.rebuild_bw_utilization = v;
    }
    if let Some(v) = args.get::<f64>("her")? {
        p.drive.hard_error_rate_per_bit = v;
    }
    if let Some(v) = args.get::<f64>("drive-gb")? {
        p.drive.capacity = Bytes::from_gb(v);
    }
    if args.has_flag("half-duplex") {
        p.system.duplex = Duplex::Half;
    }
    p.validate()?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["sweep", "--figure", "16", "--csv"]);
        assert_eq!(a.command, "sweep");
        assert_eq!(a.get::<u32>("figure").unwrap(), Some(16));
        assert!(a.has_flag("csv"));
        assert!(!a.has_flag("json"));
    }

    #[test]
    fn missing_command_errors() {
        assert!(ParsedArgs::parse(Vec::<String>::new()).is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(ParsedArgs::parse(vec!["eval".into(), "oops".into()]).is_err());
    }

    #[test]
    fn bench_accepts_positionals() {
        let a = parse(&["bench", "--compare", "old.json", "new.json"]);
        assert_eq!(
            a.get::<String>("compare").unwrap().as_deref(),
            Some("old.json")
        );
        assert_eq!(a.positionals, vec!["new.json".to_string()]);
    }

    #[test]
    fn unparseable_option_errors() {
        let a = parse(&["eval", "--nodes", "lots"]);
        assert!(a.get::<u32>("nodes").is_err());
    }

    #[test]
    fn get_or_defaults() {
        let a = parse(&["sim"]);
        assert_eq!(a.get_or("samples", 100u64).unwrap(), 100);
    }

    #[test]
    fn config_names_roundtrip() {
        for name in ["ft1-nir", "ft2-ir5", "ft3-ir6"] {
            let c = parse_config(name).unwrap();
            assert_eq!(config_name(c), name);
        }
        assert_eq!(
            parse_config("ft2-raid5").unwrap(),
            parse_config("FT2-IR5").unwrap()
        );
        assert!(parse_config("ft2").is_err());
        assert!(parse_config("ftx-ir5").is_err());
        assert!(parse_config("ft2-zfs").is_err());
        assert!(parse_config("ft0-nir").is_err());
    }

    #[test]
    fn params_overrides_apply() {
        let a = parse(&[
            "eval",
            "--drive-mttf",
            "750000",
            "--nodes",
            "128",
            "--rebuild-kib",
            "64",
            "--half-duplex",
        ]);
        let p = params_from(&a).unwrap();
        assert_eq!(p.drive.mttf.0, 750000.0);
        assert_eq!(p.system.node_count, 128);
        assert_eq!(p.system.rebuild_command.0, 65536.0);
        assert_eq!(p.system.duplex, Duplex::Half);
    }

    #[test]
    fn invalid_override_rejected_by_validation() {
        let a = parse(&["eval", "--capacity-util", "0"]);
        assert!(params_from(&a).is_err());
    }
}
