//! `nsr top`: a polling terminal dashboard over the live scrape path.
//!
//! Each tick connects to every target (brick daemons via `--bricks`,
//! a gateway's telemetry listener via `--gateway`), sends a
//! `Frame::Scrape`, and folds the returned metrics snapshot into a
//! per-process row: request rate, totals, serving latency percentiles,
//! pool reuse/redial counts. The gateway reply additionally carries the
//! cluster-status blob (detector health, snapshot staleness, rebuild
//! progress), rendered as a second section.
//!
//! Scrape cursors advance monotonically per target, so trace lines are
//! counted without replay; rates come from counter deltas between
//! consecutive ticks.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use nsr_net::client::BrickClient;
use nsr_obs::{percentile_from_buckets, Json};

use crate::args::ParsedArgs;
use crate::{CliError, Result};

/// One histogram summary parsed from a metrics snapshot.
struct Hist {
    buckets: Vec<(f64, u64)>,
    overflow: u64,
    max: f64,
    count: u64,
}

impl Hist {
    fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        percentile_from_buckets(&self.buckets, self.overflow, self.max, q)
    }
}

/// Counter values and histogram summaries from one scrape.
#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Hist>,
}

impl Metrics {
    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The "work served" total a rate is computed over: brick request
    /// frames plus gateway puts and gets (only one side is non-zero for
    /// any given process).
    fn requests(&self) -> u64 {
        self.counter("net.brick.requests")
            + self.counter("net.gateway.puts")
            + self.counter("net.gateway.gets")
    }
}

fn parse_metrics(text: &str) -> Metrics {
    let mut m = Metrics::default();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(doc) = Json::parse(line) else { continue };
        let Some(name) = doc.get("name").and_then(Json::as_str) else {
            continue;
        };
        match doc.get("kind").and_then(Json::as_str) {
            Some("counter") => {
                if let Some(v) = doc.get("value").and_then(Json::as_f64) {
                    m.counters.insert(name.to_string(), v as u64);
                }
            }
            Some("histogram") => {
                let buckets: Vec<(f64, u64)> = doc
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .map(|arr| {
                        arr.iter()
                            .filter_map(|b| {
                                let le = b.get("le").and_then(Json::as_f64)?;
                                let count = b.get("count").and_then(Json::as_f64)?;
                                Some((le, count as u64))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let num = |key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                m.histograms.insert(
                    name.to_string(),
                    Hist {
                        buckets,
                        overflow: num("overflow") as u64,
                        max: doc
                            .get("max")
                            .and_then(Json::as_f64)
                            .unwrap_or(f64::NEG_INFINITY),
                        count: num("count") as u64,
                    },
                );
            }
            _ => {}
        }
    }
    m
}

/// One scrape target and the state carried between ticks.
struct Target {
    addr: SocketAddr,
    /// Fallback display name until the first reply supplies the
    /// process's own label.
    name: String,
    cursor: u64,
    trace_lines: u64,
    prev: Option<(Instant, u64)>,
    /// The latest cluster-status blob (gateway targets only).
    status: String,
}

/// Formats a latency histogram as `p50/p99` in microseconds.
fn latency_cell(m: &Metrics, name: &str) -> String {
    let us = |s: f64| {
        if s >= 0.01 {
            format!("{:.0}ms", s * 1e3)
        } else {
            format!("{:.0}us", s * 1e6)
        }
    };
    match m.histograms.get(name) {
        Some(h) => match (h.percentile(0.50), h.percentile(0.99)) {
            (Some(p50), Some(p99)) => format!("{}/{}", us(p50), us(p99)),
            _ => "-".to_string(),
        },
        None => "-".to_string(),
    }
}

/// Polls every target once and renders one dashboard frame.
fn render_tick(targets: &mut [Target], timeout: Duration) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>9} {:>7} {:>13} {:>13} {:>11}",
        "process", "ops/s", "requests", "trace", "put p50/p99", "get p50/p99", "pool re/dial"
    );
    let mut statuses = Vec::new();
    for t in targets.iter_mut() {
        let snap = BrickClient::connect(t.addr, timeout)
            .and_then(|mut c| c.scrape(t.cursor, 8192))
            .ok();
        let Some(snap) = snap else {
            let _ = writeln!(out, "{:<14} {:>8}", t.name, "down");
            t.prev = None;
            continue;
        };
        t.name = snap.label.clone();
        t.trace_lines += snap.trace.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        t.cursor = snap.next_cursor;
        let m = parse_metrics(&snap.metrics);
        let now = Instant::now();
        let requests = m.requests();
        let rate = match t.prev {
            Some((at, last)) if now > at && requests >= last => {
                format!("{:.1}", (requests - last) as f64 / (now - at).as_secs_f64())
            }
            _ => "-".to_string(),
        };
        t.prev = Some((now, requests));
        let pool = if m.counter("net.pool.reuses") + m.counter("net.pool.reconnects") > 0 {
            format!(
                "{}/{}",
                m.counter("net.pool.reuses"),
                m.counter("net.pool.reconnects")
            )
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>9} {:>7} {:>13} {:>13} {:>11}",
            t.name,
            rate,
            requests,
            t.trace_lines,
            latency_cell(&m, "net.serving.put_s"),
            latency_cell(&m, "net.serving.get_s"),
            pool,
        );
        if !snap.status.is_empty() {
            t.status = snap.status.clone();
        }
        if !t.status.is_empty() {
            statuses.push((t.name.clone(), t.status.clone()));
        }
        if m.counter("net.rebuild.shards_moved") > 0 {
            let _ = writeln!(
                out,
                "{:<14} rebuild: {} shard(s) / {} B moved, {} interrupted",
                "",
                m.counter("net.rebuild.shards_moved"),
                m.counter("net.rebuild.bytes_moved"),
                m.counter("net.rebuild.interrupted"),
            );
        }
    }
    for (name, status) in statuses {
        let _ = writeln!(out, "\ncluster health (via {name}):");
        let _ = writeln!(
            out,
            "  {:<6} {:<12} {:<12} {:>9} {:>10}",
            "brick", "health", "label", "snap seq", "snap age"
        );
        for line in status.lines().filter(|l| !l.trim().is_empty()) {
            let Ok(doc) = Json::parse(line) else { continue };
            if doc.get("kind").and_then(Json::as_str) != Some("brick_status") {
                continue;
            }
            let num = |key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
            let text = |key: &str| {
                doc.get(key)
                    .and_then(Json::as_str)
                    .unwrap_or("-")
                    .to_string()
            };
            let _ = writeln!(
                out,
                "  {:<6} {:<12} {:<12} {:>9} {:>9.1}s",
                num("brick") as u64,
                text("health"),
                text("label"),
                num("snap_seq") as u64,
                num("snap_age_s"),
            );
        }
    }
    out
}

/// `nsr top --bricks a:p,b:p,... [--gateway addr] [--interval-ms M]
/// [--iterations N] [--plain]`: polls every target over the scrape path
/// and renders a live per-process dashboard. `--iterations 0` (the
/// default) runs until killed; `--plain` skips the ANSI screen clear so
/// frames append (for logs, pipes, and tests). Frames print as they
/// render; the returned summary is one line.
pub fn top(args: &ParsedArgs) -> Result<String> {
    let mut targets: Vec<Target> = Vec::new();
    let parse_addr = |s: &str| {
        s.parse::<SocketAddr>()
            .map_err(|_| CliError(format!("bad scrape address '{s}'")))
    };
    if let Some(list) = args.get::<String>("bricks")? {
        for (i, raw) in list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .enumerate()
        {
            targets.push(Target {
                addr: parse_addr(raw)?,
                name: format!("brick#{i}"),
                cursor: 0,
                trace_lines: 0,
                prev: None,
                status: String::new(),
            });
        }
    }
    if let Some(addr) = args.get::<String>("gateway")? {
        targets.push(Target {
            addr: parse_addr(&addr)?,
            name: "gateway".to_string(),
            cursor: 0,
            trace_lines: 0,
            prev: None,
            status: String::new(),
        });
    }
    if targets.is_empty() {
        return Err(CliError(
            "nsr top needs at least one target: --bricks a:p,... and/or --gateway a:p".into(),
        ));
    }
    let interval = Duration::from_millis(args.get_or("interval-ms", 1000u64)?);
    let iterations = args.get_or("iterations", 0u64)?;
    let plain = args.has_flag("plain");
    let timeout = Duration::from_millis(args.get_or("timeout-ms", 500u64)?);

    let mut tick = 0u64;
    loop {
        tick += 1;
        let frame = render_tick(&mut targets, timeout);
        if plain {
            println!("--- tick {tick} ---");
            print!("{frame}");
        } else {
            // Clear screen + home, then the frame.
            print!("\x1b[2J\x1b[H{frame}");
        }
        std::io::stdout().flush().ok();
        if iterations > 0 && tick >= iterations {
            return Ok(format!(
                "top: {tick} frame(s) over {} target(s)\n",
                targets.len()
            ));
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_metrics_reads_counters_and_histograms() {
        let text = concat!(
            r#"{"schema":"nsr-obs/v1","kind":"meta","source":"x"}"#,
            "\n",
            r#"{"schema":"nsr-obs/v1","kind":"counter","name":"net.brick.requests","value":7}"#,
            "\n",
            r#"{"schema":"nsr-obs/v1","kind":"histogram","name":"net.serving.put_s","count":3,"#,
            r#""sum":2.5,"min":0.5,"max":1.5,"overflow":1,"#,
            r#""buckets":[{"le":1,"count":1},{"le":2,"count":1}]}"#,
            "\n",
        );
        let m = parse_metrics(text);
        assert_eq!(m.counter("net.brick.requests"), 7);
        assert_eq!(m.requests(), 7);
        let h = &m.histograms["net.serving.put_s"];
        assert_eq!(h.count, 3);
        assert_eq!(h.percentile(0.5), Some(2.0));
    }

    #[test]
    fn latency_cell_handles_missing_and_empty() {
        let m = parse_metrics("");
        assert_eq!(latency_cell(&m, "net.serving.put_s"), "-");
    }
}
