//! `nsr report` artifact mode: render observability and benchmark
//! artifacts (an `nsr-obs` metrics snapshot, a span/event trace, a
//! directory of `BENCH_*.json` reports) into one markdown post-mortem.
//!
//! The legacy zero-argument form — the paper-reproduction report — lives
//! in [`crate::commands`]; this module handles the
//! `--metrics`/`--trace`/`--bench-dir` form, plus `--check`, which
//! validates the artifacts (schema, span-link resolution, bench report
//! shape) without rendering.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::path::Path;

use nsr_obs::Json;

use crate::args::ParsedArgs;
use crate::{CliError, Result};

/// True when any artifact-mode option is present (the dispatcher uses
/// this to pick between the legacy reproduction report and this mode).
///
/// # Errors
///
/// Returns a [`CliError`] for malformed option values.
pub fn wants_artifact_mode(args: &ParsedArgs) -> Result<bool> {
    Ok(args.get::<String>("metrics")?.is_some()
        || args.get::<String>("trace")?.is_some()
        || args.get::<String>("bench-dir")?.is_some()
        || args.get::<String>("cluster")?.is_some())
}

/// Implements `nsr report --metrics F --trace F --bench-dir D [--check]`.
///
/// # Errors
///
/// Returns a [`CliError`] when an artifact is unreadable or fails
/// validation.
pub fn artifact_report(args: &ParsedArgs) -> Result<String> {
    let metrics_path = args.get::<String>("metrics")?;
    let trace_path = args.get::<String>("trace")?;
    let bench_dir = args.get::<String>("bench-dir")?;
    let baseline_dir = args.get::<String>("bench-baseline")?;
    let cluster_dir = args.get::<String>("cluster")?;
    let check_only = args.has_flag("check");

    let mut md = String::new();
    let mut checks = String::new();
    let _ = writeln!(md, "# Flight-recorder report\n");

    if let Some(path) = &metrics_path {
        let text = read(path)?;
        let records =
            nsr_obs::validate_jsonl(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
        let _ = writeln!(checks, "{path}: OK ({records} metric records)");
        if !check_only {
            render_metrics(&mut md, &text);
        }
    }

    if let Some(path) = &trace_path {
        let text = read(path)?;
        let records =
            nsr_obs::validate_jsonl(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
        nsr_obs::validate_span_links(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
        let _ = writeln!(
            checks,
            "{path}: OK ({records} trace records, span links resolve)"
        );
        if !check_only {
            render_trace(&mut md, &text);
        }
    }

    if let Some(dir) = &cluster_dir {
        let parts = cluster_parts(dir)?;
        let refs: Vec<&str> = parts.iter().map(|(_, p)| p.as_str()).collect();
        nsr_obs::validate_cluster_links(&refs)
            .map_err(|e| CliError(format!("{dir}: cross-process span links: {e}")))?;
        let canonical =
            nsr_obs::canonical_cluster_jsonl(&refs).map_err(|e| CliError(format!("{dir}: {e}")))?;
        let _ = writeln!(
            checks,
            "{dir}: OK ({} process parts, {} canonical records, cross-process links resolve)",
            parts.len(),
            canonical.lines().count()
        );
        if !check_only {
            render_cluster(&mut md, &parts, &canonical);
        }
    }

    if let Some(dir) = &bench_dir {
        let reports = bench_reports(dir)?;
        if reports.is_empty() {
            return Err(CliError(format!("{dir}: no BENCH_*.json reports found")));
        }
        for (name, doc) in &reports {
            nsr_bench::suites::validate_report(doc)
                .map_err(|e| CliError(format!("{dir}/{name}: {e}")))?;
            let _ = writeln!(checks, "{dir}/{name}: OK (valid nsr-bench/v1)");
        }
        if !check_only {
            let baseline = match &baseline_dir {
                Some(b) => bench_reports(b)?,
                None => Vec::new(),
            };
            render_bench(&mut md, &reports, &baseline);
        }
    }

    if checks.is_empty() {
        return Err(CliError(
            "report artifact mode needs at least one of --metrics, --trace, --bench-dir, --cluster"
                .into(),
        ));
    }
    if check_only {
        return Ok(checks);
    }
    if let Some(path) = args.get::<String>("out")? {
        std::fs::write(&path, &md)?;
        Ok(format!("wrote {path}\n"))
    } else {
        Ok(md)
    }
}

fn read(path: &str) -> Result<String> {
    std::fs::read_to_string(path).map_err(|e| CliError(format!("reading {path}: {e}")))
}

/// Parses every non-empty line of a validated JSONL text.
fn lines(text: &str) -> Vec<Json> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).expect("validated upstream"))
        .collect()
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    doc.get(key).and_then(Json::as_str)
}

fn num_field(doc: &Json, key: &str) -> Option<f64> {
    doc.get(key).and_then(Json::as_f64)
}

fn render_metrics(md: &mut String, text: &str) {
    let docs = lines(text);
    let mut counters: Vec<(String, f64)> = Vec::new();
    let mut gauges: Vec<(String, Option<f64>)> = Vec::new();
    let _ = writeln!(md, "## Counters and gauges\n");
    for doc in &docs {
        let name = str_field(doc, "name").unwrap_or("?").to_string();
        match str_field(doc, "kind") {
            Some("counter") => counters.push((name, num_field(doc, "value").unwrap_or(0.0))),
            Some("gauge") => gauges.push((name, num_field(doc, "value"))),
            _ => {}
        }
    }
    let _ = writeln!(md, "| metric | kind | value |");
    let _ = writeln!(md, "|---|---|---|");
    for (name, v) in &counters {
        let _ = writeln!(md, "| {name} | counter | {v} |");
    }
    for (name, v) in &gauges {
        match v {
            Some(v) => {
                let _ = writeln!(md, "| {name} | gauge | {v:.4} |");
            }
            None => {
                let _ = writeln!(md, "| {name} | gauge | — |");
            }
        }
    }

    let _ = writeln!(md, "\n## Histograms\n");
    let _ = writeln!(md, "| histogram | count | p50 | p95 | p99 | max |");
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for doc in &docs {
        if str_field(doc, "kind") != Some("histogram") {
            continue;
        }
        let name = str_field(doc, "name").unwrap_or("?");
        let count = num_field(doc, "count").unwrap_or(0.0);
        let overflow = num_field(doc, "overflow").unwrap_or(0.0) as u64;
        let max = num_field(doc, "max");
        let entries: Vec<(f64, u64)> = doc
            .get("buckets")
            .and_then(Json::as_arr)
            .map(|bs| {
                bs.iter()
                    .filter_map(|b| {
                        let le = num_field(b, "le")?;
                        let n = num_field(b, "count")? as u64;
                        (n > 0).then_some((le, n))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let pct = |q: f64| -> String {
            nsr_obs::percentile_from_buckets(
                &entries,
                overflow,
                max.unwrap_or(f64::NEG_INFINITY),
                q,
            )
            .map_or_else(|| "—".to_string(), |v| format!("{v:.3e}"))
        };
        let max_s = max.map_or_else(|| "—".to_string(), |v| format!("{v:.3e}"));
        let _ = writeln!(
            md,
            "| {name} | {count} | {} | {} | {} | {max_s} |",
            pct(0.50),
            pct(0.95),
            pct(0.99)
        );
    }
}

/// One aggregated row of the span tree: spans sharing a causal
/// name-path.
#[derive(Default)]
struct PathAgg {
    count: u64,
    total_s: f64,
    self_s: f64,
}

fn render_trace(md: &mut String, text: &str) {
    let docs = lines(text);

    // First pass: name per span id, and per-parent child time.
    let mut names: HashMap<u64, String> = HashMap::new();
    let mut parents: HashMap<u64, u64> = HashMap::new();
    let mut child_time: HashMap<u64, f64> = HashMap::new();
    for doc in &docs {
        if str_field(doc, "kind") != Some("span") {
            continue;
        }
        let (Some(id), Some(name)) = (num_field(doc, "span_id"), str_field(doc, "name")) else {
            continue;
        };
        let id = id as u64;
        names.insert(id, name.to_string());
        if let Some(p) = num_field(doc, "parent_id") {
            parents.insert(id, p as u64);
            *child_time.entry(p as u64).or_default() += num_field(doc, "dur_s").unwrap_or(0.0);
        }
    }
    let path_of = |mut id: u64| -> String {
        let mut parts = Vec::new();
        loop {
            parts.push(names.get(&id).map_or("?", String::as_str));
            match parents.get(&id) {
                // Cycles cannot occur in a validated trace (children
                // always have larger ids), so this walk terminates.
                Some(p) => id = *p,
                None => break,
            }
        }
        parts.reverse();
        parts.join("/")
    };

    // Second pass: aggregate by path; tally events by name.
    let mut spans: BTreeMap<String, PathAgg> = BTreeMap::new();
    let mut events: BTreeMap<String, u64> = BTreeMap::new();
    for doc in &docs {
        match str_field(doc, "kind") {
            Some("span") => {
                let Some(id) = num_field(doc, "span_id") else {
                    continue;
                };
                let dur = num_field(doc, "dur_s").unwrap_or(0.0);
                let agg = spans.entry(path_of(id as u64)).or_default();
                agg.count += 1;
                agg.total_s += dur;
                agg.self_s += dur - child_time.get(&(id as u64)).copied().unwrap_or(0.0);
            }
            Some("event") => {
                *events
                    .entry(str_field(doc, "name").unwrap_or("?").to_string())
                    .or_default() += 1;
            }
            _ => {}
        }
    }

    let _ = writeln!(md, "\n## Span tree\n");
    let _ = writeln!(md, "| span | count | total (ms) | self (ms) |");
    let _ = writeln!(md, "|---|---|---|---|");
    for (path, agg) in &spans {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let _ = writeln!(
            md,
            "| {}{leaf} | {} | {:.3} | {:.3} |",
            "&nbsp;&nbsp;".repeat(depth),
            agg.count,
            1e3 * agg.total_s,
            1e3 * agg.self_s
        );
    }

    let _ = writeln!(md, "\n## Events\n");
    let _ = writeln!(md, "| event | count |");
    let _ = writeln!(md, "|---|---|");
    for (name, n) in &events {
        let _ = writeln!(md, "| {name} | {n} |");
    }
}

/// Per-process trace parts of a cluster directory: `(file name, JSONL)`
/// sorted by file name. Derived artifacts (`cluster.canonical.jsonl`,
/// `loss-*.jsonl`) are excluded — they are outputs of stitching, not
/// inputs.
fn cluster_parts(dir: &str) -> Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(Path::new(dir)).map_err(|e| CliError(format!("reading {dir}: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| CliError(format!("reading {dir}: {e}")))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".jsonl")
            || name == "cluster.canonical.jsonl"
            || name.starts_with("loss-")
        {
            continue;
        }
        out.push((name, read(&entry.path().to_string_lossy())?));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    if out.is_empty() {
        return Err(CliError(format!(
            "{dir}: no per-process .jsonl trace parts found (run `nsr cluster-inject --obs-dir {dir}`)"
        )));
    }
    Ok(out)
}

/// Renders the stitched cross-process tree: per-part record counts,
/// then the canonical span paths (each `proc:name` component names the
/// process that executed the span) aggregated by path, then events per
/// process. Canonical records carry no timings — those are wall-clock
/// and would break replay comparison — so the table is counts only.
fn render_cluster(md: &mut String, parts: &[(String, String)], canonical: &str) {
    let _ = writeln!(md, "\n## Cross-process causal tree\n");
    let _ = writeln!(md, "| process part | records |");
    let _ = writeln!(md, "|---|---|");
    for (name, text) in parts {
        let _ = writeln!(md, "| {name} | {} |", lines(text).len());
    }

    let docs = lines(canonical);
    let mut spans: BTreeMap<String, u64> = BTreeMap::new();
    let mut events: BTreeMap<String, u64> = BTreeMap::new();
    for doc in &docs {
        match str_field(doc, "kind") {
            Some("span") => {
                if let Some(path) = str_field(doc, "span_id") {
                    *spans.entry(path.to_string()).or_default() += 1;
                }
            }
            Some("event") => {
                let proc = str_field(doc, "proc").unwrap_or("?");
                let name = str_field(doc, "name").unwrap_or("?");
                *events.entry(format!("{proc}:{name}")).or_default() += 1;
            }
            _ => {}
        }
    }

    let _ = writeln!(md, "\n### Merged span tree\n");
    let _ = writeln!(md, "| span (process:name) | count |");
    let _ = writeln!(md, "|---|---|");
    for (path, n) in &spans {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let _ = writeln!(md, "| {}{leaf} | {n} |", "&nbsp;&nbsp;".repeat(depth));
    }

    let _ = writeln!(md, "\n### Events by process\n");
    let _ = writeln!(md, "| event | count |");
    let _ = writeln!(md, "|---|---|");
    for (name, n) in &events {
        let _ = writeln!(md, "| {name} | {n} |");
    }
}

type BenchDocs = Vec<(String, nsr_bench::json::Json)>;

/// Reads every `BENCH_*.json` in `dir`, sorted by file name.
fn bench_reports(dir: &str) -> Result<BenchDocs> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(Path::new(dir)).map_err(|e| CliError(format!("reading {dir}: {e}")))?;
    for entry in entries {
        let entry = entry.map_err(|e| CliError(format!("reading {dir}: {e}")))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = read(&entry.path().to_string_lossy())?;
        let doc = nsr_bench::json::Json::parse(&text)
            .map_err(|e| CliError(format!("{dir}/{name}: {e}")))?;
        out.push((name, doc));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn render_bench(md: &mut String, reports: &BenchDocs, baseline: &BenchDocs) {
    use nsr_bench::json::Json as BJson;
    let _ = writeln!(md, "\n## Benchmarks\n");
    for (file, doc) in reports {
        let suite = doc.get("suite").and_then(BJson::as_str).unwrap_or("?");
        let mode = doc.get("mode").and_then(BJson::as_str).unwrap_or("?");
        let _ = writeln!(md, "### {suite} ({mode}, {file})\n");
        let old: HashMap<String, f64> = baseline
            .iter()
            .find(|(f, _)| f == file)
            .and_then(|(_, b)| b.get("results").and_then(BJson::as_arr))
            .map(|rs| {
                rs.iter()
                    .filter_map(|r| {
                        Some((
                            r.get("name")?.as_str()?.to_string(),
                            r.get("ns_per_iter")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let delta_col = !old.is_empty();
        if delta_col {
            let _ = writeln!(md, "| case | ns/iter | MiB/s | vs baseline |");
            let _ = writeln!(md, "|---|---|---|---|");
        } else {
            let _ = writeln!(md, "| case | ns/iter | MiB/s |");
            let _ = writeln!(md, "|---|---|---|");
        }
        let results = doc.get("results").and_then(BJson::as_arr);
        for r in results.into_iter().flatten() {
            let name = r.get("name").and_then(BJson::as_str).unwrap_or("?");
            let ns = r.get("ns_per_iter").and_then(BJson::as_f64).unwrap_or(0.0);
            let mib = r
                .get("mib_per_s")
                .and_then(BJson::as_f64)
                .map_or_else(|| "—".to_string(), |v| format!("{v:.0}"));
            if delta_col {
                let delta = old.get(name).map_or_else(
                    || "new".to_string(),
                    |o| format!("{:+.1}%", 100.0 * (ns - o) / o),
                );
                let _ = writeln!(md, "| {name} | {ns:.1} | {mib} | {delta} |");
            } else {
                let _ = writeln!(md, "| {name} | {ns:.1} | {mib} |");
            }
        }
        let _ = writeln!(md);
    }
}
