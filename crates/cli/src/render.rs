//! Plain-text table and CSV rendering for sweeps and evaluations.

use nsr_core::sweep::Sweep;

/// Renders a [`Sweep`] as a CSV document: one row per x value, one column
/// per configuration (events per PB-year; empty cell = infeasible).
pub fn sweep_csv(sweep: &Sweep) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} ({})", sweep.x_name, sweep.x_unit));
    for c in sweep.configs() {
        out.push(',');
        // Configuration names contain commas ("FT 2, Internal RAID 5"):
        // quote them per RFC 4180.
        out.push_str(&format!("\"{c}\""));
    }
    out.push('\n');
    for row in &sweep.rows {
        out.push_str(&trim_float(row.x));
        for cell in &row.cells {
            out.push(',');
            if let Some(r) = cell.reliability {
                out.push_str(&format!("{:.6e}", r.events_per_pb_year));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a [`Sweep`] as an aligned text table for the terminal.
pub fn sweep_table(sweep: &Sweep) -> String {
    let configs = sweep.configs();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24}",
        format!("{} ({})", sweep.x_name, sweep.x_unit)
    ));
    for c in &configs {
        out.push_str(&format!("{:>28}", format!("{c}")));
    }
    out.push('\n');
    out.push_str(&"-".repeat(24 + 28 * configs.len()));
    out.push('\n');
    for row in &sweep.rows {
        out.push_str(&format!("{:<24}", trim_float(row.x)));
        for cell in &row.cells {
            match cell.reliability {
                Some(r) => {
                    out.push_str(&format!("{:>28}", format!("{:.4e}", r.events_per_pb_year)))
                }
                None => out.push_str(&format!("{:>28}", "infeasible")),
            }
        }
        out.push('\n');
    }
    out
}

/// Formats a float without trailing `.0` noise for integral values.
pub fn trim_float(x: f64) -> String {
    if x != 0.0 && x.abs() < 1e-3 {
        format!("{x:.1e}")
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsr_core::params::Params;
    use nsr_core::sweep::fig17_link_speed;

    #[test]
    fn csv_shape() {
        let s = fig17_link_speed(&Params::baseline()).unwrap();
        let csv = sweep_csv(&s);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + s.rows.len());
        assert!(lines[0].starts_with("link speed (Gb/s)"));
        // Config names are quoted; unquoted comma counts match per line.
        assert!(lines[0].contains("\"FT 2, Internal RAID 5\""));
        let data_commas = lines[1].matches(',').count();
        assert!(lines[1..]
            .iter()
            .all(|l| l.matches(',').count() == data_commas));
        assert_eq!(data_commas, 3); // x + three configurations
    }

    #[test]
    fn table_mentions_infeasible() {
        use nsr_core::config::Configuration;
        use nsr_core::raid::InternalRaid;
        use nsr_core::sweep::sweep;
        let s = sweep(
            &Params::baseline(),
            &[Configuration::new(InternalRaid::None, 3).unwrap()],
            "redundancy set size",
            "nodes",
            &[2.0, 8.0],
            |p, x| p.system.redundancy_set_size = x as u32,
        )
        .unwrap();
        let table = sweep_table(&s);
        assert!(table.contains("infeasible"));
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(64.0), "64");
        assert_eq!(trim_float(0.75), "0.75");
    }
}
