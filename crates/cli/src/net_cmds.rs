//! The networked-brick-store subcommands: `nsr brick` (a storage
//! daemon), `nsr gateway` (a striping gateway with live failure
//! detection and auto-repair), and `nsr cluster-inject` (the kill-9
//! fault campaign over real child processes).
//!
//! `brick` and `gateway` are long-running daemons, so unlike the
//! analytic commands they print progress to stdout as they go instead
//! of returning one final string.

use std::fmt::Write as _;
use std::io::Write as _;
use std::net::SocketAddr;
use std::time::Duration;

use nsr_net::brick::{BrickConfig, BrickServer};
use nsr_net::cluster::{run_campaign, ClusterConfig};
use nsr_net::detector::Health;
use nsr_net::gateway::{Gateway, GatewayConfig};

use crate::args::ParsedArgs;
use crate::{CliError, Result};

impl From<nsr_net::Error> for CliError {
    fn from(e: nsr_net::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Enables the observability layers for a long-running daemon and names
/// the process for cross-process trace stitching. Unlike the analytic
/// commands (which write artifacts on exit), daemons are harvested live
/// over the scrape path, so both layers stay on until the process dies.
fn enable_daemon_obs(label: &str) {
    nsr_obs::reset_metrics();
    let _ = nsr_obs::trace::drain();
    nsr_obs::set_metrics_enabled(true);
    nsr_obs::set_trace_enabled(true);
    nsr_net::obs::register();
    nsr_obs::set_trace_process(label);
}

/// `nsr brick --listen ADDR --id N [--obs] [--label L]`: binds,
/// announces `LISTENING <addr>` as the first stdout line (so a parent
/// that bound port 0 can learn the real port), then serves until a
/// shutdown frame or a kill. With `--obs` the brick records metrics and
/// spans under the process label `L` (default `brick-<id>`), all
/// harvestable over the wire via `Frame::Scrape`.
pub fn brick(args: &ParsedArgs) -> Result<String> {
    let listen = args.get_or("listen", String::from("127.0.0.1:0"))?;
    let id = args.get_or("id", 0u32)?;
    if args.has_flag("obs") {
        let label = args.get_or("label", format!("brick-{id}"))?;
        enable_daemon_obs(&label);
    }
    let server = BrickServer::bind(listen.as_str(), BrickConfig::new(id))?;
    // The announce line must reach the parent before the accept loop
    // blocks, so it is printed and flushed here, not returned.
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().ok();
    server.run()?;
    Ok(format!("brick {id} shut down\n"))
}

fn parse_brick_list(args: &ParsedArgs) -> Result<Vec<SocketAddr>> {
    let list = args
        .get::<String>("bricks")?
        .ok_or_else(|| CliError("--bricks a:port,b:port,... is required".into()))?;
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<SocketAddr>()
                .map_err(|_| CliError(format!("bad brick address '{s}'")))
        })
        .collect()
}

/// Serves `Frame::Scrape` requests about the *gateway* process: its own
/// metrics snapshot and trace delta, plus the cluster-status blob the
/// collector assembles from per-brick scrapes. One thread per
/// connection; anything other than a scrape gets a `BAD_REQUEST` reply.
fn serve_gateway_telemetry(
    listener: std::net::TcpListener,
    gw: std::sync::Arc<Gateway>,
    snap_seq: std::sync::Arc<std::sync::atomic::AtomicU64>,
) {
    use nsr_net::wire::{read_frame, reply_code, Frame};
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let gw = std::sync::Arc::clone(&gw);
        let snap_seq = std::sync::Arc::clone(&snap_seq);
        std::thread::spawn(move || {
            let mut reader = std::io::BufReader::new(&stream);
            loop {
                let frame = match read_frame(&mut reader) {
                    Ok(Some(f)) => f,
                    Ok(None) | Err(_) => return,
                };
                let reply = match frame {
                    Frame::Scrape { cursor, max_lines } => {
                        nsr_net::obs::SCRAPE_REQUESTS.inc();
                        let seq = snap_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                        let (label, proc_id) = nsr_obs::trace_process().unwrap_or_else(|| {
                            ("gateway".into(), nsr_obs::process_id_for("gateway"))
                        });
                        let (next_cursor, lines) = nsr_obs::trace_delta(cursor, max_lines as usize);
                        nsr_net::obs::SCRAPE_LINES.add(lines.len() as u64);
                        let mut trace = String::new();
                        for line in &lines {
                            trace.push_str(line);
                            trace.push('\n');
                        }
                        Frame::ScrapeReply {
                            proc_id,
                            snap_seq: seq,
                            next_cursor,
                            metrics: nsr_obs::metrics_jsonl(&label).into_bytes(),
                            label,
                            trace: trace.into_bytes(),
                            status: gw.telemetry_status().into_bytes(),
                        }
                    }
                    _ => Frame::ErrorReply {
                        code: reply_code::BAD_REQUEST,
                        detail: "telemetry port serves scrapes only".into(),
                    },
                };
                if (&stream).write_all(&reply.encode()).is_err() {
                    return;
                }
            }
        });
    }
}

/// `nsr gateway --bricks a,b,c [--data K --parity T] [--rounds N]
/// [--telemetry ADDR]`: connects to running bricks, writes a few demo
/// objects, then watches — each round pumps heartbeats, prints health
/// transitions, auto-repairs after deaths, and proves the data is still
/// readable. `--rounds 0` (the default) runs until killed; the README
/// quickstart drives this against two bricks and a kill -9.
///
/// `--telemetry ADDR` turns the gateway into a scrapeable process: it
/// enables metrics + tracing under the label `gateway`, binds a
/// listener that answers `Frame::Scrape` (announced as
/// `TELEMETRY <addr>` on stdout), and runs the collector each round so
/// per-brick snapshots merge into the labeled cluster registry that
/// `nsr top` reads.
pub fn gateway(args: &ParsedArgs) -> Result<String> {
    let addrs = parse_brick_list(args)?;
    let data = args.get_or("data", 2usize)?;
    let parity = args.get_or("parity", 1usize)?;
    let rounds = args.get_or("rounds", 0u64)?;
    let demo_objects = args.get_or("objects", 4u64)?;
    let telemetry = args.get::<String>("telemetry")?;
    if telemetry.is_some() {
        enable_daemon_obs("gateway");
    }
    let gw = std::sync::Arc::new(Gateway::connect(addrs, GatewayConfig::new(data, parity))?);
    if let Some(addr) = &telemetry {
        let listener = std::net::TcpListener::bind(addr.as_str())
            .map_err(|e| CliError(format!("binding telemetry listener on {addr}: {e}")))?;
        println!(
            "TELEMETRY {}",
            listener
                .local_addr()
                .map_err(|e| CliError(format!("telemetry local_addr: {e}")))?
        );
        // Detached on purpose: with --rounds N the serving loop returns
        // while scrape connections may still be open; the thread dies
        // with the process.
        let gw = std::sync::Arc::clone(&gw);
        let snap_seq = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::spawn(move || serve_gateway_telemetry(listener, gw, snap_seq));
    }
    println!(
        "gateway up: {} bricks, geometry {data}+{parity} (tolerates {parity} failure(s))",
        gw.brick_count()
    );
    for _ in 0..8 {
        gw.pump_heartbeats();
        std::thread::sleep(Duration::from_millis(100));
    }
    for id in 0..demo_objects {
        let payload: Vec<u8> = (0..1024u64)
            .map(|i| ((i * 31 + id * 7) % 251) as u8)
            .collect();
        gw.put(id, &payload)?;
        println!("put obj{id} ({} bytes)", payload.len());
    }
    std::io::stdout().flush().ok();

    let mut round = 0u64;
    loop {
        round += 1;
        if telemetry.is_some() {
            // Collector pass: fold every brick's metrics snapshot and
            // trace delta into the labeled cluster registry.
            gw.collect_scrapes(4096);
        }
        for tr in gw.pump_heartbeats() {
            let lat = tr
                .detection_latency_s
                .map(|s| format!(" ({:.0} ms after last beat)", s * 1e3))
                .unwrap_or_default();
            println!(
                "brick {} {} -> {}{lat}",
                tr.brick,
                tr.from.name(),
                tr.to.name()
            );
        }
        let failed: Vec<u32> = gw
            .health_summary()
            .into_iter()
            .filter(|&(_, h)| matches!(h, Health::Dead | Health::Rebuilding))
            .map(|(id, _)| id)
            .collect();
        if !failed.is_empty() {
            match gw.repair_all() {
                Ok(report) if report.shards_moved > 0 => {
                    println!(
                        "repair: moved {} shard(s), {} B, {} object(s) back to full redundancy",
                        report.shards_moved, report.bytes_moved, report.objects_repaired
                    );
                }
                Ok(report) => {
                    if !report.lost_objects.is_empty() {
                        println!("repair: objects {:?} beyond repair", report.lost_objects);
                    }
                }
                Err(e) => println!("repair deferred: {e}"),
            }
        }
        for rejoined in gw.adopt_rejoined() {
            println!("brick {rejoined} rejoined as a spare");
        }
        if round.is_multiple_of(10) {
            let mut readable = 0usize;
            let ids = gw.object_ids();
            let total = ids.len();
            for id in ids {
                if gw.get(id).is_ok() {
                    readable += 1;
                }
            }
            let health: Vec<String> = gw
                .health_summary()
                .into_iter()
                .map(|(id, h)| format!("{id}:{}", h.name()))
                .collect();
            println!(
                "status: {readable}/{total} objects readable; {}",
                health.join(" ")
            );
        }
        std::io::stdout().flush().ok();
        if rounds > 0 && round >= rounds {
            return Ok(format!("gateway exiting after {round} round(s)\n"));
        }
        std::thread::sleep(Duration::from_millis(500));
    }
}

/// `nsr workload [--objects N --object-bytes B --ops N --read-pct P
/// --dist zipfian|uniform --theta F --seed S --bricks N --data K
/// --parity T]`: a YCSB-style serving benchmark over an in-process
/// loopback cluster. Spawns the bricks, populates the working set, then
/// replays the same seeded op stream through three cluster states —
/// healthy, degraded (one brick killed and declared dead), and
/// rebuilding (repair running concurrently with serving) — and reports
/// per-phase throughput plus p50/p95/p99 op latencies. The op streams
/// are a pure function of `(seed, phase)`, so two runs with the same
/// arguments issue identical key/op sequences.
pub fn workload(args: &ParsedArgs) -> Result<String> {
    use nsr_net::client::BrickClient;
    use nsr_net::detector::{DetectorConfig, Health};
    use nsr_net::gateway::RetryPolicy;
    use nsr_net::workload::{populate, run_phase, KeyDist, PhaseStats, WorkloadSpec};

    let spec = WorkloadSpec {
        objects: args.get_or("objects", 64u64)?,
        object_bytes: args.get_or("object-bytes", 64 * 1024usize)?,
        ops: args.get_or("ops", 400usize)?,
        read_pct: args.get_or("read-pct", 95u32)?,
        dist: match args.get_or("dist", String::from("zipfian"))?.as_str() {
            "zipfian" => KeyDist::Zipfian {
                theta: args.get_or("theta", 0.99f64)?,
            },
            "uniform" => KeyDist::Uniform,
            other => {
                return Err(CliError(format!(
                    "unknown --dist '{other}' (expected zipfian or uniform)"
                )))
            }
        },
        seed: args.get_or("seed", 42u64)?,
    };
    let brick_count = args.get_or("bricks", 4usize)?;
    let data_shards = args.get_or("data", 2usize)?;
    let parity_shards = args.get_or("parity", 1usize)?;
    if brick_count <= data_shards + parity_shards {
        return Err(CliError(format!(
            "need more than {} bricks for a {data_shards}+{parity_shards} stripe \
             to survive the degraded phase",
            data_shards + parity_shards
        )));
    }

    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for id in 0..brick_count as u32 {
        let (addr, handle) = BrickServer::bind("127.0.0.1:0", BrickConfig::new(id))?.spawn();
        addrs.push(addr);
        handles.push(Some(handle));
    }
    let mut cfg = GatewayConfig::new(data_shards, parity_shards);
    cfg.timeout = Duration::from_millis(250);
    cfg.retry = RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
    };
    cfg.detector = DetectorConfig {
        suspect_phi: 1.0,
        dead_phi: 3.0,
        initial_interval_s: 0.02,
        interval_alpha: 0.2,
    };
    cfg.jitter_seed = spec.seed;
    let gw = Gateway::connect(addrs.clone(), cfg)?;
    for _ in 0..8 {
        gw.pump_heartbeats();
        std::thread::sleep(Duration::from_millis(20));
    }
    populate(&gw, &spec)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "workload: {} objects x {} B, {} ops/phase, {}% reads, {} dist, seed {}",
        spec.objects,
        spec.object_bytes,
        spec.ops,
        spec.read_pct,
        match spec.dist {
            KeyDist::Zipfian { theta } => format!("zipfian(theta={theta})"),
            KeyDist::Uniform => "uniform".to_string(),
        },
        spec.seed
    );
    let _ = writeln!(
        out,
        "cluster: {brick_count} bricks, geometry {data_shards}+{parity_shards}"
    );

    let phase_line = |out: &mut String, name: &str, s: &PhaseStats| {
        let us = |v: f64| v * 1e6;
        let _ = writeln!(
            out,
            "{name:<11} {:>8.1} MiB/s {:>8.0} ops/s  {} get / {} put / {} degraded  \
             get p50={:.1}us p95={:.1}us p99={:.1}us  put p50={:.1}us p99={:.1}us",
            s.mib_per_sec(),
            s.ops_per_sec(),
            s.gets,
            s.puts,
            s.degraded_gets,
            us(s.get_percentile_s(0.50)),
            us(s.get_percentile_s(0.95)),
            us(s.get_percentile_s(0.99)),
            us(s.put_percentile_s(0.50)),
            us(s.put_percentile_s(0.99)),
        );
    };

    let healthy = run_phase(&gw, &spec, 0)?;
    phase_line(&mut out, "healthy", &healthy);

    // Degraded phase: kill brick 1 (a data-shard holder for most
    // layouts) and wait for the detector to declare it dead, so reads
    // over its shards reconstruct.
    let victim = 1u32;
    let mut c = BrickClient::connect(addrs[victim as usize], Duration::from_millis(250))?;
    c.shutdown()?;
    if let Some(h) = handles[victim as usize].take() {
        let _ = h.join();
    }
    let mut dead = false;
    for _ in 0..500 {
        dead = gw
            .pump_heartbeats()
            .iter()
            .any(|tr| tr.brick == victim && tr.to == Health::Dead);
        if dead {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if !dead {
        return Err(CliError(format!("brick {victim} never declared dead")));
    }
    let degraded = run_phase(&gw, &spec, 1)?;
    phase_line(&mut out, "degraded", &degraded);

    // Rebuilding phase: the repair pass runs concurrently with serving —
    // the serving numbers show what rebuild traffic costs the clients.
    let (rebuilding, repair) = std::thread::scope(|s| {
        let repair = s.spawn(|| gw.repair_all());
        let stats = run_phase(&gw, &spec, 2);
        (stats, repair.join())
    });
    let rebuilding = rebuilding?;
    phase_line(&mut out, "rebuilding", &rebuilding);
    match repair {
        Ok(Ok(report)) => {
            let _ = writeln!(
                out,
                "repair: moved {} shard(s), {} B, {} object(s) repaired",
                report.shards_moved, report.bytes_moved, report.objects_repaired
            );
        }
        Ok(Err(e)) => {
            let _ = writeln!(out, "repair deferred: {e}");
        }
        Err(_) => return Err(CliError("repair thread panicked".into())),
    }

    for (id, slot) in handles.iter_mut().enumerate() {
        if let Some(h) = slot.take() {
            if let Ok(mut c) = BrickClient::connect(addrs[id], Duration::from_millis(250)) {
                let _ = c.shutdown();
            }
            let _ = h.join();
        }
    }
    Ok(out)
}

/// `nsr cluster-inject --bricks N --plan NAME --seed S [--pool-size P]
/// [--workers W] [--obs-dir DIR] [--no-fault-writes]`: the live kill-9
/// campaign. Spawns `N` brick child processes (from this same binary),
/// loads objects, kill-9s victims on the plan's seeded schedule, waits
/// for detection, rebuilds onto spares, restarts the victims, and
/// verifies every object — zero loss at or below `t` concurrent
/// failures, typed loss above. The verdict lines are a pure function of
/// `(plan, seed, bricks, objects)`.
///
/// With `--obs-dir` the campaign runs fully traced: bricks spawn with
/// `--obs` and generational labels, victims are scraped right before
/// each kill, and the directory receives one JSONL part per process
/// (`gateway.jsonl`, `brick-N[.rG].jsonl`), the merged
/// `cluster.canonical.jsonl` causal tree, and a filtered
/// `loss-objN.jsonl` view per loss event. `--no-fault-writes` freezes
/// the object set before the first kill so the merged span tree is
/// byte-identical at any `--pool-size`/`--workers`.
pub fn cluster_inject(args: &ParsedArgs) -> Result<String> {
    let bricks = args.get_or("bricks", 6usize)?;
    let plan = args.get_or("plan", String::from("kill9-single"))?;
    let seed = args.get_or("seed", 42u64)?;
    let exe = std::env::current_exe()
        .map_err(|e| CliError(format!("cannot locate own binary to spawn bricks: {e}")))?;
    let mut cfg = ClusterConfig::new(bricks, &plan, seed, exe);
    cfg.objects = args.get_or("objects", cfg.objects)?;
    cfg.object_bytes = args.get_or("object-bytes", cfg.object_bytes)?;
    cfg.ms_per_hour = args.get_or("ms-per-hour", cfg.ms_per_hour)?;
    cfg.pool_size = args.get_or("pool-size", cfg.pool_size)?;
    cfg.workers = args.get_or("workers", cfg.workers)?;
    if args.has_flag("no-fault-writes") {
        cfg.fault_window_writes = false;
    }
    let obs_dir = args.get::<String>("obs-dir")?;
    if let Some(dir) = &obs_dir {
        std::fs::create_dir_all(dir)?;
        cfg.obs = true;
        enable_daemon_obs("gateway");
    }
    let campaign_result = run_campaign(&cfg);
    // The gateway's own part is rendered *here*, not inside the
    // campaign: the campaign span only closes when run_campaign
    // returns, and rendering earlier would leave dangling parent links.
    let gateway_part = obs_dir
        .as_ref()
        .map(|_| nsr_obs::trace_jsonl("cluster-inject"));
    if obs_dir.is_some() {
        nsr_obs::set_metrics_enabled(false);
        nsr_obs::set_trace_enabled(false);
    }
    let outcome = campaign_result?;
    let mut out = outcome.render();
    if let Some(dir) = &obs_dir {
        let gateway_part = gateway_part.expect("rendered above");
        out.push_str(&write_cluster_artifacts(
            dir,
            &gateway_part,
            &outcome.brick_parts,
            &outcome.verdict_lines,
        )?);
    }
    finish_cluster_output(&mut out, &outcome);
    Ok(out)
}

/// Appends the detection-latency summary to a campaign's rendered
/// output.
fn finish_cluster_output(out: &mut String, outcome: &nsr_net::cluster::CampaignOutcome) {
    if !outcome.detection_latencies_s.is_empty() {
        let mut lat = outcome.detection_latencies_s.clone();
        lat.sort_by(f64::total_cmp);
        let p = |q: f64| lat[((lat.len() - 1) as f64 * q).round() as usize] * 1e3;
        let _ = writeln!(
            out,
            "info detection latency p50={:.0}ms p99={:.0}ms",
            p(0.5),
            p(0.99)
        );
    }
}

/// Writes the per-process trace parts, the stitched canonical tree, and
/// the per-loss filtered views for a traced campaign. Returns the
/// `wrote …` summary lines for stdout.
fn write_cluster_artifacts(
    dir: &str,
    gateway_part: &str,
    brick_parts: &[(String, String)],
    verdict_lines: &[String],
) -> Result<String> {
    let dirp = std::path::Path::new(dir);
    std::fs::write(dirp.join("gateway.jsonl"), gateway_part)?;
    for (label, part) in brick_parts {
        std::fs::write(dirp.join(format!("{label}.jsonl")), part)?;
    }
    let mut parts: Vec<&str> = vec![gateway_part];
    parts.extend(brick_parts.iter().map(|(_, p)| p.as_str()));
    nsr_obs::validate_cluster_links(&parts)
        .map_err(|e| CliError(format!("cross-process span links: {e}")))?;
    let canonical = nsr_obs::canonical_cluster_jsonl(&parts)
        .map_err(|e| CliError(format!("stitching cluster trace: {e}")))?;
    std::fs::write(dirp.join("cluster.canonical.jsonl"), &canonical)?;
    let mut out = format!(
        "info wrote {dir}/cluster.canonical.jsonl ({} parts, {} records)\n",
        parts.len(),
        canonical.lines().count()
    );
    // One filtered causal view per loss event: canonical span paths
    // carry their full ancestry, so the per-object lines remain a
    // readable tree on their own.
    for line in verdict_lines {
        let Some(rest) = line.strip_prefix("loss obj=") else {
            continue;
        };
        let Some(id) = rest.split_whitespace().next() else {
            continue;
        };
        let needle = format!("\"object\":{id}");
        let view: String = canonical
            .lines()
            .filter(|l| l.contains(&needle))
            .map(|l| format!("{l}\n"))
            .collect();
        let path = dirp.join(format!("loss-obj{id}.jsonl"));
        std::fs::write(&path, view)?;
        let _ = writeln!(out, "info wrote {}", path.display());
    }
    Ok(out)
}
