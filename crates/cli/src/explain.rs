//! `nsr explain` — the analytic path's decision record.
//!
//! Where `nsr eval` prints the *results* for a configuration, `explain`
//! prints the *decisions* the pipeline made to get there: the exact
//! chain's size and density, which solver tier the structure selected
//! (and why), the conditioning of the matrix route, whether the GTH
//! fallback engaged, the rebuild-rate model's intermediates, and how far
//! the paper's closed form lands from the exact CTMC answer.

use std::fmt::Write as _;

use nsr_markov::{AbsorbingAnalysis, SolverTier};

use crate::args::{config_name, params_from, parse_config, ParsedArgs};
use crate::{CliError, Result};

/// Implements `nsr explain <config>` (the configuration may also be
/// passed as `--config`).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown configurations, infeasible
/// parameters, or chain-construction failures.
pub fn explain(args: &ParsedArgs) -> Result<String> {
    let name = match args.positionals.first() {
        Some(p) => p.clone(),
        None => args.get::<String>("config")?.ok_or_else(|| {
            CliError("explain needs a configuration: `nsr explain ft2-ir5`".into())
        })?,
    };
    let config = parse_config(&name)?;
    let params = params_from(args)?;
    let t = config.node_fault_tolerance();

    let mut span = nsr_obs::trace::Span::enter("cli.explain");
    span.field("config", || nsr_obs::Json::Str(config_name(config)));

    let eval = config.evaluate(&params)?;
    let (ctmc, root) = config.exact_chain(&params)?;
    let analysis = AbsorbingAnalysis::new(&ctmc).map_err(|e| CliError(e.to_string()))?;

    let m = analysis.transient_states().len();
    let absorbing = analysis.absorbing_states().len();
    // Transient-block density, computed the way the tier selector sees
    // it: stored transient→transient nonzeros over m².
    let transient: std::collections::HashSet<_> =
        analysis.transient_states().iter().copied().collect();
    let nnz = ctmc
        .transitions()
        .iter()
        .filter(|tr| transient.contains(&tr.from) && transient.contains(&tr.to))
        .count();
    let density = if m == 0 {
        0.0
    } else {
        nnz as f64 / (m * m) as f64
    };

    let tier = analysis.solver_tier();
    let tier_name = match tier {
        SolverTier::SparseGth => "sparse GTH",
        SolverTier::DenseGth => "dense GTH",
    };
    let tier_reason = match tier {
        SolverTier::SparseGth => format!(
            "{m} transient states >= {} and density {density:.3} <= {}",
            nsr_markov::SPARSE_MIN_STATES,
            nsr_markov::SPARSE_MAX_DENSITY
        ),
        SolverTier::DenseGth => format!(
            "{m} transient states < {} or density {density:.3} > {}",
            nsr_markov::SPARSE_MIN_STATES,
            nsr_markov::SPARSE_MAX_DENSITY
        ),
    };

    // Matrix-route diagnostics (forces the lazy dense route).
    let lu = analysis.lu_kind().unwrap_or("none (GTH fallback)");
    let fallback = analysis.uses_gth_fallback();
    let cond = analysis.condition_estimate();

    let rebuild = nsr_core::rebuild::RebuildModel::new(params)?;
    let disk_bw = rebuild.disk_rebuild_bandwidth();
    let net_bw = rebuild.network_rebuild_bandwidth();

    let closed = eval.closed_form.mttdl_hours;
    let exact = eval.exact.mttdl_hours;
    let delta_pct = 100.0 * (closed - exact) / exact;

    span.field("solver_tier", || nsr_obs::Json::Str(tier_name.to_string()));
    span.field("states", || nsr_obs::Json::Num(ctmc.len() as f64));
    span.field("density", || nsr_obs::Json::Num(density));
    span.field("delta_pct", || nsr_obs::Json::Num(delta_pct));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "decision record for {config} ({})",
        config_name(config)
    );
    let _ = writeln!(out, "\nexact chain:");
    let _ = writeln!(
        out,
        "  states:           {} ({m} transient, {absorbing} absorbing), root {}",
        ctmc.len(),
        ctmc.label(root)
    );
    let _ = writeln!(
        out,
        "  transient block:  {nnz} nonzeros, density {density:.3}"
    );
    let _ = writeln!(out, "  solver tier:      {tier_name} ({tier_reason})");
    let _ = writeln!(
        out,
        "  elimination fill: {} entries beyond structural nonzeros",
        analysis.elimination_fill()
    );
    let _ = writeln!(out, "  matrix route:     {lu}");
    if cond.is_finite() {
        let _ = writeln!(
            out,
            "  condition:        kappa_inf(R) ~ {cond:.3e} \
             (GTH quantities unaffected)"
        );
    } else {
        let _ = writeln!(
            out,
            "  condition:        infinite (R singular to working precision)"
        );
    }
    let _ = writeln!(
        out,
        "  GTH fallback:     {}",
        if fallback {
            "ENGAGED (LU factorization failed; all matrix queries answered by GTH)"
        } else {
            "not engaged"
        }
    );

    let _ = writeln!(out, "\nrebuild-rate model (t = {t}):");
    let _ = writeln!(
        out,
        "  disk bandwidth:    {:.1} MB/s per node (all drives, {:.0}% utilization)",
        disk_bw.0 / 1e6,
        100.0 * params.system.rebuild_bw_utilization
    );
    let _ = writeln!(
        out,
        "  network bandwidth: {:.1} MB/s per direction",
        net_bw.0 / 1e6
    );
    let _ = writeln!(
        out,
        "  node rebuild:      {:.2} h, {}-bound (mu_N = {:.3e}/h)",
        eval.node_rebuild.duration.0, eval.node_rebuild.bottleneck, eval.node_rebuild.rate.0
    );
    let _ = writeln!(
        out,
        "  drive repair:      {:.2} h, {}-bound (mu_d = {:.3e}/h)",
        eval.drive_repair.duration.0, eval.drive_repair.bottleneck, eval.drive_repair.rate.0
    );
    match rebuild.crossover_link_speed(t) {
        Ok(gbps) => {
            let _ = writeln!(
                out,
                "  crossover link:    {gbps:.2} Gb/s (network-bound below, disk-bound above)"
            );
        }
        Err(e) => {
            let _ = writeln!(out, "  crossover link:    n/a ({e})");
        }
    }

    let _ = writeln!(out, "\nreliability:");
    let _ = writeln!(out, "  closed form MTTDL: {closed:.6e} h");
    let _ = writeln!(out, "  exact CTMC MTTDL:  {exact:.6e} h");
    let _ = writeln!(out, "  closed-form error: {delta_pct:+.2}% vs exact");
    Ok(out)
}
