//! Library backing the `nsr` command-line tool.
//!
//! Everything the binary does — argument parsing, configuration naming,
//! parameter overrides, table and CSV rendering — lives here so it can be
//! unit-tested; `src/bin/nsr.rs` is a thin shim.
//!
//! # Command overview
//!
//! ```text
//! nsr baseline                 # Figure 13: all nine configurations
//! nsr eval --config ft2-ir5    # one configuration in detail
//! nsr sweep --figure 16        # one §7 sensitivity analysis (CSV)
//! nsr figures --out results/   # regenerate every figure as CSV
//! nsr sim  --config ft1-nir --samples 2000
//! nsr rare --config ft2-ir5 --cycles 50000
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod explain;
pub mod net_cmds;
pub mod render;
pub mod report;
pub mod top;

/// Exit-code-friendly error type: a message for stderr.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<nsr_core::Error> for CliError {
    fn from(e: nsr_core::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<nsr_sim::Error> for CliError {
    fn from(e: nsr_sim::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, CliError>;
