//! Implementations of the `nsr` subcommands. Each returns the text it
//! would print, so the whole surface is unit-testable.

use std::fmt::Write as _;

use nsr_core::metrics::TARGET_EVENTS_PER_PB_YEAR;
use nsr_core::params::Params;
use nsr_core::sweep::{fig13_baseline, Sweep};
use nsr_core::units::Hours;
use nsr_rng::rngs::StdRng;
use nsr_rng::SeedableRng;
use nsr_sim::faultinject::{Campaign, FaultPlan};
use nsr_sim::fleet::{FleetRareEstimate, FleetSim};
use nsr_sim::importance::{Options, RareEvent};
use nsr_sim::splitting::SplitOptions;
use nsr_sim::system::{LossCause, SystemSim};

use crate::args::{config_name, params_from, parse_config, ParsedArgs};
use crate::render::{sweep_csv, sweep_table};
use crate::{CliError, Result};

/// Usage text for `nsr help`.
pub const USAGE: &str = "\
nsr — reliability models for networked storage nodes (DSN 2006)

USAGE:
  nsr <command> [--option value]... [--flag]...

COMMANDS:
  baseline    Figure 13: all nine configurations at the baseline
  eval        evaluate one configuration (--config ft2-ir5)
  sweep       one sensitivity analysis (--figure 14..20; --csv for CSV;
              --workers N|auto to evaluate rows in parallel)
  figures     regenerate all figures as CSV files (--out DIR, --workers N|auto)
  sim         system-level Monte Carlo (--config, --samples, --seed)
  inject      fault-injection campaign (--plan NAME|list, --runs, --seed;
              --replay SEED prints one run's exact event trace)
  rare        rare-event (importance-sampling) MTTDL (--config, --cycles)
  fleet       fleet-scale discrete-event mission (--config, --bricks N,
              --years Y, --seed S, --workers N; deterministic at any
              worker count; --estimator direct|is|splitting|all adds
              rare-event MTTDL estimates cross-checked against the
              analytic value; --trace prints the canonical replay trace)
  mission     P(data loss within --years Y) for --config
  plan        feasible configurations for --target events/PB-year; or
              --grid for a Pareto frontier search over a configuration
              space (--grid-nodes, --grid-k, --grid-t, --grid-ir,
              --grid-spares, --grid-bw as comma lists; --mission-years Y,
              --workers N|auto, --csv, --explain for decision records,
              --exhaustive to skip dominance pruning)
  spares      fail-in-place spare-capacity provisioning analysis
  aging       non-Markovian (Weibull) lifetime ablation (--shape K)
  bench       performance harness → BENCH_<suite>.json (--suite NAME|all,
              --out-dir DIR, --smoke for the fast CI mode, --check to
              validate existing reports without re-running;
              --compare OLD.json NEW.json diffs two reports and fails on
              regressions past --threshold PCT, default 25;
              --only PREFIX restricts the diff to matching case names)
  chain       export a configuration's exact CTMC as Graphviz dot (--out F)
  report      one-shot markdown reproduction report (--out FILE); or render
              observability artifacts: --metrics F / --trace F (span tree
              with self/total times, histogram p50/p95/p99) and
              --bench-dir D [--bench-baseline D] (BENCH_*.json tables with
              deltas); --cluster DIR stitches per-process JSONL parts
              (from cluster-inject --obs-dir) into one cross-process
              causal tree; --check validates artifacts without rendering
  explain     analytic decision record for one configuration
              (nsr explain ft2-ir5): chain size/density, solver tier,
              conditioning, rebuild intermediates, closed-vs-exact delta
  obs-check   validate an nsr-obs JSON-lines file (--file F; checks v2
              span links resolve; --require pat1,pat2 demands records by
              name or kind:name, e.g. span:core.evaluate)
  brick       run one storage-brick daemon (--listen ADDR, --id N);
              announces `LISTENING <addr>` on stdout, serves until killed;
              --obs [--label L] records metrics + spans under process
              label L (default brick-<id>), harvestable over the wire
  gateway     striping gateway over running bricks (--bricks a:p,b:p,...,
              --data K, --parity T, --rounds N); watches health, prints
              transitions, auto-repairs after brick deaths; --telemetry
              ADDR serves scrapes about the gateway (announced as
              `TELEMETRY <addr>`) and collects per-brick snapshots
  top         live cluster dashboard over the scrape path (--bricks
              a:p,..., --gateway a:p, --interval-ms M, --iterations N,
              --plain); per-process ops/s, serving p50/p99, pool
              reuse/redial, detector health and snapshot staleness
  cluster-inject  live kill-9 campaign over real brick child processes
              (--bricks N, --plan kill9-single|kill9-burst, --seed S,
              --pool-size P, --workers W); verdict lines are
              deterministic for a (plan, seed, bricks); --obs-dir DIR
              runs it fully traced and writes per-process trace parts
              plus the stitched cluster.canonical.jsonl causal tree
              (--no-fault-writes freezes writes for byte-identical
              traces across pool/worker counts)
  workload    YCSB-style serving benchmark over an in-process cluster
              (--objects N, --object-bytes B, --ops N, --read-pct P,
              --dist zipfian|uniform, --theta F, --seed S); replays one
              seeded op stream through healthy -> degraded -> rebuilding
              phases and reports MiB/s plus p50/p95/p99 latencies
  help        this text

CONFIGS:  ft<k>-<nir|ir5|ir6>, e.g. ft1-nir, ft2-ir5, ft3-nir

PARAMETER OVERRIDES (all commands):
  --drive-mttf H  --node-mttf H  --nodes N  --rset R  --drives D
  --link-gbps G   --rebuild-kib K  --restripe-kib K
  --capacity-util F  --bw-util F  --her E  --drive-gb G  --half-duplex

OBSERVABILITY (all commands):
  --metrics-out FILE   write an nsr-obs/v1 metrics snapshot after the run
  --trace-out FILE     write the nsr-obs/v1 span/event trace after the run
";

/// Dispatches a parsed command line.
///
/// When `--metrics-out` / `--trace-out` is present, the corresponding
/// observability layer is enabled for the duration of the command and a
/// fresh `nsr-obs/v1` snapshot is written afterwards; both layers are
/// disabled again before returning, so observability stays strictly
/// per-invocation.
///
/// # Errors
///
/// Returns a [`CliError`] suitable for printing to stderr.
pub fn dispatch(args: &ParsedArgs) -> Result<String> {
    let metrics_out = args.get::<String>("metrics-out")?;
    let trace_out = args.get::<String>("trace-out")?;
    if metrics_out.is_none() && trace_out.is_none() {
        return dispatch_cmd(args);
    }

    // Start from a clean slate (earlier in-process invocations may have
    // left counts or buffered records), then enable the requested layers
    // *before* registering so registration-time records (e.g. the erasure
    // kernel-tier event) are captured.
    nsr_obs::reset_metrics();
    let _ = nsr_obs::trace::drain();
    nsr_obs::set_metrics_enabled(metrics_out.is_some());
    nsr_obs::set_trace_enabled(trace_out.is_some());
    nsr_markov::obs::register();
    nsr_core::obs::register();
    nsr_sim::obs::register();
    nsr_erasure::obs::register();
    nsr_net::obs::register();

    let result = dispatch_cmd(args);
    nsr_obs::set_metrics_enabled(false);
    nsr_obs::set_trace_enabled(false);

    let mut out = result?;
    if let Some(path) = metrics_out {
        let n = nsr_obs::write_metrics(std::path::Path::new(&path), &args.command)?;
        let _ = writeln!(out, "wrote {path} ({n} metric records)");
    }
    if let Some(path) = trace_out {
        let n = nsr_obs::write_trace(std::path::Path::new(&path), &args.command)?;
        let _ = writeln!(out, "wrote {path} ({n} trace records)");
    }
    Ok(out)
}

fn dispatch_cmd(args: &ParsedArgs) -> Result<String> {
    match args.command.as_str() {
        "baseline" => baseline(args),
        "eval" => eval(args),
        "sweep" => sweep_cmd(args),
        "figures" => figures(args),
        "sim" => sim(args),
        "inject" => inject(args),
        "rare" => rare(args),
        "fleet" => fleet(args),
        "mission" => mission(args),
        "plan" => plan(args),
        "spares" => spares(args),
        "report" => {
            if crate::report::wants_artifact_mode(args)? {
                crate::report::artifact_report(args)
            } else {
                report(args)
            }
        }
        "explain" => crate::explain::explain(args),
        "brick" => crate::net_cmds::brick(args),
        "gateway" => crate::net_cmds::gateway(args),
        "cluster-inject" => crate::net_cmds::cluster_inject(args),
        "workload" => crate::net_cmds::workload(args),
        "top" => crate::top::top(args),
        "aging" => aging(args),
        "bench" => bench(args),
        "chain" => chain(args),
        "obs-check" => obs_check(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError(format!(
            "unknown command '{other}'; try `nsr help`"
        ))),
    }
}

fn baseline(args: &ParsedArgs) -> Result<String> {
    let params = params_from(args)?;
    let rows = fig13_baseline(&params)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 13 — baseline comparison (target {TARGET_EVENTS_PER_PB_YEAR:.0e} events/PB-year)\n"
    );
    let _ = writeln!(
        out,
        "{:<28}{:>16}{:>18}{:>10}",
        "configuration", "MTTDL (h)", "events/PB-year", "target"
    );
    for (config, r) in rows {
        let _ = writeln!(
            out,
            "{:<28}{:>16.4e}{:>18.4e}{:>10}",
            format!("{config}"),
            r.mttdl_hours,
            r.events_per_pb_year,
            if r.meets_target() { "meets" } else { "MISSES" }
        );
    }
    Ok(out)
}

fn eval(args: &ParsedArgs) -> Result<String> {
    let config = parse_config(
        &args
            .get::<String>("config")?
            .ok_or_else(|| CliError("--config is required".into()))?,
    )?;
    let params = params_from(args)?;
    let e = config.evaluate(&params)?;
    let mut out = String::new();
    let _ = writeln!(out, "configuration: {config} ({})", config_name(config));
    let _ = writeln!(out, "closed form:   {}", e.closed_form);
    let _ = writeln!(out, "exact CTMC:    {}", e.exact);
    let _ = writeln!(
        out,
        "node rebuild:  {:.2} h ({}-bound)",
        e.node_rebuild.duration.0, e.node_rebuild.bottleneck
    );
    let _ = writeln!(
        out,
        "drive repair:  {:.2} h ({}-bound)",
        e.drive_repair.duration.0, e.drive_repair.bottleneck
    );
    let _ = writeln!(
        out,
        "margin:        {:.2} orders of magnitude vs target",
        e.closed_form.margin_orders()
    );
    Ok(out)
}

/// Runs the sweep for a paper figure number against `params`.
///
/// # Errors
///
/// Returns an error for figure numbers outside 14–20.
pub fn sweep_for_figure(figure: u32, params: &Params) -> Result<Sweep> {
    sweep_for_figure_workers(figure, params, 1)
}

/// [`sweep_for_figure`] with an explicit worker count.
///
/// # Errors
///
/// Returns an error for figure numbers outside 14–20.
pub fn sweep_for_figure_workers(figure: u32, params: &Params, workers: usize) -> Result<Sweep> {
    if !(14..=20).contains(&figure) {
        return Err(CliError(format!(
            "--figure must be 14..20 (got {figure}); figure 13 is `nsr baseline`"
        )));
    }
    nsr_core::sweep::figure_sweep(figure, params, workers).map_err(Into::into)
}

fn workers_from(args: &ParsedArgs) -> Result<usize> {
    let raw = args.get_or("workers", String::from("1"))?;
    if raw == "auto" {
        // 0 is the core-layer sentinel: sweep_with_workers resolves it
        // per sweep via nsr_core::sweep::auto_workers (cores vs rows).
        return Ok(0);
    }
    let workers: usize = raw
        .parse()
        .map_err(|_| CliError(format!("--workers must be a count or `auto` (got {raw})")))?;
    if workers == 0 {
        return Err(CliError("--workers must be at least 1 (or `auto`)".into()));
    }
    Ok(workers)
}

fn sweep_cmd(args: &ParsedArgs) -> Result<String> {
    let figure: u32 = args
        .get("figure")?
        .ok_or_else(|| CliError("--figure is required (14..20)".into()))?;
    let params = params_from(args)?;
    let workers = workers_from(args)?;
    let sweep = sweep_for_figure_workers(figure, &params, workers)?;
    Ok(if args.has_flag("csv") {
        sweep_csv(&sweep)
    } else {
        sweep_table(&sweep)
    })
}

fn figures(args: &ParsedArgs) -> Result<String> {
    let out_dir = args.get_or("out", String::from("results"))?;
    let params = params_from(args)?;
    let workers = workers_from(args)?;
    std::fs::create_dir_all(&out_dir)?;
    let mut log = String::new();

    // Figure 13 as CSV.
    let rows = fig13_baseline(&params)?;
    let mut csv = String::from("configuration,mttdl_hours,events_per_pb_year,meets_target\n");
    for (config, r) in rows {
        let _ = writeln!(
            csv,
            "{config},{:.6e},{:.6e},{}",
            r.mttdl_hours,
            r.events_per_pb_year,
            r.meets_target()
        );
    }
    let path = format!("{out_dir}/fig13_baseline.csv");
    std::fs::write(&path, csv)?;
    let _ = writeln!(log, "wrote {path}");

    // Figures 14 and 15 at both ends of the paper's MTTF ranges.
    for (name, node_mttf) in [
        ("low_node_mttf", 100_000.0),
        ("high_node_mttf", 1_000_000.0),
    ] {
        let mut p = params;
        p.node.mttf = Hours(node_mttf);
        let s = sweep_for_figure_workers(14, &p, workers)?;
        let path = format!("{out_dir}/fig14_drive_mttf_{name}.csv");
        std::fs::write(&path, sweep_csv(&s))?;
        let _ = writeln!(log, "wrote {path}");
    }
    for (name, drive_mttf) in [
        ("low_drive_mttf", 100_000.0),
        ("high_drive_mttf", 750_000.0),
    ] {
        let mut p = params;
        p.drive.mttf = Hours(drive_mttf);
        let s = sweep_for_figure_workers(15, &p, workers)?;
        let path = format!("{out_dir}/fig15_node_mttf_{name}.csv");
        std::fs::write(&path, sweep_csv(&s))?;
        let _ = writeln!(log, "wrote {path}");
    }
    for fig in 16..=20 {
        let s = sweep_for_figure_workers(fig, &params, workers)?;
        let path = format!("{out_dir}/fig{fig}_{}.csv", s.x_name.replace(' ', "_"));
        std::fs::write(&path, sweep_csv(&s))?;
        let _ = writeln!(log, "wrote {path}");
    }
    // Extension sweep (not a paper figure): hard-error-rate sensitivity.
    let s = nsr_core::sweep::ext_hard_error_rate_with_workers(&params, workers)?;
    let path = format!("{out_dir}/ext_hard_error_rate.csv");
    std::fs::write(&path, sweep_csv(&s))?;
    let _ = writeln!(log, "wrote {path}");
    Ok(log)
}

fn sim(args: &ParsedArgs) -> Result<String> {
    let config = parse_config(
        &args
            .get::<String>("config")?
            .ok_or_else(|| CliError("--config is required".into()))?,
    )?;
    let params = params_from(args)?;
    let samples = args.get_or("samples", 500u64)?;
    let seed = args.get_or("seed", 42u64)?;
    let threads = args.get_or("threads", 1u32)?;
    let sim = SystemSim::new(params, config)?;
    let out = if threads > 1 {
        sim.run_parallel(samples, seed, threads)?
    } else {
        sim.run(samples, seed)?
    };
    let analytic = config.evaluate(&params)?;
    let mut text = String::new();
    let _ = writeln!(text, "configuration:     {config}");
    let _ = writeln!(text, "simulated MTTDL:   {}", out.mttdl);
    let _ = writeln!(
        text,
        "analytic (exact):  {:.6e} h",
        analytic.exact.mttdl_hours
    );
    let _ = writeln!(text, "events/PB-year:    {:.4e}", out.events_per_pb_year);
    let _ = writeln!(text, "sector-loss share: {:.1}%", 100.0 * out.sector_share);
    let _ = writeln!(text, "failures per loss: {:.1}", out.mean_failures_per_loss);
    let _ = writeln!(
        text,
        "spare consumed:    {:.2}x provisioned",
        out.mean_spare_consumed
    );
    Ok(text)
}

fn inject(args: &ParsedArgs) -> Result<String> {
    let plan_name = args.get_or("plan", "burst".to_string())?;
    if plan_name == "list" {
        let mut out = String::from("named fault plans:\n");
        for name in FaultPlan::names() {
            let plan = FaultPlan::named(name)?;
            let _ = writeln!(
                out,
                "  {name:<12} {} clause(s), horizon {:.0} h",
                plan.clauses().len(),
                plan.horizon_hours()
            );
        }
        return Ok(out);
    }

    let config = parse_config(&args.get_or("config", "ft2-nir".to_string())?)?;
    let params = params_from(args)?;
    let plan = FaultPlan::named(&plan_name)?;
    let sim = SystemSim::new(params, config)?;
    let campaign = Campaign::new(&sim, &plan);

    // Replay mode: one seed, full byte-exact event trace.
    if let Some(replay_seed) = args.get::<u64>("replay")? {
        let r = campaign.run(replay_seed)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay of plan '{plan_name}' on {config}, seed {replay_seed}:"
        );
        out.push_str(&r.trace.render());
        let _ = writeln!(
            out,
            "outcome: {} after {:.2} h ({:.2}% degraded)",
            if r.survived { "survived" } else { "data loss" },
            r.elapsed_hours,
            100.0 * r.degraded_fraction()
        );
        return Ok(out);
    }

    let runs = args.get_or("runs", 100u64)?;
    let seed = args.get_or("seed", 42u64)?;
    let s = campaign.run_many(runs, seed)?;
    let (excess, sector, latent) = s.losses;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault-injection campaign: plan '{plan_name}' on {config}"
    );
    let _ = writeln!(
        out,
        "  horizon:         {:.0} h per run",
        plan.horizon_hours()
    );
    let _ = writeln!(
        out,
        "  runs:            {} (base seed {})",
        s.runs, s.base_seed
    );
    let _ = writeln!(
        out,
        "  survived:        {}/{} ({:.1}%)",
        s.survived,
        s.runs,
        100.0 * s.survival_rate()
    );
    let _ = writeln!(
        out,
        "  degraded time:   {:.2}% mean fraction of each run",
        100.0 * s.mean_degraded_fraction
    );
    let _ = writeln!(
        out,
        "  injected events: {:.1} mean per run",
        s.mean_injected
    );
    let _ = writeln!(
        out,
        "  data-loss events: {} (excess-failures {excess}, sector-error {sector}, \
         latent-error {latent})",
        s.runs - s.survived
    );
    if !s.loss_seeds.is_empty() {
        let _ = writeln!(out, "  loss seeds (replay with --replay SEED):");
        for chunk in s.loss_seeds.chunks(4) {
            let line: Vec<String> = chunk.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(out, "    {}", line.join(", "));
        }
    }
    if !s.loss_signatures.is_empty() {
        let _ = writeln!(out, "  top loss signatures:");
        for (sig, n) in &s.loss_signatures {
            let _ = writeln!(out, "    {n:>3}x {sig}");
        }
    }
    Ok(out)
}

fn rare(args: &ParsedArgs) -> Result<String> {
    let config = parse_config(
        &args
            .get::<String>("config")?
            .ok_or_else(|| CliError("--config is required".into()))?,
    )?;
    let params = params_from(args)?;
    let cycles = args.get_or("cycles", 50_000u64)?;
    let seed = args.get_or("seed", 42u64)?;
    let bias = args.get_or("bias", 0.7f64)?;

    // Build the exact chain for this configuration and run IS on it.
    let (ctmc, root) = config.exact_chain(&params)?;
    let est = RareEvent::new(&ctmc, root)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let r = est.estimate(
        Options {
            bias,
            gamma_cycles: cycles,
            time_cycles: cycles,
            ..Options::default()
        },
        &mut rng,
    )?;
    let analytic = config.evaluate(&params)?;
    let mut text = String::new();
    let _ = writeln!(text, "configuration:       {config}");
    let _ = writeln!(
        text,
        "IS MTTDL:            {:.6e} h (±{:.1}%)",
        r.mtta,
        100.0 * r.rel_err
    );
    let _ = writeln!(
        text,
        "exact (GTH):         {:.6e} h",
        analytic.exact.mttdl_hours
    );
    let _ = writeln!(text, "per-cycle gamma:     {}", r.gamma);
    let _ = writeln!(text, "mean cycle:          {:.4e} h", r.cycle_time.mean);
    Ok(text)
}

fn fleet(args: &ParsedArgs) -> Result<String> {
    let config = parse_config(&args.get_or("config", "ft1-nir".to_string())?)?;
    let params = params_from(args)?;
    let bricks = args.get_or("bricks", 10_000u64)?;
    let years = args.get_or("years", 10.0f64)?;
    let seed = args.get_or("seed", 42u64)?;
    let workers = args.get_or("workers", 0u32)?;
    let estimator = args.get_or("estimator", "direct".to_string())?;
    let cycles = args.get_or("cycles", 20_000u64)?;
    if !matches!(estimator.as_str(), "direct" | "is" | "splitting" | "all") {
        return Err(CliError(format!(
            "unknown estimator '{estimator}'; use direct, is, splitting or all"
        )));
    }

    let sim = FleetSim::new(params, config, bricks, years)?;
    let outcome = sim.run(seed, workers)?;
    let analytic = sim.analytic_cell_mttdl()?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet:             {} bricks = {} cells of {config} ({} entities)",
        outcome.bricks, outcome.cells, outcome.entities
    );
    let _ = writeln!(
        out,
        "mission:           {years} y ({:.0} h), seed {seed}",
        outcome.mission_hours
    );
    let _ = writeln!(
        out,
        "events:            {} processed ({} stale), {} node + {} drive failures, {} rebuilds",
        outcome.events,
        outcome.stale_events,
        outcome.node_failures,
        outcome.drive_failures,
        outcome.rebuilds
    );
    let excess = outcome
        .losses
        .iter()
        .filter(|l| l.cause == LossCause::ExcessFailures)
        .count();
    let sector = outcome.losses.len() - excess;
    let _ = writeln!(
        out,
        "losses:            {} (excess-failures {excess}, sector-error {sector})",
        outcome.losses.len()
    );
    match outcome.mttdl_estimate() {
        Some((mttdl, (lo, hi))) => {
            let _ = writeln!(
                out,
                "direct MTTDL:      {mttdl:.4e} h  (95% CI [{lo:.4e}, {hi:.4e}])"
            );
            let _ = writeln!(
                out,
                "direct rate:       {:.4e} data-loss events/PB-year",
                outcome.events_per_pb_year()
            );
        }
        None => {
            let _ = writeln!(
                out,
                "direct MTTDL:      no losses observed; > {:.4e} h at 95% (rule of three)",
                outcome.mttdl_lower_bound()
            );
        }
    }
    let _ = writeln!(out, "analytic (exact):  {analytic:.6e} h per cell");

    let render_rare = |out: &mut String, label: &str, r: &FleetRareEstimate| {
        let _ = writeln!(
            out,
            "{label:<19}{:.6e} h per cell (±{:.1}%), fleet {:.4e} h",
            r.cell_mttdl.mtta,
            100.0 * r.cell_mttdl.rel_err,
            r.fleet_mttdl_hours
        );
        let _ = writeln!(
            out,
            "crosscheck {}: {} ({:.2} sigma from analytic)",
            r.estimator,
            if r.contains_analytic(4.0) {
                "PASS"
            } else {
                "FAIL"
            },
            r.sigmas_from_analytic()
        );
    };
    if estimator == "is" || estimator == "all" {
        let r = sim.estimate_importance(
            Options {
                gamma_cycles: cycles,
                time_cycles: cycles,
                ..Options::default()
            },
            seed,
        )?;
        render_rare(&mut out, "IS MTTDL:", &r);
    }
    if estimator == "splitting" || estimator == "all" {
        let r = sim.estimate_splitting(
            SplitOptions {
                gamma_cycles: cycles,
                time_cycles: cycles,
                ..SplitOptions::default()
            },
            seed,
        )?;
        render_rare(&mut out, "splitting MTTDL:", &r);
    }
    if args.has_flag("trace") {
        out.push_str(&outcome.canonical_trace());
    }
    Ok(out)
}

fn mission(args: &ParsedArgs) -> Result<String> {
    let config = parse_config(
        &args
            .get::<String>("config")?
            .ok_or_else(|| CliError("--config is required".into()))?,
    )?;
    let params = params_from(args)?;
    let years = args.get_or("years", 5.0f64)?;
    let mut out = String::new();
    let _ = writeln!(out, "mission reliability for {config}:");
    for y in [years / 5.0, years, years * 4.0] {
        let p = nsr_core::mission::loss_probability(config, &params, y)?;
        let _ = writeln!(out, "  P(data loss within {y:>7.2} y) = {p:.4e}");
    }
    Ok(out)
}

fn plan(args: &ParsedArgs) -> Result<String> {
    if args.has_flag("grid") {
        return plan_grid(args);
    }
    let params = params_from(args)?;
    let target = args.get_or("target", TARGET_EVENTS_PER_PB_YEAR)?;
    let max_ft = args.get_or("max-ft", 3u32)?;
    let plans = nsr_core::planner::feasible_plans(&params, target, max_ft)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "configurations meeting {target:.1e} events/PB-year (cheapest first):\n"
    );
    let _ = writeln!(
        out,
        "{:<28}{:>12}{:>16}{:>14}",
        "configuration", "efficiency", "events/PB-yr", "margin (dex)"
    );
    for p in &plans {
        let _ = writeln!(
            out,
            "{:<28}{:>11.1}%{:>16.3e}{:>14.1}",
            format!("{}", p.config),
            100.0 * p.efficiency,
            p.evaluation.closed_form.events_per_pb_year,
            p.evaluation.closed_form.margin_orders()
        );
    }
    if plans.is_empty() {
        let _ = writeln!(out, "  (none — relax the target or raise --max-ft)");
    } else {
        // Size the §8 knob for the cheapest plan.
        let best = plans[0].config;
        if let Ok(block) = nsr_core::planner::min_rebuild_block_for_target(&params, best, target) {
            let _ = writeln!(
                out,
                "\ncheapest plan [{best}] needs a rebuild block of at least {:.0} KiB",
                block.0 / 1024.0
            );
        }
    }
    Ok(out)
}

/// Parses a comma-separated numeric axis flag, falling back to a
/// default grid.
fn grid_axis<T>(args: &ParsedArgs, key: &str, default: &[T]) -> Result<Vec<T>>
where
    T: std::str::FromStr + Copy,
{
    match args.get::<String>(key)? {
        None => Ok(default.to_vec()),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<T>()
                    .map_err(|_| CliError(format!("--{key}: cannot parse '{s}'")))
            })
            .collect(),
    }
}

/// Implements `nsr plan --grid`: Pareto frontier search over a
/// configuration grid via the batched planner.
fn plan_grid(args: &ParsedArgs) -> Result<String> {
    use nsr_core::plan::{frontier_csv, plan_search, ConfigSpace, PlanOptions};
    use nsr_core::raid::InternalRaid;

    let params = params_from(args)?;
    let internal = match args.get::<String>("grid-ir")? {
        None => InternalRaid::all().to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|s| match s.trim() {
                "nir" => Ok(InternalRaid::None),
                "ir5" => Ok(InternalRaid::Raid5),
                "ir6" => Ok(InternalRaid::Raid6),
                other => Err(CliError(format!(
                    "--grid-ir: unknown level '{other}' (nir|ir5|ir6)"
                ))),
            })
            .collect::<Result<Vec<_>>>()?,
    };
    let space = ConfigSpace {
        nodes: grid_axis(args, "grid-nodes", &[64])?,
        data_shards: grid_axis(args, "grid-k", &[2, 4, 6])?,
        node_ft: grid_axis(args, "grid-t", &[1, 2, 3])?,
        internal,
        spare_frac: grid_axis(args, "grid-spares", &[0.0, 0.25])?,
        rebuild_bw: grid_axis(args, "grid-bw", &[0.05, 0.1, 0.2])?,
    };
    let opts = PlanOptions {
        workers: workers_from(args)?,
        mission_years: args.get_or("mission-years", 5.0f64)?,
        exhaustive: args.has_flag("exhaustive"),
    };
    let report = plan_search(&params, &space, &opts).map_err(|e| CliError(e.to_string()))?;

    if args.has_flag("csv") {
        return Ok(frontier_csv(&report));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan grid: {} points, {} feasible, {} pruned without solving, {} solved exactly",
        report.grid_points, report.feasible, report.pruned, report.solved
    );
    let _ = writeln!(
        out,
        "elimination programs: {} compiled, {} reused",
        report.skeleton_builds, report.skeleton_reuses
    );
    if !report.infeasible_examples.is_empty() {
        let (p, reason) = &report.infeasible_examples[0];
        let _ = writeln!(
            out,
            "infeasible corners: e.g. N={} k={} {} — {reason}",
            p.nodes,
            p.data_shards,
            p.config_code(),
        );
    }
    let _ = writeln!(
        out,
        "\nPareto frontier (cost: raw/usable + rebuild bw; objectives: \
         events/PB-yr + P(loss in {:.0} y)):\n",
        report.mission_years
    );
    let _ = writeln!(
        out,
        "{:<8}{:>6}{:>4}{:>4}{:>8}{:>6}{:>11}{:>14}{:>12}",
        "config", "nodes", "k", "t", "spares", "bw", "raw/usable", "events/PB-yr", "P(loss)"
    );
    for f in &report.frontier {
        let p = f.point.point;
        let _ = writeln!(
            out,
            "{:<8}{:>6}{:>4}{:>4}{:>8.2}{:>6.2}{:>11.3}{:>14.3e}{:>12.3e}",
            p.config_code(),
            p.nodes,
            p.data_shards,
            p.node_ft,
            p.spare_frac,
            p.rebuild_bw,
            f.point.cost_overhead,
            f.exact_events_pb_year,
            f.exact_mission_loss,
        );
    }

    if args.has_flag("explain") {
        let _ = writeln!(out, "\ndecision records:");
        for f in &report.frontier {
            let p = f.point.point;
            let point_params = p.params(&params);
            // Transient-uniformization refinement of the exponential
            // mission approximation used for the frontier objectives.
            let mission = nsr_core::mission::loss_probability(
                f.point.config,
                &point_params,
                report.mission_years,
            )
            .map_err(|e| CliError(e.to_string()))?;
            let _ = writeln!(
                out,
                "  [{} N={} k={} spares={} bw={}]",
                p.config_code(),
                p.nodes,
                p.data_shards,
                p.spare_frac,
                p.rebuild_bw
            );
            let _ = writeln!(
                out,
                "    exact MTTDL {:.4e} h; closed form {:.4e} h ({:+.1}% off exact)",
                f.exact_mttdl_hours,
                f.point.closed_mttdl_hours,
                100.0 * (f.point.closed_mttdl_hours - f.exact_mttdl_hours) / f.exact_mttdl_hours
            );
            let _ = writeln!(
                out,
                "    mission P(loss in {:.0} y): {:.4e} exponential, {:.4e} uniformized",
                report.mission_years, f.exact_mission_loss, mission
            );
            let _ = writeln!(
                out,
                "    cost: {:.3}x raw/usable, {:.0}% bandwidth held for rebuild",
                f.point.cost_overhead,
                100.0 * f.point.cost_rebuild_bw
            );
        }
    }
    Ok(out)
}

fn spares(args: &ParsedArgs) -> Result<String> {
    let params = params_from(args)?;
    let years = args.get_or("years", 5.0f64)?;
    let m = nsr_core::spares::SpareModel::new(params)?;
    let mut out = String::new();
    let _ = writeln!(out, "fail-in-place spare provisioning:");
    let _ = writeln!(
        out,
        "  drive failures:    {:.2}/year",
        m.drive_failures_per_hour() * nsr_core::units::HOURS_PER_YEAR
    );
    let _ = writeln!(
        out,
        "  node failures:     {:.2}/year",
        m.node_failures_per_hour() * nsr_core::units::HOURS_PER_YEAR
    );
    let _ = writeln!(
        out,
        "  capacity erosion:  {:.2} TB/year",
        m.capacity_loss_rate().0 * nsr_core::units::HOURS_PER_YEAR / 1e12
    );
    let _ = writeln!(
        out,
        "  spare pool:        {:.2} TB",
        m.spare_pool().0 / 1e12
    );
    let _ = writeln!(
        out,
        "  expected lifetime: {:.2} years",
        m.expected_lifetime()?.to_years()
    );
    let _ = writeln!(
        out,
        "  P(pool survives {years} y) = {:.4}",
        m.survival_probability(years)?
    );
    match m.utilization_for_lifetime(years) {
        Ok(u) => {
            let _ = writeln!(
                out,
                "  utilization for a {years}-year life: {:.1}% (baseline 75.0%)",
                100.0 * u
            );
        }
        Err(e) => {
            let _ = writeln!(out, "  {years}-year life infeasible: {e}");
        }
    }
    Ok(out)
}

fn report(args: &ParsedArgs) -> Result<String> {
    let params = params_from(args)?;
    let mut md = String::new();
    let _ = writeln!(md, "# Reliability report — networked storage nodes\n");
    let _ = writeln!(
        md,
        "Baseline: N = {}, R = {}, d = {}, drive MTTF {} h, node MTTF {} h, \
         link {} Gb/s, rebuild block {:.0} KiB, utilization {:.0} %.\n",
        params.system.node_count,
        params.system.redundancy_set_size,
        params.node.drives_per_node,
        params.drive.mttf.0,
        params.node.mttf.0,
        params.system.link_speed.0,
        params.system.rebuild_command.0 / 1024.0,
        100.0 * params.system.capacity_utilization,
    );

    // Figure 13 table.
    let _ = writeln!(md, "## Baseline comparison (Figure 13)\n");
    let _ = writeln!(
        md,
        "| configuration | MTTDL (h) | events/PB-year | target |"
    );
    let _ = writeln!(md, "|---|---|---|---|");
    for (config, r) in fig13_baseline(&params)? {
        let _ = writeln!(
            md,
            "| {config} | {:.3e} | {:.3e} | {} |",
            r.mttdl_hours,
            r.events_per_pb_year,
            if r.meets_target() {
                "meets"
            } else {
                "**misses**"
            }
        );
    }

    // Sensitivity spreads.
    let _ = writeln!(md, "\n## Sensitivity summary (Figures 14–20)\n");
    let _ = writeln!(md, "| sweep | FT2 no-IR | FT2 IR5 | FT3 no-IR |");
    let _ = writeln!(md, "|---|---|---|---|");
    for fig in 16..=20u32 {
        let sweep = sweep_for_figure(fig, &params)?;
        let mut row = format!("| {} ({}) |", sweep.x_name, sweep.x_unit);
        for c in sweep.configs() {
            let series = sweep.series(c);
            let min = series.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let max = series.iter().map(|p| p.1).fold(0.0f64, f64::max);
            row.push_str(&format!(" {:.1}x |", max / min));
        }
        let _ = writeln!(md, "{row}");
    }

    // Spares and mission.
    let spares_model = nsr_core::spares::SpareModel::new(params)?;
    let _ = writeln!(md, "\n## Fail-in-place provisioning\n");
    let _ = writeln!(
        md,
        "Expected spare-pool lifetime: **{:.1} years** \
         ({:.1} TB pool, {:.1} TB/year erosion).",
        spares_model.expected_lifetime()?.to_years(),
        spares_model.spare_pool().0 / 1e12,
        spares_model.capacity_loss_rate().0 * nsr_core::units::HOURS_PER_YEAR / 1e12,
    );

    let _ = writeln!(md, "\n## Mission risk (5 years)\n");
    let _ = writeln!(md, "| configuration | P(data loss in 5 y) |");
    let _ = writeln!(md, "|---|---|");
    for config in nsr_core::config::Configuration::sensitivity_set() {
        let p = nsr_core::mission::loss_probability(config, &params, 5.0)?;
        let _ = writeln!(md, "| {config} | {p:.3e} |");
    }

    // Chain structure sanity.
    let _ = writeln!(md, "\n## Model-structure validation\n");
    for config in nsr_core::config::Configuration::sensitivity_set() {
        let (ctmc, _) = config.exact_chain(&params)?;
        let diag = nsr_markov::validate_absorbing(&ctmc).map_err(|e| CliError(e.to_string()))?;
        let _ = writeln!(
            md,
            "- {config}: {} states, {} absorbing, {} trapped (must be 0)",
            ctmc.len(),
            diag.absorbing_count,
            diag.trapped_states.len()
        );
    }

    if let Some(path) = args.get::<String>("out")? {
        std::fs::write(&path, &md)?;
        Ok(format!("wrote {path}\n"))
    } else {
        Ok(md)
    }
}

fn aging(args: &ParsedArgs) -> Result<String> {
    let config = parse_config(&args.get_or("config", "ft1-nir".to_string())?)?;
    let params = params_from(args)?;
    let samples = args.get_or("samples", 400u64)?;
    let seed = args.get_or("seed", 42u64)?;
    let shape = args.get_or("shape", 1.5f64)?;
    use nsr_sim::aging::{AgingSim, Lifetime};
    let exp = AgingSim::new(
        params,
        config,
        Lifetime::Exponential {
            mttf: params.drive.mttf.0,
        },
        Lifetime::Exponential {
            mttf: params.node.mttf.0,
        },
    )?
    .estimate_mttdl(samples, seed)?;
    let weib = AgingSim::new(
        params,
        config,
        Lifetime::Weibull {
            mttf: params.drive.mttf.0,
            shape,
        },
        Lifetime::Exponential {
            mttf: params.node.mttf.0,
        },
    )?
    .estimate_mttdl(samples, seed + 1)?;
    let analytic = config.evaluate(&params)?;
    let mut out = String::new();
    let _ = writeln!(out, "lifetime-distribution ablation for {config}:");
    let _ = writeln!(
        out,
        "  analytic (exponential):      {:.4e} h",
        analytic.exact.mttdl_hours
    );
    let _ = writeln!(out, "  simulated exponential:       {}", exp);
    let _ = writeln!(out, "  simulated Weibull (k={shape}):   {}", weib);
    let _ = writeln!(
        out,
        "  Markov-assumption error:     {:+.1}%",
        100.0 * (weib.mean - exp.mean) / exp.mean
    );
    Ok(out)
}

fn bench(args: &ParsedArgs) -> Result<String> {
    use nsr_bench::json::Json;
    use nsr_bench::suites::{self, Mode, SUITE_NAMES};

    // --compare <old.json> <new.json>: diff two reports, no timing.
    if let Some(old_path) = args.get::<String>("compare")? {
        let new_path = args.positionals.first().ok_or_else(|| {
            CliError("--compare needs two report paths: --compare OLD.json NEW.json".into())
        })?;
        let threshold = args.get_or("threshold", 25.0f64)?;
        let only = args.get::<String>("only")?;
        let read = |path: &str| -> Result<Json> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("reading {path}: {e}")))?;
            Json::parse(&text).map_err(|e| CliError(format!("{path}: {e}")))
        };
        let old = read(&old_path)?;
        let new = read(new_path)?;
        let cmp = nsr_bench::compare::compare_reports_only(&old, &new, threshold, only.as_deref())
            .map_err(CliError)?;
        let text = cmp.render();
        if cmp.regressions().is_empty() {
            return Ok(text);
        }
        return Err(CliError(text));
    }

    let which = args.get_or("suite", "all".to_string())?;
    let names: Vec<&str> = if which == "all" {
        SUITE_NAMES.to_vec()
    } else {
        match SUITE_NAMES.iter().find(|n| **n == which) {
            Some(n) => vec![n],
            None => {
                return Err(CliError(format!(
                    "--suite must be one of: all, {}",
                    SUITE_NAMES.join(", ")
                )))
            }
        }
    };
    let out_dir = std::path::PathBuf::from(args.get_or("out-dir", String::from("."))?);
    let mode = if args.has_flag("smoke") {
        Mode::Smoke
    } else {
        Mode::Full
    };
    let mut out = String::new();

    // --check: validate existing reports against the schema, no timing.
    if args.has_flag("check") {
        for name in names {
            let path = out_dir.join(format!("BENCH_{name}.json"));
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError(format!("reading {}: {e}", path.display())))?;
            let doc =
                Json::parse(&text).map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            suites::validate_report(&doc)
                .map_err(|e| CliError(format!("{}: {e}", path.display())))?;
            let results = doc
                .get("results")
                .and_then(Json::as_arr)
                .map_or(0, <[_]>::len);
            let _ = writeln!(out, "{}: valid ({results} results)", path.display());
        }
        return Ok(out);
    }

    for name in names {
        let suite = suites::run_suite(name, mode).map_err(CliError)?;
        out.push_str(&suite.render_human());
        let path = out_dir.join(suite.file_name());
        nsr_bench::write_report(&suite, &path).map_err(CliError)?;
        let _ = writeln!(out, "wrote {}", path.display());
    }
    Ok(out)
}

fn obs_check(args: &ParsedArgs) -> Result<String> {
    let path = args
        .get::<String>("file")?
        .ok_or_else(|| CliError("--file is required".into()))?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
    let records = nsr_obs::validate_jsonl(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    nsr_obs::validate_span_links(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    let schema = if text.contains(nsr_obs::SCHEMA_V2) {
        "nsr-obs/v1+v2"
    } else {
        "nsr-obs/v1"
    };
    let mut out = String::new();
    let _ = writeln!(out, "{path}: valid {schema} ({records} records)");
    if let Some(required) = args.get::<String>("require")? {
        // `(kind, name)` pairs actually present; a bare `name` pattern
        // matches any kind, `kind:name` demands both.
        let mut present = std::collections::HashSet::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            // validate_jsonl already proved every line parses.
            let doc = nsr_obs::Json::parse(line).expect("validated above");
            let kind = doc.get("kind").and_then(nsr_obs::Json::as_str);
            if let Some(name) = doc.get("name").and_then(nsr_obs::Json::as_str) {
                present.insert((kind.unwrap_or("?").to_string(), name.to_string()));
            }
        }
        for want in required.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let hit = match want.split_once(':') {
                Some((kind, name)) => present.contains(&(kind.to_string(), name.to_string())),
                None => present.iter().any(|(_, n)| n == want),
            };
            if !hit {
                return Err(CliError(format!(
                    "{path}: required record '{want}' not present"
                )));
            }
        }
        let _ = writeln!(out, "required names present: {required}");
    }
    Ok(out)
}

fn chain(args: &ParsedArgs) -> Result<String> {
    let config = parse_config(
        &args
            .get::<String>("config")?
            .ok_or_else(|| CliError("--config is required".into()))?,
    )?;
    let params = params_from(args)?;
    let (ctmc, root) = config.exact_chain(&params)?;
    let diag = nsr_markov::validate_absorbing(&ctmc).map_err(|e| CliError(e.to_string()))?;
    if !diag.trapped_states.is_empty() {
        return Err(CliError(format!(
            "chain has {} trapped states — model construction bug",
            diag.trapped_states.len()
        )));
    }
    let dot = nsr_markov::to_dot(&ctmc, nsr_markov::DotOptions::default());
    if let Some(path) = args.get::<String>("out")? {
        std::fs::write(&path, &dot)?;
        Ok(format!(
            "wrote {path} ({} states, {} absorbing, root {})\n",
            ctmc.len(),
            diag.absorbing_count,
            ctmc.label(root)
        ))
    } else {
        Ok(dot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(words: &[&str]) -> Result<String> {
        dispatch(&ParsedArgs::parse(words.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("nsr <command>"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn baseline_lists_nine_configs() {
        let out = run(&["baseline"]).unwrap();
        assert_eq!(out.matches("FT ").count(), 9);
        assert!(out.contains("MISSES"));
        assert!(out.contains("meets"));
    }

    #[test]
    fn eval_reports_details() {
        let out = run(&["eval", "--config", "ft2-ir5"]).unwrap();
        assert!(out.contains("FT 2, Internal RAID 5"));
        assert!(out.contains("disk-bound"));
        assert!(run(&["eval"]).is_err()); // --config required
    }

    #[test]
    fn sweep_table_and_csv() {
        let table = run(&["sweep", "--figure", "17"]).unwrap();
        assert!(table.contains("link speed"));
        let csv = run(&["sweep", "--figure", "17", "--csv"]).unwrap();
        assert!(csv.starts_with("link speed (Gb/s)"));
        assert!(run(&["sweep", "--figure", "13"]).is_err());
        assert!(run(&["sweep"]).is_err());
    }

    #[test]
    fn sweep_workers_output_is_identical_to_serial() {
        let serial = run(&["sweep", "--figure", "16", "--csv"]).unwrap();
        for workers in ["2", "4", "auto"] {
            let parallel =
                run(&["sweep", "--figure", "16", "--csv", "--workers", workers]).unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
        }
        assert!(run(&["sweep", "--figure", "16", "--workers", "0"]).is_err());
        assert!(run(&["sweep", "--figure", "16", "--workers", "many"]).is_err());
    }

    #[test]
    fn sim_runs_small() {
        let out = run(&[
            "sim",
            "--config",
            "ft1-nir",
            "--samples",
            "50",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("simulated MTTDL"));
    }

    #[test]
    fn fleet_runs_and_is_worker_deterministic() {
        let base = [
            "fleet", "--config", "ft1-nir", "--bricks", "3200", "--years", "2", "--seed", "5",
        ];
        let mut one = base.to_vec();
        one.extend(["--workers", "1", "--trace"]);
        let mut four = base.to_vec();
        four.extend(["--workers", "4", "--trace"]);
        let a = run(&one).unwrap();
        let b = run(&four).unwrap();
        assert_eq!(a, b, "fleet output must not depend on worker count");
        assert!(a.contains("fleet:"));
        assert!(a.contains("analytic (exact):"));
        assert!(a.contains("fleet bricks=3200 cells=50"));
        assert!(run(&["fleet", "--bricks", "0"]).is_err());
        assert!(run(&["fleet", "--estimator", "bogus"]).is_err());
    }

    #[test]
    fn fleet_estimators_crosscheck_analytic() {
        let out = run(&[
            "fleet",
            "--config",
            "ft2-ir5",
            "--bricks",
            "640",
            "--years",
            "1",
            "--seed",
            "3",
            "--estimator",
            "all",
            "--cycles",
            "3000",
        ])
        .unwrap();
        assert!(out.contains("crosscheck importance: PASS"), "{out}");
        assert!(out.contains("crosscheck splitting: PASS"), "{out}");
    }

    #[test]
    fn inject_lists_plans() {
        let out = run(&["inject", "--plan", "list"]).unwrap();
        for name in FaultPlan::names() {
            assert!(out.contains(name), "missing plan {name}");
        }
    }

    #[test]
    fn inject_reports_campaign_summary() {
        let out = run(&[
            "inject", "--plan", "burst", "--config", "ft1-nir", "--runs", "20", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("survived:"));
        assert!(out.contains("degraded time:"));
        assert!(out.contains("data-loss events:"));
        // The burst plan overwhelms FT1, so losses (and their replay
        // seeds) must be reported, along with the aggregated post-mortem
        // signatures.
        assert!(out.contains("loss seeds"));
        assert!(out.contains("top loss signatures:"), "{out}");
        assert!(out.contains("LOSS "), "{out}");
        assert!(run(&["inject", "--plan", "no-such-plan"]).is_err());
    }

    #[test]
    fn inject_replay_is_deterministic() {
        let argv = [
            "inject", "--plan", "brownout", "--config", "ft2-nir", "--replay", "11",
        ];
        let a = run(&argv).unwrap();
        let b = run(&argv).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("outcome:"));
        assert!(a.contains("h  "), "expected a rendered event trace");
    }

    #[test]
    fn rare_runs_small() {
        let out = run(&[
            "rare", "--config", "ft2-ir5", "--cycles", "4000", "--seed", "3",
        ])
        .unwrap();
        assert!(out.contains("IS MTTDL"));
    }

    #[test]
    fn figures_writes_files() {
        let dir = std::env::temp_dir().join(format!("nsr-fig-test-{}", std::process::id()));
        let out = run(&["figures", "--out", dir.to_str().unwrap()]).unwrap();
        assert!(out.lines().count() >= 10);
        assert!(dir.join("fig13_baseline.csv").exists());
        assert!(dir.join("fig16_rebuild_block_size.csv").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mission_reports_probabilities() {
        let out = run(&["mission", "--config", "ft2-ir5", "--years", "5"]).unwrap();
        assert!(out.contains("P(data loss within"));
        assert!(run(&["mission"]).is_err());
    }

    #[test]
    fn plan_lists_feasible_configs() {
        let out = run(&["plan"]).unwrap();
        assert!(out.contains("FT 2, Internal RAID 5"));
        assert!(out.contains("rebuild block"));
        let none = run(&["plan", "--target", "1e-30"]).unwrap();
        assert!(none.contains("none"));
    }

    #[test]
    fn plan_grid_table_csv_and_explain() {
        let grid = &[
            "plan",
            "--grid",
            "--grid-k",
            "2,5",
            "--grid-t",
            "1,2",
            "--grid-spares",
            "0.25",
            "--grid-bw",
            "0.1",
        ];
        let table = run(grid).unwrap();
        assert!(table.contains("Pareto frontier"));
        assert!(table.contains("elimination programs"));

        let mut csv_args = grid.to_vec();
        csv_args.push("--csv");
        let csv = run(&csv_args).unwrap();
        assert!(csv.starts_with("nodes,data_shards,node_ft,internal,"));
        assert!(csv.lines().count() >= 2);

        let mut explain_args = grid.to_vec();
        explain_args.push("--explain");
        let explained = run(&explain_args).unwrap();
        assert!(explained.contains("decision records"));
        assert!(explained.contains("uniformized"));

        assert!(run(&["plan", "--grid", "--grid-ir", "raidz"]).is_err());
    }

    #[test]
    fn plan_grid_csv_invariant_to_workers_and_pruning() {
        let base = run(&["plan", "--grid", "--csv"]).unwrap();
        for extra in [
            vec!["--workers", "4"],
            vec!["--workers", "auto"],
            vec!["--exhaustive"],
            vec!["--exhaustive", "--workers", "3"],
        ] {
            let mut words = vec!["plan", "--grid", "--csv"];
            words.extend(&extra);
            let out = run(&words).unwrap();
            assert_eq!(base, out, "{extra:?}");
        }
    }

    #[test]
    fn spares_reports_lifetime() {
        let out = run(&["spares", "--years", "5"]).unwrap();
        assert!(out.contains("expected lifetime"));
        assert!(out.contains("capacity erosion"));
    }

    #[test]
    fn aging_compares_distributions() {
        let out = run(&[
            "aging",
            "--config",
            "ft1-nir",
            "--samples",
            "60",
            "--shape",
            "2.0",
        ])
        .unwrap();
        assert!(out.contains("Weibull"));
        assert!(out.contains("Markov-assumption error"));
    }

    #[test]
    fn bench_smoke_writes_and_checks_reports() {
        let dir = std::env::temp_dir().join(format!("nsr-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_str().unwrap();
        let out = run(&["bench", "--suite", "erasure", "--smoke", "--out-dir", dir_s]).unwrap();
        assert!(out.contains("mode: smoke"));
        assert!(out.contains("seed_baseline/"));
        assert!(dir.join("BENCH_erasure.json").exists());

        let checked = run(&["bench", "--suite", "erasure", "--check", "--out-dir", dir_s]).unwrap();
        assert!(checked.contains("valid"));

        // A corrupted report must fail --check.
        std::fs::write(dir.join("BENCH_erasure.json"), "{\"schema\": \"bogus\"}").unwrap();
        assert!(run(&["bench", "--suite", "erasure", "--check", "--out-dir", dir_s]).is_err());

        assert!(run(&["bench", "--suite", "warp"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_compare_diffs_reports() {
        let dir = std::env::temp_dir().join(format!("nsr-cmp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("old.json");
        let new = dir.join("new.json");
        let report = |ns: f64| {
            format!(
                "{{\"schema\":\"nsr-bench/v1\",\"suite\":\"solvers\",\"mode\":\"full\",\
                 \"results\":[{{\"name\":\"a/x\",\"ns_per_iter\":{ns},\
                 \"bytes_per_iter\":0,\"mib_per_s\":null}}]}}"
            )
        };
        std::fs::write(&old, report(1000.0)).unwrap();
        std::fs::write(&new, report(400.0)).unwrap();
        let out = run(&[
            "bench",
            "--compare",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("no regressions"), "{out}");
        assert!(out.contains("2.50x"), "{out}");

        // Comparing in the slow direction fails past the threshold…
        let err = run(&[
            "bench",
            "--compare",
            new.to_str().unwrap(),
            old.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.0.contains("REGRESS"), "{err}");
        // …unless the threshold is loosened.
        let ok = run(&[
            "bench",
            "--compare",
            new.to_str().unwrap(),
            old.to_str().unwrap(),
            "--threshold",
            "200",
        ])
        .unwrap();
        assert!(ok.contains("no regressions"), "{ok}");

        // …or the regressing case is excluded by an --only prefix that
        // matches nothing of it (here: no case at all, a usage error),
        // while a matching prefix still sees the regression.
        assert!(run(&[
            "bench",
            "--compare",
            new.to_str().unwrap(),
            old.to_str().unwrap(),
            "--only",
            "zzz/",
        ])
        .unwrap_err()
        .0
        .contains("matches no case"));
        let err = run(&[
            "bench",
            "--compare",
            new.to_str().unwrap(),
            old.to_str().unwrap(),
            "--only",
            "a/",
        ])
        .unwrap_err();
        assert!(err.0.contains("only cases under `a/`"), "{err}");

        // Missing second path is a usage error.
        assert!(run(&["bench", "--compare", old.to_str().unwrap()]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chain_exports_dot() {
        let out = run(&["chain", "--config", "ft2-nir"]).unwrap();
        assert!(out.contains("digraph ctmc"));
        assert!(out.contains("doublecircle"));
        assert!(run(&["chain"]).is_err());
    }

    #[test]
    fn report_generates_markdown() {
        let out = run(&["report"]).unwrap();
        assert!(out.contains("# Reliability report"));
        assert!(out.contains("| FT 2, Internal RAID 5 |"));
        assert!(out.contains("trapped (must be 0)"));
    }

    #[test]
    fn sim_writes_metrics_and_trace_files() {
        // Single test for the whole obs pipeline (enable → run → snapshot
        // → validate): keeping it to one test avoids races on the global
        // metric state between parallel test threads.
        let dir = std::env::temp_dir().join(format!("nsr-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.jsonl");
        let trace = dir.join("trace.jsonl");
        let out = run(&[
            "sim",
            "--config",
            "ft1-nir",
            "--samples",
            "40",
            "--threads",
            "2",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("simulated MTTDL"));
        assert!(out.contains("metric records"));
        assert!(out.contains("trace records"));
        // Both layers are switched off again after the command.
        assert!(!nsr_obs::metrics_enabled());
        assert!(!nsr_obs::trace_enabled());

        // The snapshots validate and carry the headline metrics.
        let checked = run(&[
            "obs-check",
            "--file",
            metrics.to_str().unwrap(),
            "--require",
            "sim.samples,sim.worker.samples_per_s,markov.absorbing.gth_fallback,\
             erasure.plan_cache.hit_rate",
        ])
        .unwrap();
        assert!(checked.contains("valid nsr-obs/v1"));
        assert!(checked.contains("required names present"));
        let text = std::fs::read_to_string(&metrics).unwrap();
        let samples_line = text
            .lines()
            .find(|l| l.contains("\"sim.samples\""))
            .expect("sim.samples metric present");
        assert!(samples_line.contains("\"value\":40"), "{samples_line}");

        // The trace validates too and contains the per-worker events.
        run(&["obs-check", "--file", trace.to_str().unwrap()]).unwrap();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("\"sim.worker\""), "{trace_text}");

        // A demanded-but-absent metric fails the check.
        assert!(run(&[
            "obs-check",
            "--file",
            metrics.to_str().unwrap(),
            "--require",
            "no.such.metric",
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_check_validates_handwritten_files() {
        let dir = std::env::temp_dir().join(format!("nsr-obs-check-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.jsonl");
        std::fs::write(
            &good,
            concat!(
                "{\"schema\":\"nsr-obs/v1\",\"kind\":\"meta\",\"source\":\"t\"}\n",
                "{\"schema\":\"nsr-obs/v1\",\"kind\":\"counter\",\"name\":\"a.b\",\"value\":2}\n",
            ),
        )
        .unwrap();
        let out = run(&["obs-check", "--file", good.to_str().unwrap()]).unwrap();
        assert!(out.contains("2 records"));

        let bad = dir.join("bad.jsonl");
        std::fs::write(
            &bad,
            "{\"schema\":\"nsr-obs/v1\",\"kind\":\"counter\",\"name\":\"a\",\"value\":-1}\n",
        )
        .unwrap();
        let err = run(&["obs-check", "--file", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.0.contains("line 1"), "{err}");

        assert!(run(&["obs-check"]).is_err()); // --file required
        assert!(run(&["obs-check", "--file", "/no/such/file.jsonl"]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_names_the_solver_tier() {
        // FT7's 257-state recursive chain is big and sparse enough for
        // the sparse tier; the FT2 internal-RAID chain (5 states) is not.
        let sparse = run(&["explain", "ft7-nir"]).unwrap();
        assert!(sparse.contains("decision record for FT 7"), "{sparse}");
        assert!(sparse.contains("solver tier:      sparse GTH"), "{sparse}");
        assert!(sparse.contains("GTH fallback:     not engaged"), "{sparse}");
        assert!(sparse.contains("closed-form error:"), "{sparse}");

        let dense = run(&["explain", "--config", "ft2-ir5"]).unwrap();
        assert!(dense.contains("solver tier:      dense GTH"), "{dense}");
        assert!(dense.contains("crossover link:"), "{dense}");

        assert!(run(&["explain"]).is_err()); // config required
        assert!(run(&["explain", "ft0-zzz"]).is_err());
    }

    #[test]
    fn report_artifact_mode_renders_and_checks() {
        let dir = std::env::temp_dir().join(format!("nsr-report-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.jsonl");
        std::fs::write(
            &metrics,
            concat!(
                "{\"schema\":\"nsr-obs/v1\",\"kind\":\"meta\",\"source\":\"t\"}\n",
                "{\"schema\":\"nsr-obs/v1\",\"kind\":\"counter\",\"name\":\"c.x\",\"value\":7}\n",
                "{\"schema\":\"nsr-obs/v1\",\"kind\":\"histogram\",\"name\":\"h.y\",\"count\":4,",
                "\"sum\":6,\"min\":1,\"max\":2,\"overflow\":0,",
                "\"buckets\":[{\"le\":1,\"count\":2},{\"le\":2,\"count\":2}]}\n",
            ),
        )
        .unwrap();
        let trace = dir.join("trace.jsonl");
        std::fs::write(
            &trace,
            concat!(
                "{\"schema\":\"nsr-obs/v2\",\"kind\":\"span\",\"name\":\"outer\",\"at_s\":0,",
                "\"dur_s\":0.004,\"span_id\":1,\"thread\":0,\"seq\":0}\n",
                "{\"schema\":\"nsr-obs/v2\",\"kind\":\"span\",\"name\":\"inner\",\"at_s\":0,",
                "\"dur_s\":0.001,\"span_id\":2,\"parent_id\":1,\"thread\":0,\"seq\":1}\n",
                "{\"schema\":\"nsr-obs/v2\",\"kind\":\"event\",\"name\":\"tick\",\"at_s\":0,",
                "\"parent_id\":2,\"thread\":0,\"seq\":2}\n",
            ),
        )
        .unwrap();
        let bench_dir = dir.join("bench");
        std::fs::create_dir_all(&bench_dir).unwrap();
        let report = |ns: f64| {
            format!(
                "{{\"schema\":\"nsr-bench/v1\",\"suite\":\"obs\",\"mode\":\"smoke\",\
                 \"results\":[{{\"name\":\"a/x\",\"ns_per_iter\":{ns},\
                 \"bytes_per_iter\":0,\"mib_per_s\":null}}]}}"
            )
        };
        std::fs::write(bench_dir.join("BENCH_obs.json"), report(120.0)).unwrap();
        let base_dir = dir.join("baseline");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::write(base_dir.join("BENCH_obs.json"), report(100.0)).unwrap();

        let md = run(&[
            "report",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--bench-dir",
            bench_dir.to_str().unwrap(),
            "--bench-baseline",
            base_dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(md.contains("# Flight-recorder report"), "{md}");
        assert!(md.contains("| c.x | counter | 7 |"), "{md}");
        // p50 of {1,1,2,2} is the le=1 bucket; p99 the le=2 bucket.
        assert!(
            md.contains("| h.y | 4 | 1.000e0 | 2.000e0 | 2.000e0 | 2.000e0 |"),
            "{md}"
        );
        // The span tree nests inner under outer, with self-time netted.
        assert!(md.contains("| outer | 1 | 4.000 | 3.000 |"), "{md}");
        assert!(
            md.contains("| &nbsp;&nbsp;inner | 1 | 1.000 | 1.000 |"),
            "{md}"
        );
        assert!(md.contains("| tick | 1 |"), "{md}");
        // Bench table carries the trajectory delta vs the baseline dir.
        assert!(md.contains("| a/x | 120.0 | — | +20.0% |"), "{md}");

        // --check validates without rendering.
        let checked = run(&["report", "--trace", trace.to_str().unwrap(), "--check"]).unwrap();
        assert!(checked.contains("span links resolve"), "{checked}");
        assert!(!checked.contains("# Flight-recorder"), "{checked}");

        // A trace with an orphan parent fails --check.
        let orphan = dir.join("orphan.jsonl");
        std::fs::write(
            &orphan,
            "{\"schema\":\"nsr-obs/v2\",\"kind\":\"span\",\"name\":\"s\",\"at_s\":0,\
             \"dur_s\":0,\"span_id\":1,\"parent_id\":99,\"thread\":0,\"seq\":0}\n",
        )
        .unwrap();
        assert!(run(&["report", "--trace", orphan.to_str().unwrap(), "--check"]).is_err());

        // Legacy reproduction report is untouched by the new mode.
        assert!(run(&["report"]).unwrap().contains("# Reliability report"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_check_kind_name_patterns_and_span_links() {
        let dir = std::env::temp_dir().join(format!("nsr-obs-v2-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.jsonl");
        std::fs::write(
            &good,
            concat!(
                "{\"schema\":\"nsr-obs/v2\",\"kind\":\"span\",\"name\":\"core.evaluate\",",
                "\"at_s\":0,\"dur_s\":0.5,\"span_id\":1,\"thread\":0,\"seq\":0}\n",
                "{\"schema\":\"nsr-obs/v2\",\"kind\":\"event\",\"name\":\"tick\",\"at_s\":0,",
                "\"parent_id\":1,\"thread\":0,\"seq\":1}\n",
            ),
        )
        .unwrap();
        let path = good.to_str().unwrap();
        // Bare names match any kind; kind:name demands the exact kind.
        let out = run(&[
            "obs-check",
            "--file",
            path,
            "--require",
            "core.evaluate,span:core.evaluate,event:tick",
        ])
        .unwrap();
        assert!(out.contains("required names present"), "{out}");
        assert!(run(&[
            "obs-check",
            "--file",
            path,
            "--require",
            "event:core.evaluate"
        ])
        .is_err());
        assert!(run(&["obs-check", "--file", path, "--require", "span:tick"]).is_err());

        // A parent_id pointing at a span that was never emitted is a
        // structural failure even though every line validates alone.
        let orphan = dir.join("orphan.jsonl");
        std::fs::write(
            &orphan,
            "{\"schema\":\"nsr-obs/v2\",\"kind\":\"event\",\"name\":\"tick\",\"at_s\":0,\
             \"parent_id\":7,\"thread\":0,\"seq\":0}\n",
        )
        .unwrap();
        let err = run(&["obs-check", "--file", orphan.to_str().unwrap()]).unwrap_err();
        assert!(err.0.contains("parent_id"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_with_overrides() {
        let out = run(&["eval", "--config", "ft2-nir", "--drive-mttf", "750000"]).unwrap();
        assert!(out.contains("FT 2, No Internal RAID"));
    }
}
