//! The `nsr` command-line tool. All logic lives in `nsr_cli`; this shim
//! parses `std::env::args`, dispatches, and sets the exit code.

use nsr_cli::args::ParsedArgs;
use nsr_cli::commands::{dispatch, USAGE};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{USAGE}");
        return;
    }
    match ParsedArgs::parse(argv).and_then(|args| dispatch(&args)) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
