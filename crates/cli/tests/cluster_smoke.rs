//! Drives the real `nsr` binary end to end: brick child processes,
//! kill -9 injection, rebuild, and the campaign determinism contract —
//! the verdict lines must be byte-identical across runs of the same
//! `(plan, seed, bricks)`.

use std::process::Command;

/// Runs `nsr` with `args` and returns (success, the verdict lines).
/// Timing-dependent `info` lines are excluded, mirroring ci.sh.
fn campaign_lines(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nsr"))
        .args(args)
        .output()
        .expect("spawn nsr");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    let lines: String = stdout
        .lines()
        .filter(|l| l.starts_with("campaign") || l.starts_with("verdict") || l.starts_with("loss "))
        .map(|l| format!("{l}\n"))
        .collect();
    (out.status.success(), lines)
}

#[test]
fn kill9_single_is_no_loss_and_deterministic() {
    let args = [
        "cluster-inject",
        "--bricks",
        "4",
        "--plan",
        "kill9-single",
        "--seed",
        "7",
    ];
    let (ok, first) = campaign_lines(&args);
    assert!(ok, "campaign failed:\n{first}");
    assert!(
        first.contains("verdict=NO-LOSS lost=0"),
        "single kill must never lose data:\n{first}"
    );
    let (ok2, second) = campaign_lines(&args);
    assert!(ok2);
    assert_eq!(first, second, "verdict lines must replay identically");
}

#[test]
fn kill9_burst_above_t_reports_typed_loss_deterministically() {
    // Seed 1 kills three adjacent bricks of six — more than t = 2 shards
    // gone for some objects, so the campaign must report *typed* loss
    // with per-object signatures, identically on every run.
    let args = [
        "cluster-inject",
        "--bricks",
        "6",
        "--plan",
        "kill9-burst",
        "--seed",
        "1",
    ];
    let (ok, first) = campaign_lines(&args);
    assert!(ok, "campaign failed:\n{first}");
    assert!(first.contains("verdict=LOSS"), "{first}");
    assert!(
        first.contains("loss obj="),
        "loss must carry signatures:\n{first}"
    );
    let (ok2, second) = campaign_lines(&args);
    assert!(ok2);
    assert_eq!(first, second, "loss signatures must replay identically");
}
