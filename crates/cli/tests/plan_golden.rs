//! Regression pin for the planner's Pareto frontier.
//!
//! The fixture in `tests/golden/plan_frontier_3x3x3.csv` is the frontier
//! of a 27-point k×t×RAID grid at the paper baseline. The planner's
//! determinism contract says this CSV is byte-identical for every worker
//! count and between the pruned and exhaustive modes — this test holds
//! all three to the captured bytes, so any drift in the batched solver,
//! the guard-band pruning, or the float formatting fails loudly.

use nsr_cli::args::ParsedArgs;
use nsr_cli::commands::dispatch;

const GRID: &[&str] = &[
    "plan",
    "--grid",
    "--grid-nodes",
    "64",
    "--grid-k",
    "2,4,6",
    "--grid-t",
    "1,2,3",
    "--grid-ir",
    "nir,ir5,ir6",
    "--grid-spares",
    "0.25",
    "--grid-bw",
    "0.1",
    "--csv",
];

fn run(extra: &[&str]) -> String {
    let words = GRID.iter().chain(extra).map(|s| s.to_string());
    dispatch(&ParsedArgs::parse(words).expect("parse")).expect("plan --grid succeeds")
}

#[test]
fn frontier_matches_fixture_for_any_worker_count_and_mode() {
    let golden = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden/plan_frontier_3x3x3.csv"),
    )
    .expect("read fixture");
    assert_eq!(run(&[]), golden, "pruned, 1 worker");
    assert_eq!(run(&["--workers", "4"]), golden, "pruned, 4 workers");
    assert_eq!(run(&["--exhaustive"]), golden, "exhaustive, 1 worker");
    assert_eq!(
        run(&["--exhaustive", "--workers", "4"]),
        golden,
        "exhaustive, 4 workers"
    );
}
