//! Cross-process telemetry plane, end to end with the real `nsr`
//! binary: a seeded kill -9 campaign with `--obs-dir` must emit one
//! stitched causal tree spanning the gateway and the brick child
//! processes, byte-identical (spans only) at every pool size and
//! worker count, and the live scrape path must serve `nsr top`.

use std::process::Command;

fn nsr(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nsr"))
        .args(args)
        .output()
        .expect("spawn nsr");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
    )
}

/// Runs the reference campaign into `dir` and returns the spans-only
/// view of the merged canonical trace. Events (detector φ, latencies)
/// carry wall-clock values and are excluded by contract — see DESIGN
/// §3k; the *span tree* is the replay-deterministic artifact.
fn campaign_spans(dir: &std::path::Path, pool: &str, workers: &str) -> String {
    let dir_s = dir.to_str().unwrap();
    let (ok, stdout) = nsr(&[
        "cluster-inject",
        "--bricks",
        "5",
        "--plan",
        "kill9-single",
        "--seed",
        "7",
        "--no-fault-writes",
        "--pool-size",
        pool,
        "--workers",
        workers,
        "--obs-dir",
        dir_s,
    ]);
    assert!(
        ok,
        "campaign failed (pool={pool} workers={workers}):\n{stdout}"
    );
    assert!(stdout.contains("verdict=NO-LOSS"), "{stdout}");
    let canonical = std::fs::read_to_string(dir.join("cluster.canonical.jsonl"))
        .expect("canonical trace written");
    canonical
        .lines()
        .filter(|l| l.contains("\"kind\":\"span\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn stitched_tree_spans_processes_and_replays_identically() {
    let tmp = std::env::temp_dir().join(format!("nsr-telemetry-{}", std::process::id()));
    let reference = campaign_spans(&tmp.join("p1w1"), "1", "1");

    // One causal tree rooted in the gateway campaign span, with remote
    // handler spans from at least two distinct brick processes hanging
    // off gateway-side data-op spans.
    assert!(
        reference.contains("gateway:net.cluster.campaign/gateway:net.put/brick-0:net.brick.put"),
        "gateway put must parent brick-0 handler spans:\n{reference}"
    );
    assert!(
        reference.contains("gateway:net.cluster.campaign/gateway:net.put/brick-1:net.brick.put"),
        "gateway put must parent brick-1 handler spans:\n{reference}"
    );
    // Verify-phase reads run as root net.get spans on worker threads.
    assert!(
        reference.contains("\"span_id\":\"gateway:net.get/brick-"),
        "verify gets must parent remote handler spans:\n{reference}"
    );

    // The span tree is a pure function of the seed: connection pooling
    // and verify parallelism must not change a byte of it.
    for (pool, workers) in [("2", "1"), ("8", "4"), ("1", "4")] {
        let spans = campaign_spans(&tmp.join(format!("p{pool}w{workers}")), pool, workers);
        assert_eq!(
            reference, spans,
            "spans-only canonical trace diverged at pool={pool} workers={workers}"
        );
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn report_cluster_checks_and_renders_obs_dir() {
    let tmp = std::env::temp_dir().join(format!("nsr-telemetry-rpt-{}", std::process::id()));
    campaign_spans(&tmp, "2", "1");
    let dir = tmp.to_str().unwrap();

    let (ok, stdout) = nsr(&["report", "--cluster", dir, "--check"]);
    assert!(ok, "report --check failed:\n{stdout}");
    assert!(stdout.contains("cross-process links resolve"), "{stdout}");

    let (ok, stdout) = nsr(&["report", "--cluster", dir]);
    assert!(ok, "report failed:\n{stdout}");
    assert!(stdout.contains("## Cross-process causal tree"), "{stdout}");
    assert!(stdout.contains("gateway.jsonl"), "{stdout}");
    assert!(stdout.contains("net.brick.put"), "{stdout}");
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn top_polls_a_live_brick_over_the_scrape_path() {
    let mut brick = Command::new(env!("CARGO_BIN_EXE_nsr"))
        .args(["brick", "--id", "0", "--listen", "127.0.0.1:0", "--obs"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn brick");

    // First stdout line announces the bound address.
    let addr = {
        use std::io::{BufRead, BufReader};
        let stdout = brick.stdout.take().expect("brick stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read");
        line.trim()
            .strip_prefix("LISTENING ")
            .expect("LISTENING line")
            .to_string()
    };

    let (ok, stdout) = nsr(&[
        "top",
        "--bricks",
        &addr,
        "--iterations",
        "2",
        "--interval-ms",
        "50",
        "--plain",
    ]);
    brick.kill().ok();
    brick.wait().ok();
    assert!(ok, "top failed:\n{stdout}");
    assert!(stdout.contains("--- tick 2 ---"), "{stdout}");
    // The brick's own label is learned from the scrape reply.
    assert!(stdout.contains("brick-0"), "{stdout}");
    assert!(
        stdout.contains("top: 2 frame(s) over 1 target(s)"),
        "{stdout}"
    );
}
