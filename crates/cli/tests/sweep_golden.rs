//! Regression pins for the analytic path.
//!
//! The fixtures in `tests/golden/` were captured from the pre-refactor
//! serial sweep code (before topology caching and the parallel sweep
//! engine existed). These tests regenerate every figure CSV through the
//! current `nsr figures` path — serially and with several workers — and
//! require the bytes to be identical to those fixtures, and pin the exact
//! MTTDL solves to 17 significant digits so any numeric drift in the
//! sparse/dense solver tiers fails loudly.

use nsr_cli::args::ParsedArgs;
use nsr_cli::commands::dispatch;
use nsr_core::config::Configuration;
use nsr_core::params::Params;
use nsr_core::recursive::RecursiveModel;
use nsr_core::units::PerHour;

/// Every CSV `nsr figures` writes, in the order the command reports them.
const GOLDEN_FILES: &[&str] = &[
    "fig13_baseline.csv",
    "fig14_drive_mttf_low_node_mttf.csv",
    "fig14_drive_mttf_high_node_mttf.csv",
    "fig15_node_mttf_low_drive_mttf.csv",
    "fig15_node_mttf_high_drive_mttf.csv",
    "fig16_rebuild_block_size.csv",
    "fig17_link_speed.csv",
    "fig18_node_set_size.csv",
    "fig19_redundancy_set_size.csv",
    "fig20_drives_per_node.csv",
    "ext_hard_error_rate.csv",
];

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nsr_sweep_golden_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_figures(out: &std::path::Path, workers: usize) {
    let args = ParsedArgs::parse([
        "figures".to_string(),
        "--out".to_string(),
        out.display().to_string(),
        "--workers".to_string(),
        workers.to_string(),
    ])
    .expect("parse figures args");
    dispatch(&args).expect("figures command succeeds");
}

#[test]
fn figure_csvs_match_pre_refactor_fixtures_for_any_worker_count() {
    // Worker counts past the row count exercise the clamp as well.
    for workers in [1usize, 3, 16] {
        let out = temp_dir(&format!("w{workers}"));
        run_figures(&out, workers);
        for name in GOLDEN_FILES {
            let expected = std::fs::read(golden_dir().join(name))
                .unwrap_or_else(|e| panic!("reading golden fixture {name}: {e}"));
            let actual = std::fs::read(out.join(name))
                .unwrap_or_else(|e| panic!("reading regenerated {name}: {e}"));
            assert_eq!(
                actual, expected,
                "{name} differs from the pre-refactor fixture at --workers {workers}"
            );
        }
        std::fs::remove_dir_all(&out).ok();
    }
}

/// `{:.17e}` pins of the exact and closed-form MTTDL (hours) for the nine
/// §3 configurations at baseline parameters, captured from the
/// pre-refactor dense-GTH serial path. Order matches
/// `Configuration::all_nine()`.
const NINE_CONFIG_PINS: &[(&str, &str, &str)] = &[
    (
        "FT 1, No Internal RAID",
        "1.69040787789197361e3",
        "1.32157117019107181e3",
    ),
    (
        "FT 1, Internal RAID 5",
        "1.84518089590272936e6",
        "1.83784268856283952e6",
    ),
    (
        "FT 1, Internal RAID 6",
        "9.79556445670604147e6",
        "9.78299586592418142e6",
    ),
    (
        "FT 2, No Internal RAID",
        "2.06067159530947879e7",
        "2.04845318875716142e7",
    ),
    (
        "FT 2, Internal RAID 5",
        "1.32619519414102859e10",
        "1.32435026469862328e10",
    ),
    (
        "FT 2, Internal RAID 6",
        "2.05313461565154915e10",
        "2.05085024320023689e10",
    ),
    (
        "FT 3, No Internal RAID",
        "1.94487672987144623e11",
        "1.93544594203049103e11",
    ),
    (
        "FT 3, Internal RAID 5",
        "5.35595026645455781e13",
        "5.35067066900708594e13",
    ),
    (
        "FT 3, Internal RAID 6",
        "6.05450202617098359e13",
        "6.04877490953573906e13",
    ),
];

#[test]
fn baseline_exact_solves_are_pinned_to_seventeen_digits() {
    let params = Params::baseline();
    let configs = Configuration::all_nine();
    assert_eq!(configs.len(), NINE_CONFIG_PINS.len());
    for (config, (name, exact, closed)) in configs.iter().zip(NINE_CONFIG_PINS) {
        assert_eq!(&format!("{config}"), name);
        let eval = config.evaluate(&params).expect("baseline evaluates");
        assert_eq!(
            format!("{:.17e}", eval.exact.mttdl_hours),
            *exact,
            "{name}: exact MTTDL drifted from the pre-refactor value"
        );
        assert_eq!(
            format!("{:.17e}", eval.closed_form.mttdl_hours),
            *closed,
            "{name}: closed-form MTTDL drifted from the pre-refactor value"
        );
    }
}

#[test]
fn deep_recursive_chains_are_pinned_to_seventeen_digits() {
    // k = 5 and k = 7 chains are large enough (m ≥ 16, sparse) to route
    // through the sparse GTH tier, so these pins prove the sparse
    // elimination is bit-identical to the dense oracle that captured them.
    for (k, exact, sector) in [
        (5, "1.00551663154525328e17", "2.67462455395728717e-4"),
        (7, "6.72097315611873085e22", "3.54507990736828565e-8"),
    ] {
        let model = RecursiveModel::new(
            k,
            64,
            8,
            12,
            PerHour(1.0 / 400_000.0),
            PerHour(1.0 / 300_000.0),
            PerHour(0.28),
            PerHour(3.24),
            0.024,
        )
        .expect("model builds");
        assert_eq!(
            format!("{:.17e}", model.mttdl_exact().expect("solves").0),
            exact,
            "k={k}: exact MTTDL drifted"
        );
        assert_eq!(
            format!("{:.17e}", model.sector_loss_share().expect("solves")),
            sector,
            "k={k}: sector-loss share drifted"
        );
    }
}
