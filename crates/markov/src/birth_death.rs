//! Closed-form solution of birth–death absorbing chains.
//!
//! Most reliability models in this workspace are birth–death chains
//! (states = number of outstanding failures) with absorption past the last
//! state. For those, the mean time to absorption has a classic
//! product-form solution computed with *only positive arithmetic*:
//!
//! ```text
//! T_i = 1/a_i + (b_i/a_i)·T_{i−1}          (first passage i → i+1)
//! MTTA = Σ_{i=0}^{m} T_i
//! ```
//!
//! where `a_i` is the forward (failure) rate out of state `i` and `b_i`
//! the backward (repair) rate. This module provides that solution both as
//! a convenience and as an *independent oracle* for the general
//! [`crate::AbsorbingAnalysis`] solver — the two are checked against each
//! other in tests at stiffness ratios where a naive LU solve would lose
//! every digit.

use crate::{Error, Result};

/// Mean time to absorption of the birth–death chain
/// `0 ⇄ 1 ⇄ … ⇄ m → absorbed`, starting from state 0.
///
/// `forward[i]` is the rate `i → i+1` for `i = 0..m` **plus** the final
/// absorption rate `m → A` as its last element (so `forward.len() == m+1`);
/// `backward[i]` is the repair rate `i+1 → i` (`backward.len() == m`).
///
/// # Errors
///
/// * [`Error::InvalidArgument`] if the lengths are inconsistent or any
///   rate is non-positive/non-finite.
///
/// # Example
///
/// ```
/// use nsr_markov::birth_death_mtta;
///
/// // Two-unit repairable system: 0→1 at 2λ, 1→0 at μ, 1→A at λ.
/// let (lam, mu) = (1e-3, 1.0);
/// let mtta = birth_death_mtta(&[2.0 * lam, lam], &[mu]).unwrap();
/// let exact = (3.0 * lam + mu) / (2.0 * lam * lam);
/// assert!((mtta - exact).abs() / exact < 1e-12);
/// ```
pub fn birth_death_mtta(forward: &[f64], backward: &[f64]) -> Result<f64> {
    if forward.is_empty() || backward.len() + 1 != forward.len() {
        return Err(Error::InvalidArgument {
            what: "need forward.len() == backward.len() + 1 >= 1",
        });
    }
    for &r in forward.iter().chain(backward) {
        if !(r > 0.0 && r.is_finite()) {
            return Err(Error::InvalidArgument {
                what: "birth-death rates must be positive and finite",
            });
        }
    }
    // T_i = expected first-passage time i -> i+1 (with i = m meaning
    // m -> absorbed). All-positive recurrence: exact at any stiffness.
    let mut t_prev = 0.0;
    let mut total = 0.0;
    for (i, &a) in forward.iter().enumerate() {
        let b = if i == 0 { 0.0 } else { backward[i - 1] };
        let t_i = (1.0 + b * t_prev) / a;
        total += t_i;
        t_prev = t_i;
    }
    Ok(total)
}

/// Probability that the chain, started in state 0, is absorbed without
/// ever returning to state 0 after its first departure — the regenerative
/// `γ` used by rare-event estimators, in product form:
///
/// ```text
/// γ = Π_{i=1}^{m} a_i/(a_i + b_i) · (corrections)
/// ```
///
/// computed exactly by backward recursion on
/// `u_i = P(absorb before reaching i−1 | at i)`:
/// `u_m = a_m/(a_m + b_m)`, `u_i = a_i·u_{i+1} / (a_i + b_i − b_... )` —
/// concretely `u_i = a_i u_{i+1} / (b_i + a_i u_{i+1})`.
///
/// # Errors
///
/// Same validation as [`birth_death_mtta`].
pub fn birth_death_gamma(forward: &[f64], backward: &[f64]) -> Result<f64> {
    if forward.len() < 2 || backward.len() + 1 != forward.len() {
        return Err(Error::InvalidArgument {
            what: "need forward.len() == backward.len() + 1 >= 2",
        });
    }
    for &r in forward.iter().chain(backward) {
        if !(r > 0.0 && r.is_finite()) {
            return Err(Error::InvalidArgument {
                what: "birth-death rates must be positive and finite",
            });
        }
    }
    let m = backward.len(); // states 1..=m have repairs
                            // u[i] = P(absorbed before reaching i-1 | currently at i), i = 1..=m.
                            // At the top state m: competes absorption a_m against repair b_m... but
                            // intermediate states first must *reach* m. Recurrence (standard gambler's
                            // ruin with absorption only past m):
                            //   u_m = a_m / (a_m + b_m)
                            //   u_i = a_i·u_{i+1} / (b_i + a_i·u_{i+1})   for i < m
                            // (derivation: from i, next move up w.p. a/(a+b); from i+1 it either
                            // absorbs (prob u_{i+1}) or falls back to i and retries.)
    let mut u = forward[m] / (forward[m] + backward[m - 1]);
    for i in (1..m).rev() {
        let a = forward[i];
        let b = backward[i - 1];
        u = a * u / (b + a * u);
    }
    Ok(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbsorbingAnalysis, CtmcBuilder};

    fn chain_of(forward: &[f64], backward: &[f64]) -> (crate::Ctmc, crate::StateId) {
        let mut b = CtmcBuilder::new();
        let states: Vec<_> = (0..forward.len())
            .map(|i| b.add_state(format!("{i}")))
            .collect();
        let dead = b.add_state("dead");
        for i in 0..forward.len() {
            let to = if i + 1 < forward.len() {
                states[i + 1]
            } else {
                dead
            };
            b.add_transition(states[i], to, forward[i]).unwrap();
            if i > 0 {
                b.add_transition(states[i], states[i - 1], backward[i - 1])
                    .unwrap();
            }
        }
        (b.build().unwrap(), states[0])
    }

    #[test]
    fn matches_two_state_closed_form() {
        let (lam, mu) = (2e-3, 0.7);
        let mtta = birth_death_mtta(&[2.0 * lam, lam], &[mu]).unwrap();
        let exact = (3.0 * lam + mu) / (2.0 * lam * lam);
        assert!((mtta - exact).abs() / exact < 1e-13);
    }

    #[test]
    fn agrees_with_gth_analysis_across_depths() {
        for depth in 1..=6usize {
            let forward: Vec<f64> = (0..=depth).map(|i| 1e-3 * (depth - i + 1) as f64).collect();
            let backward: Vec<f64> = (0..depth).map(|_| 0.5).collect();
            let product = birth_death_mtta(&forward, &backward).unwrap();
            let (ctmc, root) = chain_of(&forward, &backward);
            let gth = AbsorbingAnalysis::new(&ctmc)
                .unwrap()
                .mean_time_to_absorption(root)
                .unwrap();
            assert!(
                (product - gth).abs() / gth < 1e-11,
                "depth {depth}: product {product:.6e} vs gth {gth:.6e}"
            );
        }
    }

    #[test]
    fn agrees_with_gth_at_extreme_stiffness() {
        // μ/λ = 1e8 over 5 levels: κ ~ 1e40 — both methods must still agree
        // because both are subtraction-free.
        let forward = vec![1e-8; 6];
        let backward = vec![1.0; 5];
        let product = birth_death_mtta(&forward, &backward).unwrap();
        let (ctmc, root) = chain_of(&forward, &backward);
        let gth = AbsorbingAnalysis::new(&ctmc)
            .unwrap()
            .mean_time_to_absorption(root)
            .unwrap();
        assert!(
            (product - gth).abs() / gth < 1e-10,
            "{product:.6e} vs {gth:.6e}"
        );
        assert!(
            product > 1e39,
            "MTTA should be astronomically large: {product:.3e}"
        );
    }

    #[test]
    fn gamma_matches_absorption_before_return() {
        // Check γ against a brute-force modified chain where state 0 is
        // made absorbing on return: P(dead first) from state 1.
        let forward = vec![3e-3, 2e-3, 1e-3];
        let backward = vec![0.4, 0.6];
        let gamma = birth_death_gamma(&forward, &backward).unwrap();

        let mut b = CtmcBuilder::new();
        let home = b.add_state("home"); // return target (absorbing copy)
        let s1 = b.add_state("1");
        let s2 = b.add_state("2");
        let dead = b.add_state("dead");
        b.add_transition(s1, s2, forward[1]).unwrap();
        b.add_transition(s1, home, backward[0]).unwrap();
        b.add_transition(s2, dead, forward[2]).unwrap();
        b.add_transition(s2, s1, backward[1]).unwrap();
        let c = b.build().unwrap();
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let p = an.absorption_probability(s1, dead).unwrap();
        assert!((gamma - p).abs() / p < 1e-12, "γ {gamma} vs {p}");
    }

    #[test]
    fn validation() {
        assert!(birth_death_mtta(&[], &[]).is_err());
        assert!(birth_death_mtta(&[1.0, 1.0], &[]).is_err());
        assert!(birth_death_mtta(&[1.0, 0.0], &[1.0]).is_err());
        assert!(birth_death_mtta(&[1.0, f64::NAN], &[1.0]).is_err());
        assert!(birth_death_gamma(&[1.0], &[]).is_err());
        assert!(birth_death_gamma(&[1.0, -1.0], &[1.0]).is_err());
    }

    #[test]
    fn single_state_is_pure_exponential() {
        assert!((birth_death_mtta(&[0.25], &[]).unwrap() - 4.0).abs() < 1e-15);
    }
}
