//! Sparse absorbing-chain elimination.
//!
//! Reliability chains are sparse: the recursive appendix model has
//! `2^(k+1) − 1` transient states but only ~3 transitions per state, and
//! the internal-RAID chains are birth–death. The dense GTH elimination in
//! [`crate::AbsorbingAnalysis`] spends `O(m²)` per elimination step
//! scanning structural zeros; this module stores the transient-to-transient
//! rates CSR-style (one sorted row of `(column, rate)` pairs per state)
//! and eliminates only actual nonzeros, tracking the fill it creates.
//!
//! The arithmetic is *identical* to the dense route — same elimination
//! order, same accumulation order within each row (columns ascending),
//! zeros contributing exact `+0.0` identities — so the sparse result is
//! bit-for-bit the dense result, which the dense oracle tests pin. For
//! the recursive chains the BFS state order makes elimination fill-free
//! (folding a leaf touches only its parent), so a solve costs `O(edges)`
//! instead of `O(m²)`–`O(m³)`.

use crate::builder::StateId;
use crate::ctmc::Ctmc;
use crate::{Error, Result};

/// Sparse generator restricted to the transient states of an absorbing
/// chain: CSR-style rows of transient-to-transient rates plus the dense
/// vector of rates into the absorbing class.
#[derive(Debug, Clone)]
pub struct SparseAbsorption {
    /// `rows[i]` lists `(j, rate)` for transient-to-transient transitions
    /// `i → j`, sorted by column.
    rows: Vec<Vec<(usize, f64)>>,
    /// `qa[i]` = total rate from transient state `i` into *all* absorbing
    /// states.
    qa: Vec<f64>,
}

/// Result of one sparse GTH elimination pass.
#[derive(Debug, Clone)]
pub struct SparseSolution {
    /// The solution of `R·x = rhs` over the transient states.
    pub x: Vec<f64>,
    /// The elimination pivots (exit rates `D_t`); their product is
    /// `det(R)`.
    pub pivots: Vec<f64>,
    /// Number of fill entries the elimination created beyond the input's
    /// structural nonzeros.
    pub fill: usize,
}

impl SparseAbsorption {
    /// Extracts the sparse transient structure of `ctmc`, with `transient`
    /// giving the row order (as produced by [`Ctmc::transient_states`])
    /// and `pos` mapping global state index → transient row.
    pub(crate) fn from_ctmc(
        ctmc: &Ctmc,
        transient: &[StateId],
        pos: &std::collections::HashMap<usize, usize>,
    ) -> Self {
        let m = transient.len();
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut qa = vec![0.0; m];
        for (i, &s) in transient.iter().enumerate() {
            for &(to, rate) in ctmc.transitions_from(s) {
                if let Some(&j) = pos.get(&to.0) {
                    match rows[i].binary_search_by_key(&j, |e| e.0) {
                        Ok(k) => rows[i][k].1 += rate,
                        Err(k) => rows[i].insert(k, (j, rate)),
                    }
                } else {
                    qa[i] += rate;
                }
            }
        }
        SparseAbsorption { rows, qa }
    }

    /// Rates into one specific absorbing state, as a right-hand side for
    /// absorption-probability solves.
    pub(crate) fn rates_into(
        ctmc: &Ctmc,
        transient: &[StateId],
        pos: &std::collections::HashMap<usize, usize>,
        target: StateId,
    ) -> Vec<f64> {
        let mut r = vec![0.0; transient.len()];
        for (i, &s) in transient.iter().enumerate() {
            for &(to, rate) in ctmc.transitions_from(s) {
                if to == target && !pos.contains_key(&to.0) {
                    r[i] += rate;
                }
            }
        }
        r
    }

    /// Number of transient states.
    pub fn dim(&self) -> usize {
        self.qa.len()
    }

    /// Number of stored transient-to-transient nonzeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Density of the transient-to-transient block, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let m = self.dim();
        if m == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (m * m) as f64
    }

    /// Subtraction-free GTH elimination of `R·x = rhs` on the sparse
    /// structure: states are folded from the highest index down, exit
    /// rates recomputed as sums, and only structural nonzeros visited.
    /// Identical arithmetic to the dense oracle, so results match it
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Linalg`] ([`nsr_linalg::Error::Singular`]) if some
    /// state cannot reach absorption once higher states are eliminated.
    pub fn gth_solve(&self, mut rhs: Vec<f64>) -> Result<SparseSolution> {
        let m = self.dim();
        debug_assert_eq!(rhs.len(), m);
        let mut rows = self.rows.clone();
        let mut qa = self.qa.clone();
        // Column index: cols[j] lists rows i (ascending) with a stored
        // entry at (i, j). Maintained as fill is inserted so elimination
        // can walk "who feeds state t" without scanning all rows.
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, row) in rows.iter().enumerate() {
            for &(j, _) in row {
                cols[j].push(i);
            }
        }
        let mut fill = 0usize;
        let mut exit = vec![0.0; m];

        for t in (0..m).rev() {
            // Exit rate: absorption plus the remaining (j < t) rates, in
            // ascending column order — the dense loop's order.
            let mut d = qa[t];
            for &(j, rate) in &rows[t] {
                if j >= t {
                    break;
                }
                d += rate;
            }
            if d <= 0.0 {
                return Err(Error::Linalg(nsr_linalg::Error::Singular { pivot: t }));
            }
            exit[t] = d;
            // Snapshot row t's live prefix (the entries that get folded
            // into the predecessors of t).
            let row_t: Vec<(usize, f64)> = rows[t]
                .iter()
                .take_while(|&&(j, _)| j < t)
                .copied()
                .collect();
            let (r_t, qa_t) = (rhs[t], qa[t]);
            // Fold state t into every remaining state that feeds it,
            // ascending — the dense loop's i order. `cols[t]` is sorted
            // and fill never lands in column t (entries are only added at
            // (i, j) with j < t while eliminating t), so draining it here
            // is safe.
            let feeders = std::mem::take(&mut cols[t]);
            for i in feeders {
                if i >= t {
                    continue;
                }
                let qit = match rows[i].binary_search_by_key(&t, |e| e.0) {
                    Ok(k) => rows[i][k].1,
                    Err(_) => continue,
                };
                let f = qit / d;
                if f == 0.0 {
                    continue;
                }
                rhs[i] += f * r_t;
                qa[i] += f * qa_t;
                for &(j, qtj) in &row_t {
                    if j == i {
                        continue;
                    }
                    let add = f * qtj;
                    if add > 0.0 {
                        match rows[i].binary_search_by_key(&j, |e| e.0) {
                            Ok(k) => rows[i][k].1 += add,
                            Err(k) => {
                                rows[i].insert(k, (j, add));
                                // Keep the column index sorted: only rows
                                // i < t are touched, and cols[j] may
                                // already list i from the original
                                // structure check above (it cannot — a
                                // miss in rows[i] means no stored entry).
                                let c = &mut cols[j];
                                match c.binary_search(&i) {
                                    Ok(_) => {}
                                    Err(p) => c.insert(p, i),
                                }
                                fill += 1;
                            }
                        }
                    }
                }
            }
        }

        // Back-substitution: x_t = (rhs_t + Σ_{j<t} q_tj·x_j) / D_t, the
        // j-ascending accumulation of the dense route.
        let mut x = vec![0.0; m];
        for t in 0..m {
            let mut acc = rhs[t];
            for &(j, qtj) in &rows[t] {
                if j >= t {
                    break;
                }
                acc += qtj * x[j];
            }
            x[t] = acc / exit[t];
        }
        Ok(SparseSolution {
            x,
            pivots: exit,
            fill,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn analysis_parts(ctmc: &Ctmc) -> (SparseAbsorption, Vec<StateId>) {
        let transient = ctmc.transient_states();
        let pos: std::collections::HashMap<usize, usize> = transient
            .iter()
            .enumerate()
            .map(|(i, s)| (s.0, i))
            .collect();
        (
            SparseAbsorption::from_ctmc(ctmc, &transient, &pos),
            transient,
        )
    }

    #[test]
    fn birth_death_chain_solves_without_fill() {
        let lam = 1e-6;
        let mu = 1.0;
        let depth = 6;
        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> = (0..=depth).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..depth {
            b.add_transition(states[i], states[i + 1], lam).unwrap();
            b.add_transition(states[i + 1], states[i], mu).unwrap();
        }
        b.add_transition(states[depth], dead, lam).unwrap();
        let c = b.build().unwrap();
        let (sp, transient) = analysis_parts(&c);
        assert_eq!(sp.dim(), depth + 1);
        assert_eq!(sp.nnz(), 2 * depth);
        let sol = sp.gth_solve(vec![1.0; transient.len()]).unwrap();
        assert_eq!(sol.fill, 0, "birth–death elimination must be fill-free");

        // Exact product-form first-passage recurrence.
        let mut t_prev = 0.0;
        let mut total = 0.0;
        for i in 0..=depth {
            let b_i = if i == 0 { 0.0 } else { mu };
            let t_i = 1.0 / lam + (b_i / lam) * t_prev;
            total += t_i;
            t_prev = t_i;
        }
        assert!((sol.x[0] - total).abs() / total < 1e-10);
    }

    #[test]
    fn unreachable_absorption_is_singular() {
        let mut b = CtmcBuilder::new();
        let x = b.add_state("x");
        let y = b.add_state("y");
        b.add_state("z");
        b.add_transition(x, y, 1.0).unwrap();
        b.add_transition(y, x, 1.0).unwrap();
        let c = b.build().unwrap();
        let (sp, transient) = analysis_parts(&c);
        assert!(sp.gth_solve(vec![1.0; transient.len()]).is_err());
    }

    #[test]
    fn dense_cycle_creates_fill_but_stays_exact() {
        // A 4-cycle eliminates with fill; the answer must match the
        // 2-state closed form obtained by symmetry. 0→1→2→3→0 plus
        // absorption from state 2.
        let mut b = CtmcBuilder::new();
        let s: Vec<StateId> = (0..4).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..4 {
            b.add_transition(s[i], s[(i + 1) % 4], 1.0).unwrap();
        }
        b.add_transition(s[2], dead, 2.0).unwrap();
        let c = b.build().unwrap();
        let (sp, transient) = analysis_parts(&c);
        let sol = sp.gth_solve(vec![1.0; transient.len()]).unwrap();
        assert!(sol.fill > 0);
        // From state 2: exit 3 (rate 1 to s3, 2 to dead). By first-step
        // analysis the chain is a Markov chain small enough to hand-solve:
        // x2 = 1/3 + (1/3)x3, x3 = 1 + x0, x0 = 1 + x1, x1 = 1 + x2.
        // Substituting: x2 = 1/3 + 1/3(3 + x2) → x2 = 2, x0 = 4.
        assert!((sol.x[2] - 2.0).abs() < 1e-12, "{}", sol.x[2]);
        assert!((sol.x[0] - 4.0).abs() < 1e-12, "{}", sol.x[0]);
    }

    #[test]
    fn density_reports() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a");
        let z = b.add_state("z");
        b.add_transition(a, z, 1.0).unwrap();
        let c = b.build().unwrap();
        let (sp, _) = analysis_parts(&c);
        assert_eq!(sp.dim(), 1);
        assert_eq!(sp.nnz(), 0);
        assert_eq!(sp.density(), 0.0);
    }
}
