//! Graphviz export of a chain — the executable equivalent of the paper's
//! Markov-model figures (1, 4–10).
//!
//! The reliability chains in this workspace are built programmatically;
//! rendering them makes review against the paper's diagrams mechanical:
//!
//! ```text
//! cargo run -p nsr-cli -- eval --config ft2-nir   # numbers
//! dot -Tsvg chain.dot -o chain.svg                # the picture
//! ```

use std::fmt::Write as _;

use crate::ctmc::Ctmc;

/// Options for [`to_dot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DotOptions {
    /// Print rates in scientific notation with this many significant
    /// digits.
    pub rate_digits: usize,
    /// Render left-to-right (like the paper's figures) instead of
    /// top-down.
    pub rankdir_lr: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            rate_digits: 3,
            rankdir_lr: true,
        }
    }
}

/// Renders the chain in Graphviz `dot` syntax. Absorbing states are drawn
/// as double circles (the paper's data-loss states); every edge is
/// labelled with its rate.
///
/// # Example
///
/// ```
/// use nsr_markov::{CtmcBuilder, to_dot, DotOptions};
///
/// # fn main() -> Result<(), nsr_markov::Error> {
/// let mut b = CtmcBuilder::new();
/// let up = b.add_state("up");
/// let down = b.add_state("down");
/// b.add_transition(up, down, 0.5)?;
/// let dot = to_dot(&b.build()?, DotOptions::default());
/// assert!(dot.contains("digraph ctmc"));
/// assert!(dot.contains("doublecircle"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(ctmc: &Ctmc, options: DotOptions) -> String {
    let mut out = String::from("digraph ctmc {\n");
    if options.rankdir_lr {
        out.push_str("  rankdir=LR;\n");
    }
    out.push_str("  node [shape=circle, fontsize=11];\n");
    for s in ctmc.states() {
        let shape = if ctmc.is_absorbing(s) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(
            out,
            "  s{} [label=\"{}\", shape={shape}];",
            s.index(),
            escape(ctmc.label(s))
        );
    }
    for t in ctmc.transitions() {
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{:.*e}\"];",
            t.from.index(),
            t.to.index(),
            options.rate_digits.saturating_sub(1),
            t.rate
        );
    }
    out.push_str("}\n");
    out
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn chain() -> Ctmc {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("failed:0");
        let c = b.add_state("failed:1");
        let dead = b.add_state("loss \"x\"");
        b.add_transition(a, c, 1.5e-4).unwrap();
        b.add_transition(c, a, 0.28).unwrap();
        b.add_transition(c, dead, 2.0e-4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn contains_every_state_and_edge() {
        let dot = to_dot(&chain(), DotOptions::default());
        assert!(dot.starts_with("digraph ctmc {"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("->").count(), 3);
        assert!(dot.contains("failed:0"));
        assert!(dot.contains("rankdir=LR"));
    }

    #[test]
    fn absorbing_states_are_double_circles() {
        let dot = to_dot(&chain(), DotOptions::default());
        assert_eq!(dot.matches("doublecircle").count(), 1);
    }

    #[test]
    fn labels_are_escaped() {
        let dot = to_dot(&chain(), DotOptions::default());
        assert!(dot.contains("loss \\\"x\\\""));
    }

    #[test]
    fn options_respected() {
        let dot = to_dot(
            &chain(),
            DotOptions {
                rate_digits: 5,
                rankdir_lr: false,
            },
        );
        assert!(!dot.contains("rankdir"));
        assert!(dot.contains("1.5000e-4") || !dot.contains("1.5000e4"));
    }
}
