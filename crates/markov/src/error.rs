use std::fmt;

/// Errors produced while building or analyzing a CTMC.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A transition rate was negative, NaN or infinite.
    InvalidRate {
        /// Index of the source state.
        from: usize,
        /// Index of the destination state.
        to: usize,
        /// The offending rate.
        rate: f64,
    },
    /// A transition referenced a state id that was not created by the same
    /// builder.
    UnknownState {
        /// The offending state index.
        state: usize,
        /// Number of states the chain actually has.
        len: usize,
    },
    /// A transition from a state to itself was requested; self-loops are
    /// meaningless in a CTMC (they cancel in the generator).
    SelfLoop {
        /// The offending state index.
        state: usize,
    },
    /// The chain has no states.
    EmptyChain,
    /// Absorbing-state analysis requires at least one absorbing state.
    NoAbsorbingState,
    /// Absorbing-state analysis requires at least one transient state.
    NoTransientState,
    /// The requested operation needs a transient (non-absorbing) state but
    /// an absorbing one was supplied.
    StateNotTransient {
        /// The offending state index.
        state: usize,
    },
    /// The requested operation needs an absorbing state but a transient one
    /// was supplied.
    StateNotAbsorbing {
        /// The offending state index.
        state: usize,
    },
    /// The stationary distribution is only defined for irreducible chains;
    /// the solve produced a non-distribution (singular system or negative
    /// mass), which indicates reducibility.
    NotIrreducible,
    /// A numeric argument (time horizon, tolerance) was invalid.
    InvalidArgument {
        /// Human-readable description of the constraint that failed.
        what: &'static str,
    },
    /// An exponential (or other hazard) draw was requested with a rate that
    /// is zero, negative, NaN or infinite. Simulation loops must treat a
    /// vanished hazard as "no event" rather than sampling from it; reaching
    /// this error means a caller fed a degenerate rate into the sampler.
    NonPositiveRate {
        /// The offending rate.
        rate: f64,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(nsr_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidRate { from, to, rate } => {
                write!(f, "invalid rate {rate} on transition {from} -> {to}")
            }
            Error::UnknownState { state, len } => {
                write!(f, "state {state} does not exist (chain has {len} states)")
            }
            Error::SelfLoop { state } => write!(f, "self-loop on state {state}"),
            Error::EmptyChain => write!(f, "chain has no states"),
            Error::NoAbsorbingState => write!(f, "chain has no absorbing state"),
            Error::NoTransientState => write!(f, "chain has no transient state"),
            Error::StateNotTransient { state } => {
                write!(f, "state {state} is absorbing, expected transient")
            }
            Error::StateNotAbsorbing { state } => {
                write!(f, "state {state} is transient, expected absorbing")
            }
            Error::NotIrreducible => write!(f, "chain is not irreducible"),
            Error::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
            Error::NonPositiveRate { rate } => {
                write!(
                    f,
                    "exponential rate must be positive and finite, got {rate}"
                )
            }
            Error::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nsr_linalg::Error> for Error {
    fn from(e: nsr_linalg::Error) -> Self {
        Error::Linalg(e)
    }
}
