//! Monte-Carlo simulation of CTMC trajectories.
//!
//! Used throughout the workspace to cross-validate the analytic solvers:
//! an independent stochastic implementation of the same chain should land
//! within its confidence interval of the LU-based answers.

use nsr_rng::Rng;

use crate::builder::StateId;
use crate::ctmc::Ctmc;
use crate::{Error, Result};

/// Outcome of a single simulated run to absorption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsorptionSample {
    /// Total elapsed time until the absorbing state was entered.
    pub time: f64,
    /// The absorbing state that was hit.
    pub absorbed_in: StateId,
    /// Number of jumps taken.
    pub jumps: u64,
}

/// A sample-mean estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean (`s / √n`).
    pub std_err: f64,
    /// Number of samples.
    pub n: u64,
}

impl Estimate {
    /// Builds an estimate from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Estimate {
        assert!(!samples.is_empty(), "cannot estimate from zero samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Estimate {
            mean,
            std_err: (var / n).sqrt(),
            n: samples.len() as u64,
        }
    }

    /// Symmetric 95 % confidence half-width (`1.96 · std_err`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err
    }

    /// Whether `value` lies within the estimate's expanded 95 % interval
    /// (`k` standard errors, `k = 1.96` for a plain CI).
    pub fn contains(&self, value: f64, k: f64) -> bool {
        (value - self.mean).abs() <= k * self.std_err
    }

    /// Relative standard error (`std_err / |mean|`); `inf` for a zero mean.
    pub fn rel_err(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.std_err / self.mean.abs()
        }
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6e} ± {:.2e} (n={})",
            self.mean,
            self.ci95_half_width(),
            self.n
        )
    }
}

/// Draws an `Exp(rate)` variate with inverse-transform sampling.
///
/// A non-positive (or non-finite) rate is a modelling bug in the caller —
/// historically it was only a `debug_assert`, which let release builds
/// silently produce negative or NaN waiting times (and, fed back into a
/// simulation clock, move time backwards). It is now a typed error in every
/// build profile. Callers whose aggregate hazard can legitimately vanish
/// must branch *before* drawing (treat the event as "never happens") so the
/// RNG stream stays aligned with historical seeds on the positive-rate path.
///
/// # Errors
///
/// [`Error::NonPositiveRate`] if `rate` is not strictly positive and finite.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> Result<f64> {
    if !(rate > 0.0 && rate.is_finite()) {
        return Err(Error::NonPositiveRate { rate });
    }
    let u: f64 = rng.random();
    // 1-u is in (0, 1]; ln is finite.
    Ok(-(1.0 - u).ln() / rate)
}

/// Simulates one trajectory from `from` until an absorbing state is hit.
///
/// # Errors
///
/// * [`Error::StateNotTransient`] if `from` is absorbing.
/// * [`Error::InvalidArgument`] if `max_jumps` is exceeded, which signals a
///   chain whose absorbing states are unreachable (or an unrealistically
///   tight cap).
pub fn simulate_to_absorption<R: Rng + ?Sized>(
    ctmc: &Ctmc,
    from: StateId,
    max_jumps: u64,
    rng: &mut R,
) -> Result<AbsorptionSample> {
    if from.index() >= ctmc.len() {
        return Err(Error::UnknownState {
            state: from.index(),
            len: ctmc.len(),
        });
    }
    if ctmc.is_absorbing(from) {
        return Err(Error::StateNotTransient {
            state: from.index(),
        });
    }
    let mut state = from;
    let mut time = 0.0;
    let mut jumps = 0u64;
    while !ctmc.is_absorbing(state) {
        if jumps >= max_jumps {
            return Err(Error::InvalidArgument {
                what: "max_jumps exceeded before absorption",
            });
        }
        let total = ctmc.total_rate(state);
        time += sample_exponential(rng, total)?;
        // Pick the next state proportionally to rates.
        let mut pick = rng.random::<f64>() * total;
        let transitions = ctmc.transitions_from(state);
        let mut next = transitions[transitions.len() - 1].0;
        for &(to, rate) in transitions {
            if pick < rate {
                next = to;
                break;
            }
            pick -= rate;
        }
        state = next;
        jumps += 1;
    }
    Ok(AbsorptionSample {
        time,
        absorbed_in: state,
        jumps,
    })
}

/// Estimates the mean time to absorption from `from` with `n` independent
/// trajectories.
///
/// # Errors
///
/// * [`Error::InvalidArgument`] if `n == 0`.
/// * Propagates per-trajectory errors from [`simulate_to_absorption`].
pub fn estimate_mtta<R: Rng + ?Sized>(
    ctmc: &Ctmc,
    from: StateId,
    n: u64,
    rng: &mut R,
) -> Result<Estimate> {
    if n == 0 {
        return Err(Error::InvalidArgument {
            what: "sample count must be positive",
        });
    }
    let mut samples = Vec::with_capacity(n as usize);
    for _ in 0..n {
        samples.push(simulate_to_absorption(ctmc, from, u64::MAX, rng)?.time);
    }
    Ok(Estimate::from_samples(&samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbsorbingAnalysis, CtmcBuilder};
    use nsr_rng::rngs::StdRng;
    use nsr_rng::SeedableRng;

    fn absorbing_chain() -> (Ctmc, StateId) {
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("0");
        let s1 = b.add_state("1");
        let s2 = b.add_state("2");
        b.add_transition(s0, s1, 0.01).unwrap();
        b.add_transition(s1, s0, 1.0).unwrap();
        b.add_transition(s1, s2, 0.02).unwrap();
        (b.build().unwrap(), s0)
    }

    #[test]
    fn exponential_sampling_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, rate).unwrap())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_rejects_degenerate_rates() {
        let mut rng = StdRng::seed_from_u64(42);
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    sample_exponential(&mut rng, rate),
                    Err(Error::NonPositiveRate { .. })
                ),
                "rate {rate} must be a typed error"
            );
        }
        // The error path must not consume randomness: the next good draw is
        // identical to a fresh stream's first draw.
        let mut fresh = StdRng::seed_from_u64(42);
        assert_eq!(
            sample_exponential(&mut rng, 2.0).unwrap(),
            sample_exponential(&mut fresh, 2.0).unwrap()
        );
    }

    #[test]
    fn simulated_mtta_matches_analysis() {
        let (c, s0) = absorbing_chain();
        let analytic = AbsorbingAnalysis::new(&c)
            .unwrap()
            .mean_time_to_absorption(s0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let est = estimate_mtta(&c, s0, 4000, &mut rng).unwrap();
        assert!(
            est.contains(analytic, 4.0),
            "analytic {analytic} not within 4σ of {est}"
        );
    }

    #[test]
    fn single_trajectory_terminates() {
        let (c, s0) = absorbing_chain();
        let mut rng = StdRng::seed_from_u64(1);
        let s = simulate_to_absorption(&c, s0, u64::MAX, &mut rng).unwrap();
        assert!(s.time > 0.0);
        assert_eq!(c.label(s.absorbed_in), "2");
        assert!(s.jumps >= 2);
    }

    #[test]
    fn jump_cap_enforced() {
        let (c, s0) = absorbing_chain();
        let mut rng = StdRng::seed_from_u64(1);
        // Absorption needs at least 2 jumps; a cap of 1 must error.
        assert!(simulate_to_absorption(&c, s0, 1, &mut rng).is_err());
    }

    #[test]
    fn starting_from_absorbing_rejected() {
        let (c, _) = absorbing_chain();
        let s2 = c.state_by_label("2").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            simulate_to_absorption(&c, s2, u64::MAX, &mut rng).unwrap_err(),
            Error::StateNotTransient { .. }
        ));
    }

    #[test]
    fn estimate_helpers() {
        let e = Estimate::from_samples(&[1.0, 2.0, 3.0]);
        assert!((e.mean - 2.0).abs() < 1e-15);
        assert_eq!(e.n, 3);
        assert!(e.contains(2.0, 1.0));
        assert!(e.rel_err() > 0.0);
        assert!(!format!("{e}").is_empty());
        let single = Estimate::from_samples(&[5.0]);
        assert_eq!(single.std_err, 0.0);
    }

    #[test]
    fn zero_samples_rejected() {
        let (c, s0) = absorbing_chain();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(estimate_mtta(&c, s0, 0, &mut rng).is_err());
    }
}
