//! Batched absorbing-chain solves over a fixed topology.
//!
//! A capacity-planning grid evaluates the *same* chain skeleton at
//! thousands of rate points: every grid point with the same topology
//! class (internal RAID? fault tolerance?) shares states, transitions
//! and — because GTH elimination order depends only on structure — the
//! same elimination fill pattern. [`SparseAbsorption`] rediscovers that
//! pattern (and reallocates its CSR rows) on every solve;
//! [`BatchSolver`] does the symbolic work once:
//!
//! 1. **Symbolic elimination** over the skeleton's structure finds every
//!    fill position the numeric elimination could ever create, producing
//!    a static CSR layout (structural nonzeros + predicted fill).
//! 2. A flat **elimination program** is precompiled: per pivot, the
//!    feeder rows and the destination slot of every update, resolved to
//!    CSR indices so the numeric pass is straight-line array arithmetic
//!    with no searches and no insertions.
//! 3. A **scatter map** routes each skeleton transition's rate to its
//!    CSR slot (or to the absorption vector), so loading a new rate
//!    vector is one pass over the transitions.
//!
//! All buffers are allocated at construction; [`BatchSolver::solve_mtta`]
//! performs **zero allocations** (pinned by an alloc-counting test in
//! `tests/batch_alloc.rs`).
//!
//! # Bit-identical results
//!
//! The numeric pass replays [`SparseAbsorption::gth_solve`]'s arithmetic
//! exactly: same descending elimination order, same ascending-column
//! accumulation, same `f == 0` / `add > 0` skip guards. Slots that exist
//! structurally but hold a zero rate (the builder would have dropped the
//! transition; [`Ctmc::with_rates`] does the same) contribute exact
//! `+0.0` identities to the non-negative sums and are skipped by the
//! same guards that skip missing entries in the dynamic algorithm, so
//! the result is bit-for-bit what
//! `AbsorbingAnalysis::new(&skeleton.with_rates(rates)?)` computes —
//! on either tier, since the sparse tier is itself pinned bit-identical
//! to the dense oracle. A test in this module asserts the equality with
//! `to_bits`.
//!
//! One structural caveat: the solver fixes the transient/absorbing
//! partition at construction. A rate vector that silences *every*
//! outgoing transition of some transient state (making it absorbing in
//! the re-rated chain) fails the elimination with a
//! [`nsr_linalg::Error::Singular`] pivot rather than silently diverging
//! from the rebuild-from-scratch semantics.

use crate::builder::StateId;
use crate::ctmc::Ctmc;
use crate::{Error, Result};

/// Where one skeleton transition's rate lands when a rate vector is
/// loaded.
#[derive(Debug, Clone, Copy)]
enum Scatter {
    /// CSR value slot (transient → transient).
    Slot(u32),
    /// Absorption-rate row (transient → absorbing).
    Absorb(u32),
}

/// One feeder entry of the elimination program: row `row` holds a
/// structural-or-fill entry at column `t` (the pivot being eliminated)
/// in CSR slot `slot_it`, and its per-update destination slots start at
/// `dest_start` in the flattened destination table.
#[derive(Debug, Clone, Copy)]
struct Feeder {
    row: u32,
    slot_it: u32,
    dest_start: u32,
}

/// Destination-slot sentinel for updates that the dynamic algorithm
/// skips because the fill would land on the feeder's own diagonal
/// (`j == i`).
const SKIP: u32 = u32::MAX;

/// A reusable solver for many rate vectors over one chain skeleton.
///
/// Construct once per topology class with [`BatchSolver::new`], then
/// call [`BatchSolver::solve_mtta`] per grid point. See the module docs
/// for the equality and allocation contracts.
#[derive(Debug, Clone)]
pub struct BatchSolver {
    /// Transient-state count.
    m: usize,
    /// Transient row of the root state MTTA is reported from.
    root: usize,
    /// Skeleton transition endpoints, for rate-validation errors.
    endpoints: Vec<(u32, u32)>,
    /// Rate scatter map, one entry per skeleton transition.
    scatter: Vec<Scatter>,
    /// Static CSR structure: sorted columns per row, including predicted
    /// fill.
    col: Vec<u32>,
    row_start: Vec<u32>,
    /// Per row, the CSR index of the first entry with `col >= row` — the
    /// end of the "prefix" (columns below the diagonal) the elimination
    /// folds.
    split: Vec<u32>,
    /// Per pivot `t`, its feeders occupy
    /// `feeders[feeder_start[t]..feeder_start[t + 1]]`.
    feeder_start: Vec<u32>,
    feeders: Vec<Feeder>,
    /// Flattened destination slots: each feeder of pivot `t` owns
    /// `prefix_len(t)` consecutive entries.
    dest: Vec<u32>,
    /// Structural (pre-fill) nonzero count, for diagnostics.
    structural_nnz: usize,
    /// Per-solve scratch, allocated once.
    val: Vec<f64>,
    qa: Vec<f64>,
    rhs: Vec<f64>,
    exit: Vec<f64>,
    x: Vec<f64>,
    /// Solves performed by this instance.
    solves: u64,
}

impl BatchSolver {
    /// Compiles the elimination program for `skeleton`, reporting MTTA
    /// from `root`.
    ///
    /// The skeleton's rates are placeholders (the sweep convention:
    /// structure only); they are ignored except to define which
    /// `(from, to)` pairs exist.
    ///
    /// # Errors
    ///
    /// * [`Error::NoTransientState`] / [`Error::NoAbsorbingState`] if the
    ///   chain is not absorbing.
    /// * [`Error::UnknownState`] / [`Error::StateNotTransient`] for a bad
    ///   root.
    pub fn new(skeleton: &Ctmc, root: StateId) -> Result<BatchSolver> {
        if root.index() >= skeleton.len() {
            return Err(Error::UnknownState {
                state: root.index(),
                len: skeleton.len(),
            });
        }
        let transient = skeleton.transient_states();
        if transient.is_empty() {
            return Err(Error::NoTransientState);
        }
        if transient.len() == skeleton.len() {
            return Err(Error::NoAbsorbingState);
        }
        let mut pos = vec![usize::MAX; skeleton.len()];
        for (i, s) in transient.iter().enumerate() {
            pos[s.index()] = i;
        }
        if pos[root.index()] == usize::MAX {
            return Err(Error::StateNotTransient {
                state: root.index(),
            });
        }
        let m = transient.len();

        // Structural pattern and the rate scatter map. Duplicate
        // transitions between the same pair share a slot (their rates
        // accumulate, as in `SparseAbsorption::from_ctmc`).
        let mut rows_sym: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut endpoints = Vec::with_capacity(skeleton.transitions().len());
        let mut routes = Vec::with_capacity(skeleton.transitions().len());
        for tr in skeleton.transitions() {
            let i = pos[tr.from.index()];
            debug_assert_ne!(i, usize::MAX, "absorbing states have no transitions");
            endpoints.push((tr.from.index() as u32, tr.to.index() as u32));
            let j = pos[tr.to.index()];
            if j == usize::MAX {
                routes.push(None); // absorbing destination
            } else {
                if let Err(k) = rows_sym[i].binary_search(&j) {
                    rows_sym[i].insert(k, j);
                }
                routes.push(Some((i, j)));
            }
        }
        let structural_nnz = rows_sym.iter().map(Vec::len).sum();

        // Symbolic elimination: replay the pivot loop on the pattern
        // alone, inserting every position the numeric pass could fill.
        // The numeric guards (`f == 0`, `add > 0`) can only *skip*
        // positions predicted here, never add new ones, so the final
        // pattern is a static superset holding exact zeros where the
        // dynamic algorithm holds nothing.
        for t in (0..m).rev() {
            let prefix: Vec<usize> = rows_sym[t].iter().copied().filter(|&j| j < t).collect();
            let feeders: Vec<usize> = (0..t)
                .filter(|&i| rows_sym[i].binary_search(&t).is_ok())
                .collect();
            for &i in &feeders {
                for &j in &prefix {
                    if j == i {
                        continue;
                    }
                    if let Err(k) = rows_sym[i].binary_search(&j) {
                        rows_sym[i].insert(k, j);
                    }
                }
            }
        }

        // Freeze the filled pattern as CSR and index it by column.
        let mut col = Vec::with_capacity(rows_sym.iter().map(Vec::len).sum());
        let mut row_start = Vec::with_capacity(m + 1);
        let mut split = Vec::with_capacity(m);
        for (i, row) in rows_sym.iter().enumerate() {
            row_start.push(col.len() as u32);
            col.extend(row.iter().map(|&j| j as u32));
            // First entry at or above the diagonal ends the prefix.
            let base = row_start[i] as usize;
            split.push((base + row.iter().take_while(|&&j| j < i).count()) as u32);
        }
        row_start.push(col.len() as u32);
        let slot_of = |i: usize, j: usize| -> u32 {
            let lo = row_start[i] as usize;
            let hi = row_start[i + 1] as usize;
            let k = col[lo..hi]
                .binary_search(&(j as u32))
                .expect("pattern contains slot");
            (lo + k) as u32
        };

        let scatter = routes
            .into_iter()
            .enumerate()
            .map(|(idx, route)| match route {
                None => {
                    let from = endpoints[idx].0;
                    Scatter::Absorb(pos[from as usize] as u32)
                }
                Some((i, j)) => Scatter::Slot(slot_of(i, j)),
            })
            .collect::<Vec<_>>();

        // Compile the per-pivot feeder program against the frozen
        // pattern. Feeders and prefixes read the *final* pattern: fill
        // into column `t` is only ever created while eliminating pivots
        // above `t`, and fill into row `t`'s prefix likewise, so by the
        // time the numeric pass reaches pivot `t` the live structure
        // equals the static one (extra slots hold exact zeros).
        let mut feeder_start = Vec::with_capacity(m + 1);
        let mut feeders = Vec::new();
        let mut dest = Vec::new();
        // Iteration below runs t ascending for storage, but the numeric
        // pass walks pivots descending; feeder_start is indexed by t so
        // the order of storage is immaterial.
        for t in 0..m {
            feeder_start.push(feeders.len() as u32);
            let prefix_lo = row_start[t] as usize;
            let prefix_hi = split[t] as usize;
            for i in 0..t {
                let lo = row_start[i] as usize;
                let hi = row_start[i + 1] as usize;
                let Ok(k) = col[lo..hi].binary_search(&(t as u32)) else {
                    continue;
                };
                let dest_start = dest.len() as u32;
                for &cj in &col[prefix_lo..prefix_hi] {
                    let j = cj as usize;
                    dest.push(if j == i { SKIP } else { slot_of(i, j) });
                }
                feeders.push(Feeder {
                    row: i as u32,
                    slot_it: (lo + k) as u32,
                    dest_start,
                });
            }
        }
        feeder_start.push(feeders.len() as u32);

        let nnz = col.len();
        crate::obs::BATCH_BUILDS.inc();
        Ok(BatchSolver {
            m,
            root: pos[root.index()],
            endpoints,
            scatter,
            col,
            row_start,
            split,
            feeder_start,
            feeders,
            dest,
            structural_nnz,
            val: vec![0.0; nnz],
            qa: vec![0.0; m],
            rhs: vec![0.0; m],
            exit: vec![0.0; m],
            x: vec![0.0; m],
            solves: 0,
        })
    }

    /// Builds a solver with the root looked up by label.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArgument`] if no state carries the label, plus the
    /// conditions of [`BatchSolver::new`].
    pub fn from_label(skeleton: &Ctmc, root_label: &str) -> Result<BatchSolver> {
        let root = skeleton
            .state_by_label(root_label)
            .ok_or(Error::InvalidArgument {
                what: "root label not found in skeleton",
            })?;
        BatchSolver::new(skeleton, root)
    }

    /// Number of transient states.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Number of skeleton transitions (the expected rate-vector length).
    pub fn transitions(&self) -> usize {
        self.scatter.len()
    }

    /// Fill slots the symbolic pass added beyond the structural nonzeros.
    pub fn fill(&self) -> usize {
        self.col.len() - self.structural_nnz
    }

    /// Solves performed by this instance since construction.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Mean time to absorption from the root under `rates` (one rate per
    /// skeleton transition, in [`Ctmc::transitions`] order).
    ///
    /// Allocation-free; bit-identical to
    /// `AbsorbingAnalysis::new(&skeleton.with_rates(rates)?)?
    ///     .mean_time_to_absorption(root)` (see module docs).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidArgument`] on a rate-vector length mismatch.
    /// * [`Error::InvalidRate`] for negative, NaN or infinite rates.
    /// * [`Error::Linalg`] ([`nsr_linalg::Error::Singular`]) if some state
    ///   cannot reach absorption under these rates.
    pub fn solve_mtta(&mut self, rates: &[f64]) -> Result<f64> {
        if rates.len() != self.scatter.len() {
            return Err(Error::InvalidArgument {
                what: "rate vector length must match the transition count",
            });
        }
        for (idx, &rate) in rates.iter().enumerate() {
            if !(rate.is_finite() && rate >= 0.0) {
                let (from, to) = self.endpoints[idx];
                return Err(Error::InvalidRate {
                    from: from as usize,
                    to: to as usize,
                    rate,
                });
            }
        }
        self.val.fill(0.0);
        self.qa.fill(0.0);
        self.rhs.fill(1.0);
        for (&s, &rate) in self.scatter.iter().zip(rates) {
            match s {
                Scatter::Slot(k) => self.val[k as usize] += rate,
                Scatter::Absorb(i) => self.qa[i as usize] += rate,
            }
        }

        // Forward elimination, pivots descending — the dynamic
        // algorithm's loop with all searches pre-resolved.
        for t in (0..self.m).rev() {
            let prefix_lo = self.row_start[t] as usize;
            let prefix_hi = self.split[t] as usize;
            let mut d = self.qa[t];
            for p in prefix_lo..prefix_hi {
                d += self.val[p];
            }
            if d <= 0.0 {
                return Err(Error::Linalg(nsr_linalg::Error::Singular { pivot: t }));
            }
            self.exit[t] = d;
            let (r_t, qa_t) = (self.rhs[t], self.qa[t]);
            let f_lo = self.feeder_start[t] as usize;
            let f_hi = self.feeder_start[t + 1] as usize;
            for fi in f_lo..f_hi {
                let Feeder {
                    row,
                    slot_it,
                    dest_start,
                } = self.feeders[fi];
                let i = row as usize;
                let f = self.val[slot_it as usize] / d;
                if f == 0.0 {
                    continue;
                }
                self.rhs[i] += f * r_t;
                self.qa[i] += f * qa_t;
                for (p, dk) in (prefix_lo..prefix_hi).zip(dest_start as usize..) {
                    let slot = self.dest[dk];
                    if slot == SKIP {
                        continue;
                    }
                    let add = f * self.val[p];
                    if add > 0.0 {
                        self.val[slot as usize] += add;
                    }
                }
            }
        }

        // Back-substitution, ascending pivots and columns.
        for t in 0..self.m {
            let mut acc = self.rhs[t];
            let lo = self.row_start[t] as usize;
            let hi = self.split[t] as usize;
            for p in lo..hi {
                acc += self.val[p] * self.x[self.col[p] as usize];
            }
            self.x[t] = acc / self.exit[t];
        }
        self.solves += 1;
        crate::obs::BATCH_SOLVES.inc();
        Ok(self.x[self.root])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AbsorbingAnalysis, CtmcBuilder};

    /// Reference answer through the rebuild-from-scratch path.
    fn oracle(skeleton: &Ctmc, root: StateId, rates: &[f64]) -> f64 {
        let chain = skeleton.with_rates(rates).unwrap();
        AbsorbingAnalysis::new(&chain)
            .unwrap()
            .mean_time_to_absorption(root)
            .unwrap()
    }

    fn birth_death(depth: usize) -> (Ctmc, StateId) {
        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> = (0..=depth).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..depth {
            b.add_transition(states[i], states[i + 1], 1.0).unwrap();
            b.add_transition(states[i + 1], states[i], 1.0).unwrap();
        }
        b.add_transition(states[depth], dead, 1.0).unwrap();
        (b.build().unwrap(), states[0])
    }

    #[test]
    fn birth_death_bit_identical_to_analysis() {
        let (skel, root) = birth_death(6);
        let mut solver = BatchSolver::new(&skel, root).unwrap();
        assert_eq!(solver.fill(), 0, "birth–death elimination is fill-free");
        let n = solver.transitions();
        for variant in 0..8u32 {
            let rates: Vec<f64> = (0..n)
                .map(|k| 1e-6 * (1.0 + (k as f64) * 0.37) * (1.0 + f64::from(variant)))
                .collect();
            let got = solver.solve_mtta(&rates).unwrap();
            let want = oracle(&skel, root, &rates);
            assert_eq!(got.to_bits(), want.to_bits(), "variant {variant}");
        }
        assert_eq!(solver.solves(), 8);
    }

    #[test]
    fn cyclic_fill_bit_identical_to_analysis() {
        // The 4-cycle from the sparse tests: elimination creates fill.
        let mut b = CtmcBuilder::new();
        let s: Vec<StateId> = (0..4).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..4 {
            b.add_transition(s[i], s[(i + 1) % 4], 1.0).unwrap();
        }
        b.add_transition(s[2], dead, 2.0).unwrap();
        let skel = b.build().unwrap();
        let mut solver = BatchSolver::new(&skel, s[0]).unwrap();
        assert!(solver.fill() > 0);
        let rates = [0.9, 1.7, 0.3, 2.2, 5.0];
        let got = solver.solve_mtta(&rates).unwrap();
        let want = oracle(&skel, s[0], &rates);
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn zero_rates_match_dropped_transitions() {
        // `with_rates` drops zero-rate transitions entirely; the batch
        // solver keeps the slot with an exact 0.0. Both must agree as
        // long as every transient state keeps a live exit path.
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a");
        let c = b.add_state("c");
        let dead = b.add_state("dead");
        b.add_transition(a, c, 1.0).unwrap();
        b.add_transition(c, a, 1.0).unwrap();
        b.add_transition(a, dead, 1.0).unwrap();
        b.add_transition(c, dead, 1.0).unwrap();
        let skel = b.build().unwrap();
        let mut solver = BatchSolver::new(&skel, a).unwrap();
        let rates = [0.0, 0.5, 0.25, 1.5];
        let got = solver.solve_mtta(&rates).unwrap();
        let want = oracle(&skel, a, &rates);
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn silenced_state_reports_singular() {
        let (skel, root) = birth_death(2);
        let mut solver = BatchSolver::new(&skel, root).unwrap();
        let zero = vec![0.0; solver.transitions()];
        match solver.solve_mtta(&zero) {
            Err(Error::Linalg(nsr_linalg::Error::Singular { .. })) => {}
            other => panic!("expected singular pivot, got {other:?}"),
        }
    }

    #[test]
    fn rate_validation_mirrors_with_rates() {
        let (skel, root) = birth_death(2);
        let mut solver = BatchSolver::new(&skel, root).unwrap();
        let mut rates = vec![1.0; solver.transitions()];
        rates[1] = -1.0;
        assert!(matches!(
            solver.solve_mtta(&rates),
            Err(Error::InvalidRate { .. })
        ));
        let short = vec![1.0; solver.transitions() - 1];
        assert!(matches!(
            solver.solve_mtta(&short),
            Err(Error::InvalidArgument { .. })
        ));
    }

    #[test]
    fn root_must_be_transient() {
        let (skel, _) = birth_death(2);
        let dead = skel.state_by_label("dead").unwrap();
        assert!(matches!(
            BatchSolver::new(&skel, dead),
            Err(Error::StateNotTransient { .. })
        ));
        assert!(BatchSolver::from_label(&skel, "nope").is_err());
    }
}
