//! Metric handles for the Markov crate.
//!
//! All of these are no-ops until `nsr_obs::set_metrics_enabled(true)`;
//! see `nsr-obs` for the cost contract. The only per-solve work added
//! when metrics are on is one `κ∞` estimate (a pair of triangular
//! solves), which is cheap next to the elimination it describes.

use nsr_obs::{Counter, Histogram};

/// Absorbing-chain analyses constructed (`AbsorbingAnalysis::new`).
pub static SOLVES: Counter = Counter::new("markov.absorbing.solves");
/// Analyses where LU was singular to working precision and every
/// matrix-route query fell back to GTH elimination.
pub static GTH_FALLBACKS: Counter = Counter::new("markov.absorbing.gth_fallback");
/// `κ∞(R)` estimates of the absorption matrix, one per solve.
/// Infinite estimates (GTH fallback in effect) land in the overflow
/// bucket.
pub static CONDITION: Histogram = Histogram::new("markov.absorbing.condition");
/// Wall seconds per analysis construction (LU attempt + all GTH
/// elimination passes).
pub static SOLVE_SECONDS: Histogram = Histogram::new("markov.absorbing.solve_seconds");

/// Registers every metric in this module with the global registry.
pub fn register() {
    SOLVES.register();
    GTH_FALLBACKS.register();
    CONDITION.register();
    SOLVE_SECONDS.register();
}
