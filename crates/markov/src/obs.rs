//! Metric handles for the Markov crate.
//!
//! All of these are no-ops until `nsr_obs::set_metrics_enabled(true)`;
//! see `nsr-obs` for the cost contract. The only per-solve work added
//! when metrics are on is one `κ∞` estimate (a pair of triangular
//! solves), which is cheap next to the elimination it describes.

use nsr_obs::{Counter, Histogram};

/// Absorbing-chain analyses constructed (`AbsorbingAnalysis::new`).
pub static SOLVES: Counter = Counter::new("markov.absorbing.solves");
/// Analyses where LU was singular to working precision and every
/// matrix-route query fell back to GTH elimination.
pub static GTH_FALLBACKS: Counter = Counter::new("markov.absorbing.gth_fallback");
/// Analyses eliminated on the sparse (CSR-style) GTH tier.
pub static SPARSE_TIER: Counter = Counter::new("markov.absorbing.tier_sparse");
/// Analyses eliminated on the dense rate-table GTH tier.
pub static DENSE_TIER: Counter = Counter::new("markov.absorbing.tier_dense");
/// Sparse eliminations that failed and retried on the dense oracle.
pub static SPARSE_FALLBACKS: Counter = Counter::new("markov.absorbing.sparse_fallback");
/// Fill entries created per sparse elimination (0 for the fill-free
/// BFS-ordered recursive chains).
pub static FILL: Histogram = Histogram::new("markov.absorbing.fill");
/// `κ∞(R)` estimates of the absorption matrix, one per solve.
/// Infinite estimates (GTH fallback in effect) land in the overflow
/// bucket.
pub static CONDITION: Histogram = Histogram::new("markov.absorbing.condition");
/// Wall seconds per analysis construction (LU attempt + all GTH
/// elimination passes).
pub static SOLVE_SECONDS: Histogram = Histogram::new("markov.absorbing.solve_seconds");
/// Allocation-free batched solves (`BatchSolver::solve_mtta`).
pub static BATCH_SOLVES: Counter = Counter::new("markov.batch.solves");
/// Elimination programs compiled (`BatchSolver::new`).
pub static BATCH_BUILDS: Counter = Counter::new("markov.batch.builds");

/// Registers every metric in this module with the global registry.
pub fn register() {
    SOLVES.register();
    GTH_FALLBACKS.register();
    SPARSE_TIER.register();
    DENSE_TIER.register();
    SPARSE_FALLBACKS.register();
    FILL.register();
    CONDITION.register();
    SOLVE_SECONDS.register();
    BATCH_SOLVES.register();
    BATCH_BUILDS.register();
}
