//! Continuous-time Markov chain (CTMC) toolkit.
//!
//! This crate provides the Markov-chain machinery that the reliability
//! models of *Reliability for Networked Storage Nodes* (Rao, Hafner,
//! Golding; DSN 2006) are phrased in, following the treatment of Trivedi,
//! *Probability and Statistics with Reliability, Queuing, and Computer
//! Science Applications* (reference \[6\] of the paper):
//!
//! * [`CtmcBuilder`] / [`Ctmc`] — construct a chain from labelled states
//!   and transition rates, and inspect its infinitesimal generator `Q`.
//! * [`AbsorbingAnalysis`] — mean time to absorption (the paper's MTTDL),
//!   absorption probabilities, and expected state occupancies, computed
//!   from the absorption matrix `R = −Q_B` by subtraction-free GTH
//!   elimination — on a CSR-style sparse tier ([`SparseAbsorption`]) when
//!   the chain's structure pays for it, on the dense rate table otherwise
//!   — with a lazily-built LU factorization for matrix-land queries (and
//!   a GTH fallback when stiffness makes `R` singular in floating point).
//! * [`validate_generator`] — numerical guardrail rejecting NaN/Inf
//!   entries, negative rates, and non-zero row sums in externally
//!   assembled generator matrices.
//! * [`stationary_distribution`] — limiting distribution of an irreducible
//!   chain (`π·Q = 0`, `Σπ = 1`).
//! * [`transient_distribution`] — `π(t)` by uniformization.
//! * [`simulate`] — Monte-Carlo trajectory sampling and time-to-absorption
//!   estimation, used to cross-validate the analytic solvers.
//!
//! # Example: a repairable two-failure system
//!
//! A RAID-5-like birth–death chain with failure rate `λ` per unit and
//! repair rate `μ`, absorbing on the second failure:
//!
//! ```
//! use nsr_markov::{CtmcBuilder, AbsorbingAnalysis};
//!
//! # fn main() -> Result<(), nsr_markov::Error> {
//! let (lambda, mu) = (1e-3, 1.0);
//! let mut b = CtmcBuilder::new();
//! let ok = b.add_state("ok");
//! let degraded = b.add_state("degraded");
//! let lost = b.add_state("lost");
//! b.add_transition(ok, degraded, 2.0 * lambda)?;
//! b.add_transition(degraded, ok, mu)?;
//! b.add_transition(degraded, lost, lambda)?;
//! let ctmc = b.build()?;
//!
//! let analysis = AbsorbingAnalysis::new(&ctmc)?;
//! let mtta = analysis.mean_time_to_absorption(ok)?;
//! // Exact closed form: (3λ + μ) / (2λ²)
//! let exact = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
//! assert!((mtta - exact).abs() / exact < 1e-10);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod absorbing;
mod batch;
mod birth_death;
mod builder;
mod classify;
mod ctmc;
mod dot;
mod error;
pub mod obs;
pub mod simulate;
mod solutions;
mod sparse;

pub use absorbing::{AbsorbingAnalysis, SolverTier, SPARSE_MAX_DENSITY, SPARSE_MIN_STATES};
pub use batch::BatchSolver;
pub use birth_death::{birth_death_gamma, birth_death_mtta};
pub use builder::{CtmcBuilder, StateId};
pub use classify::{strongly_connected_components, validate_absorbing, AbsorbingDiagnosis};
pub use ctmc::{validate_generator, Ctmc, Transition};
pub use dot::{to_dot, DotOptions};
pub use error::Error;
pub use solutions::{stationary_distribution, transient_distribution, uniformized};
pub use sparse::{SparseAbsorption, SparseSolution};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;
