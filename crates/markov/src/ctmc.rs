use nsr_linalg::Matrix;

use crate::builder::StateId;
use crate::{Error, Result};

/// Validates a dense matrix as an infinitesimal generator `Q`.
///
/// A generator must be square with finite entries, non-negative
/// off-diagonal rates, non-positive diagonal entries, and rows summing to
/// zero (within a tolerance scaled to the row's magnitude). Matrices
/// produced by [`Ctmc::generator`] always pass; use this guardrail before
/// feeding an externally assembled `Q` into uniformization or stationary
/// solvers, where a single NaN or sign slip would otherwise surface as a
/// nonsense probability rather than an error.
///
/// # Errors
///
/// * [`Error::Linalg`] ([`nsr_linalg::Error::NotSquare`] /
///   [`nsr_linalg::Error::Empty`]) for shape violations.
/// * [`Error::InvalidRate`] for NaN/Inf entries or negative off-diagonal
///   rates.
/// * [`Error::InvalidArgument`] for positive diagonals or rows that do not
///   sum to zero.
pub fn validate_generator(q: &Matrix) -> Result<()> {
    let (rows, cols) = q.shape();
    if rows == 0 || cols == 0 {
        return Err(Error::Linalg(nsr_linalg::Error::Empty));
    }
    if rows != cols {
        return Err(Error::Linalg(nsr_linalg::Error::NotSquare {
            shape: (rows, cols),
        }));
    }
    for i in 0..rows {
        let mut sum = 0.0;
        let mut scale = 0.0;
        for j in 0..cols {
            let v = q[(i, j)];
            if !v.is_finite() {
                return Err(Error::InvalidRate {
                    from: i,
                    to: j,
                    rate: v,
                });
            }
            if i != j && v < 0.0 {
                return Err(Error::InvalidRate {
                    from: i,
                    to: j,
                    rate: v,
                });
            }
            sum += v;
            scale += v.abs();
        }
        if q[(i, i)] > 0.0 {
            return Err(Error::InvalidArgument {
                what: "generator diagonal entries must be non-positive",
            });
        }
        if sum.abs() > 1e-9 * scale.max(1.0) {
            return Err(Error::InvalidArgument {
                what: "generator rows must sum to zero",
            });
        }
    }
    Ok(())
}

/// A single directed transition of a CTMC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Exponential rate (per unit time), strictly positive in a built chain.
    pub rate: f64,
}

/// A finite-state continuous-time Markov chain.
///
/// Built via [`crate::CtmcBuilder`]. A state with no outgoing transitions is
/// *absorbing*; everything else is *transient* for the purposes of
/// [`crate::AbsorbingAnalysis`] (the reliability models in this workspace
/// always have a reachable absorbing "data loss" state, which makes the
/// remaining states genuinely transient).
#[derive(Debug, Clone)]
pub struct Ctmc {
    labels: Vec<String>,
    /// Outgoing adjacency: `out[s]` lists `(destination, rate)`.
    out: Vec<Vec<(StateId, f64)>>,
    transitions: Vec<Transition>,
}

impl Ctmc {
    pub(crate) fn from_parts(labels: Vec<String>, transitions: Vec<Transition>) -> Self {
        let mut out = vec![Vec::new(); labels.len()];
        for t in &transitions {
            out[t.from.0].push((t.to, t.rate));
        }
        Ctmc {
            labels,
            out,
            transitions,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the chain has no states (never true for a built chain).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of a state.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn label(&self, s: StateId) -> &str {
        &self.labels[s.0]
    }

    /// Looks a state up by label (first match).
    pub fn state_by_label(&self, label: &str) -> Option<StateId> {
        self.labels.iter().position(|l| l == label).map(StateId)
    }

    /// All transitions in insertion order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Outgoing `(destination, rate)` pairs of a state.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn transitions_from(&self, s: StateId) -> &[(StateId, f64)] {
        &self.out[s.0]
    }

    /// Total outgoing rate of a state (the negated diagonal of `Q`).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn total_rate(&self, s: StateId) -> f64 {
        self.out[s.0].iter().map(|(_, r)| r).sum()
    }

    /// Whether a state has no outgoing transitions.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn is_absorbing(&self, s: StateId) -> bool {
        self.out[s.0].is_empty()
    }

    /// Ids of all absorbing states, in index order.
    pub fn absorbing_states(&self) -> Vec<StateId> {
        (0..self.len())
            .map(StateId)
            .filter(|&s| self.is_absorbing(s))
            .collect()
    }

    /// Ids of all transient (non-absorbing) states, in index order.
    pub fn transient_states(&self) -> Vec<StateId> {
        (0..self.len())
            .map(StateId)
            .filter(|&s| !self.is_absorbing(s))
            .collect()
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.len()).map(StateId)
    }

    /// Maximum total outgoing rate over all states (the uniformization
    /// constant lower bound).
    pub fn max_total_rate(&self) -> f64 {
        self.states()
            .map(|s| self.total_rate(s))
            .fold(0.0, f64::max)
    }

    /// Dense infinitesimal generator matrix `Q`: off-diagonals are the
    /// transition rates and every row sums to zero.
    pub fn generator(&self) -> Matrix {
        let n = self.len();
        let mut q = Matrix::zeros(n, n);
        for t in &self.transitions {
            q[(t.from.0, t.to.0)] += t.rate;
            q[(t.from.0, t.from.0)] -= t.rate;
        }
        q
    }

    /// The *absorption matrix* `R = −Q_B` restricted to the transient
    /// states, together with the transient state ids in the row/column
    /// order used. This is the matrix the paper's appendix inverts to get
    /// `MTTDL = e₁ᵀ R⁻¹ 1`.
    pub fn absorption_matrix(&self) -> (Matrix, Vec<StateId>) {
        let transient = self.transient_states();
        let pos: std::collections::HashMap<usize, usize> = transient
            .iter()
            .enumerate()
            .map(|(i, s)| (s.0, i))
            .collect();
        let m = transient.len();
        let mut r = Matrix::zeros(m.max(1), m.max(1));
        for (i, &s) in transient.iter().enumerate() {
            r[(i, i)] = self.total_rate(s);
            for &(to, rate) in self.transitions_from(s) {
                if let Some(&j) = pos.get(&to.0) {
                    r[(i, j)] -= rate;
                }
            }
        }
        (r, transient)
    }

    /// Rebuilds the chain with the same states and transition *structure*
    /// but new rates, one per entry of [`Ctmc::transitions`] in order.
    ///
    /// This is the sweep engine's topology-reuse primitive: a parameter
    /// sweep changes only rates, never the shape of the chain, so the
    /// chain is built once per configuration and re-rated per sweep
    /// point. Transitions whose new rate is zero are dropped, exactly as
    /// [`crate::CtmcBuilder::add_transition`] drops them — the result is
    /// indistinguishable from rebuilding the chain from scratch with the
    /// new rates.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidArgument`] if `rates.len()` differs from the
    ///   transition count.
    /// * [`Error::InvalidRate`] if a rate is negative, NaN or infinite.
    pub fn with_rates(&self, rates: &[f64]) -> Result<Ctmc> {
        if rates.len() != self.transitions.len() {
            return Err(Error::InvalidArgument {
                what: "rate vector length must match the transition count",
            });
        }
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for (t, &rate) in self.transitions.iter().zip(rates) {
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(Error::InvalidRate {
                    from: t.from.0,
                    to: t.to.0,
                    rate,
                });
            }
            if rate > 0.0 {
                transitions.push(Transition { rate, ..*t });
            }
        }
        Ok(Ctmc::from_parts(self.labels.clone(), transitions))
    }

    /// Transition probabilities of the *embedded* discrete-time jump chain
    /// out of state `s`: each outgoing rate divided by the total rate.
    /// Returns an empty vector for absorbing states.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn jump_probabilities(&self, s: StateId) -> Vec<(StateId, f64)> {
        let total = self.total_rate(s);
        if total == 0.0 {
            return Vec::new();
        }
        self.out[s.0]
            .iter()
            .map(|&(to, r)| (to, r / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn three_state() -> (Ctmc, StateId, StateId, StateId) {
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("ok");
        let s1 = b.add_state("degraded");
        let s2 = b.add_state("lost");
        b.add_transition(s0, s1, 2.0).unwrap();
        b.add_transition(s1, s0, 10.0).unwrap();
        b.add_transition(s1, s2, 1.0).unwrap();
        (b.build().unwrap(), s0, s1, s2)
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let (c, ..) = three_state();
        let q = c.generator();
        for r in 0..c.len() {
            let sum: f64 = q.row(r).iter().sum();
            assert!(sum.abs() < 1e-15, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn absorbing_and_transient_partition() {
        let (c, s0, s1, s2) = three_state();
        assert_eq!(c.absorbing_states(), vec![s2]);
        assert_eq!(c.transient_states(), vec![s0, s1]);
        assert!(c.is_absorbing(s2));
        assert!(!c.is_absorbing(s1));
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn absorption_matrix_shape_and_signs() {
        let (c, ..) = three_state();
        let (r, transient) = c.absorption_matrix();
        assert_eq!(transient.len(), 2);
        assert_eq!(r.shape(), (2, 2));
        // Diagonal positive, off-diagonal non-positive.
        assert_eq!(r[(0, 0)], 2.0);
        assert_eq!(r[(1, 1)], 11.0);
        assert_eq!(r[(0, 1)], -2.0);
        assert_eq!(r[(1, 0)], -10.0);
    }

    #[test]
    fn labels_and_lookup() {
        let (c, s0, _, s2) = three_state();
        assert_eq!(c.label(s0), "ok");
        assert_eq!(c.state_by_label("lost"), Some(s2));
        assert_eq!(c.state_by_label("nope"), None);
    }

    #[test]
    fn jump_probabilities_normalize() {
        let (c, _, s1, s2) = three_state();
        let jp = c.jump_probabilities(s1);
        let total: f64 = jp.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-15);
        assert!(c.jump_probabilities(s2).is_empty());
    }

    #[test]
    fn max_total_rate() {
        let (c, ..) = three_state();
        assert_eq!(c.max_total_rate(), 11.0);
    }

    #[test]
    fn with_rates_replaces_in_order() {
        let (c, s0, s1, s2) = three_state();
        let re = c.with_rates(&[4.0, 20.0, 3.0]).unwrap();
        assert_eq!(re.len(), 3);
        assert_eq!(re.label(s0), "ok");
        assert_eq!(re.total_rate(s0), 4.0);
        assert_eq!(re.total_rate(s1), 23.0);
        assert!(re.is_absorbing(s2));
    }

    #[test]
    fn with_rates_drops_zeros_like_the_builder() {
        let (c, _, s1, s2) = three_state();
        // Zeroing s1 -> s2 makes s2 unreachable and the chain loses its
        // only path to absorption — exactly what a fresh build would give.
        let re = c.with_rates(&[2.0, 10.0, 0.0]).unwrap();
        assert_eq!(re.transitions().len(), 2);
        assert_eq!(re.transitions_from(s1).len(), 1);
        assert!(re.is_absorbing(s2));

        let mut b = CtmcBuilder::new();
        let t0 = b.add_state("ok");
        let t1 = b.add_state("degraded");
        b.add_state("lost");
        b.add_transition(t0, t1, 2.0).unwrap();
        b.add_transition(t1, t0, 10.0).unwrap();
        let direct = b.build().unwrap();
        assert_eq!(re.transitions(), direct.transitions());
    }

    #[test]
    fn with_rates_validates() {
        let (c, ..) = three_state();
        assert!(matches!(
            c.with_rates(&[1.0, 2.0]).unwrap_err(),
            Error::InvalidArgument { .. }
        ));
        assert!(matches!(
            c.with_rates(&[1.0, 2.0, -1.0]).unwrap_err(),
            Error::InvalidRate { .. }
        ));
        assert!(matches!(
            c.with_rates(&[1.0, f64::NAN, 1.0]).unwrap_err(),
            Error::InvalidRate { .. }
        ));
    }

    #[test]
    fn built_generators_always_validate() {
        let (c, ..) = three_state();
        validate_generator(&c.generator()).unwrap();
    }

    #[test]
    fn validate_generator_rejects_malformed_input() {
        // Not square.
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            validate_generator(&rect).unwrap_err(),
            Error::Linalg(nsr_linalg::Error::NotSquare { .. })
        ));

        // NaN entry.
        let mut q = Matrix::zeros(2, 2);
        q[(0, 1)] = f64::NAN;
        assert!(matches!(
            validate_generator(&q).unwrap_err(),
            Error::InvalidRate { from: 0, to: 1, .. }
        ));

        // Negative off-diagonal rate.
        let mut q = Matrix::zeros(2, 2);
        q[(0, 0)] = -1.0;
        q[(0, 1)] = 1.0;
        q[(1, 0)] = -0.5;
        q[(1, 1)] = 0.5;
        assert!(matches!(
            validate_generator(&q).unwrap_err(),
            Error::InvalidRate { from: 1, to: 0, .. }
        ));

        // Positive diagonal.
        let mut q = Matrix::zeros(1, 1);
        q[(0, 0)] = 2.0;
        assert!(matches!(
            validate_generator(&q).unwrap_err(),
            Error::InvalidArgument { .. }
        ));

        // Row sum far from zero.
        let mut q = Matrix::zeros(2, 2);
        q[(0, 0)] = -1.0;
        q[(0, 1)] = 2.0;
        assert!(matches!(
            validate_generator(&q).unwrap_err(),
            Error::InvalidArgument { .. }
        ));
    }
}
