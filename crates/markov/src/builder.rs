use crate::ctmc::{Ctmc, Transition};
use crate::{Error, Result};

/// Opaque handle to a state created by a [`CtmcBuilder`].
///
/// State ids are dense indices in creation order; [`StateId::index`] exposes
/// the index for callers that build parallel tables keyed by state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// Dense index of the state (creation order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Incremental builder for a [`Ctmc`].
///
/// Rates for repeated `(from, to)` pairs accumulate, which makes it easy to
/// express "either of two failure modes moves the system to the same state"
/// without pre-summing rates.
///
/// # Example
///
/// ```
/// use nsr_markov::CtmcBuilder;
///
/// # fn main() -> Result<(), nsr_markov::Error> {
/// let mut b = CtmcBuilder::new();
/// let up = b.add_state("up");
/// let down = b.add_state("down");
/// b.add_transition(up, down, 0.5)?;
/// b.add_transition(up, down, 0.25)?; // accumulates to 0.75
/// let ctmc = b.build()?;
/// assert_eq!(ctmc.total_rate(up), 0.75);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CtmcBuilder {
    labels: Vec<String>,
    transitions: Vec<Transition>,
}

impl CtmcBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state with a human-readable label and returns its id.
    pub fn add_state(&mut self, label: impl Into<String>) -> StateId {
        self.labels.push(label.into());
        StateId(self.labels.len() - 1)
    }

    /// Number of states added so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no states have been added yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds a transition with the given rate. A zero rate is accepted and
    /// ignored (convenient when rates are computed from parameters that may
    /// vanish); rates for repeated pairs accumulate.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownState`] if either endpoint was not created by this
    ///   builder.
    /// * [`Error::SelfLoop`] if `from == to`.
    /// * [`Error::InvalidRate`] if `rate` is negative, NaN or infinite.
    pub fn add_transition(&mut self, from: StateId, to: StateId, rate: f64) -> Result<&mut Self> {
        let n = self.labels.len();
        for s in [from, to] {
            if s.0 >= n {
                return Err(Error::UnknownState { state: s.0, len: n });
            }
        }
        if from == to {
            return Err(Error::SelfLoop { state: from.0 });
        }
        if !(rate.is_finite() && rate >= 0.0) {
            return Err(Error::InvalidRate {
                from: from.0,
                to: to.0,
                rate,
            });
        }
        if rate > 0.0 {
            if let Some(t) = self
                .transitions
                .iter_mut()
                .find(|t| t.from == from && t.to == to)
            {
                t.rate += rate;
            } else {
                self.transitions.push(Transition { from, to, rate });
            }
        }
        Ok(self)
    }

    /// Finalizes the chain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyChain`] if no states were added.
    pub fn build(self) -> Result<Ctmc> {
        if self.labels.is_empty() {
            return Err(Error::EmptyChain);
        }
        Ok(Ctmc::from_parts(self.labels, self.transitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_rates() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a");
        let c = b.add_state("c");
        b.add_transition(a, c, 1.0).unwrap();
        b.add_transition(a, c, 2.0).unwrap();
        let ctmc = b.build().unwrap();
        assert_eq!(ctmc.total_rate(a), 3.0);
        assert_eq!(ctmc.transitions_from(a).len(), 1);
    }

    #[test]
    fn zero_rate_is_dropped() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a");
        let c = b.add_state("c");
        b.add_transition(a, c, 0.0).unwrap();
        let ctmc = b.build().unwrap();
        assert!(ctmc.transitions_from(a).is_empty());
    }

    #[test]
    fn rejects_bad_transitions() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a");
        let c = b.add_state("c");
        assert!(matches!(
            b.add_transition(a, a, 1.0).unwrap_err(),
            Error::SelfLoop { state: 0 }
        ));
        assert!(matches!(
            b.add_transition(a, c, -1.0).unwrap_err(),
            Error::InvalidRate { .. }
        ));
        assert!(matches!(
            b.add_transition(a, c, f64::NAN).unwrap_err(),
            Error::InvalidRate { .. }
        ));
        let ghost = StateId(99);
        assert!(matches!(
            b.add_transition(a, ghost, 1.0).unwrap_err(),
            Error::UnknownState { state: 99, len: 2 }
        ));
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(matches!(
            CtmcBuilder::new().build().unwrap_err(),
            Error::EmptyChain
        ));
    }

    #[test]
    fn state_id_display_and_index() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a");
        assert_eq!(a.index(), 0);
        assert_eq!(format!("{a}"), "s0");
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
