use std::collections::HashMap;
use std::sync::OnceLock;

use nsr_linalg::{AnyLu, Matrix};

use crate::builder::StateId;
use crate::ctmc::Ctmc;
use crate::sparse::SparseAbsorption;
use crate::{Error, Result};

/// Exact analysis of a CTMC with absorbing states.
///
/// This is the numerical realization of the paper appendix's
///
/// ```text
/// MTTDL = ⟨1, 0, …, 0⟩ · R⁻¹ · ⟨1, …, 1⟩ᵗ
/// ```
///
/// generalized to arbitrary initial states and to absorption probabilities.
///
/// # Numerical method
///
/// Reliability chains are *stiff*: repair rates exceed failure rates by
/// 3–6 orders of magnitude, so the absorption matrix `R = −Q_B` of a
/// fault-tolerance-`k` model has condition number growing like
/// `(μ/λ)^k` — far beyond what a plain `f64` LU solve survives (`κ ≈ 10¹⁶`
/// already at `k ≈ 4`). `AbsorbingAnalysis` therefore computes mean times
/// to absorption and absorption probabilities with **GTH-style
/// subtraction-free state elimination** (Grassmann–Taksar–Heyman): states
/// are eliminated one at a time, every update is a product or a sum of
/// non-negative quantities, and exit rates are *recomputed* as sums rather
/// than updated by differences. The result carries componentwise relative
/// accuracy `O(n·ε)` independent of the chain's stiffness.
///
/// # Solver tiers
///
/// The elimination runs on one of two storage tiers, selected by chain
/// structure ([`AbsorbingAnalysis::solver_tier`]):
///
/// * **Sparse** ([`SolverTier::SparseGth`]): CSR-style rows that visit
///   only structural nonzeros. Chosen for large sparse chains (the
///   recursive appendix chains eliminate fill-free in BFS order, so a
///   solve costs `O(edges)`). The arithmetic is bit-for-bit identical to
///   the dense tier — same elimination order, same accumulation order.
/// * **Dense** ([`SolverTier::DenseGth`]): the `m × m` rate table. Used
///   for small or dense chains, kept as the differential-testing oracle,
///   and the automatic fallback if the sparse pass fails.
///
/// The matrix-land quantities ([`AbsorbingAnalysis::det`],
/// [`AbsorbingAnalysis::expected_time_in`],
/// [`AbsorbingAnalysis::condition_estimate`],
/// [`AbsorbingAnalysis::absorption_matrix`]) need the dense absorption
/// matrix and its LU factorization; that route is built lazily on first
/// use, so sweep-style workloads that only read GTH-computed quantities
/// never pay the `O(m²)` materialization or `O(m³)` factorization.
///
/// # LU → GTH fallback
///
/// For chains so stiff that the floating-point absorption matrix is
/// singular to working precision (rates differing by more than ~16 orders
/// of magnitude can cancel exactly), the LU factorization fails. The
/// analysis still **succeeds**: every quantity falls back to a
/// subtraction-free GTH computation, [`AbsorbingAnalysis::det`] uses the
/// product of the GTH elimination pivots, and
/// [`AbsorbingAnalysis::condition_estimate`] reports `f64::INFINITY` so
/// callers can see that the matrix route was abandoned
/// ([`AbsorbingAnalysis::uses_gth_fallback`]). No input reachable through
/// [`crate::CtmcBuilder`] panics this type.
///
/// # Example
///
/// ```
/// use nsr_markov::{CtmcBuilder, AbsorbingAnalysis};
///
/// # fn main() -> Result<(), nsr_markov::Error> {
/// let mut b = CtmcBuilder::new();
/// let up = b.add_state("up");
/// let down = b.add_state("down");
/// b.add_transition(up, down, 0.1)?;
/// let ctmc = b.build()?;
/// let a = AbsorbingAnalysis::new(&ctmc)?;
/// assert!((a.mean_time_to_absorption(up)? - 10.0).abs() < 1e-12);
/// assert!((a.absorption_probability(up, down)? - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AbsorbingAnalysis {
    /// Owned copy of the chain, kept so the dense matrix route
    /// ([`DenseRoute`]) can be built lazily, only when a matrix-land
    /// query actually asks for it.
    ctmc: Ctmc,
    /// Transient states in row/column order.
    transient: Vec<StateId>,
    /// Map from global state index to transient row index.
    pos: HashMap<usize, usize>,
    /// All absorbing states.
    absorbing: Vec<StateId>,
    /// The GTH elimination tier selected for this chain.
    tier: Tier,
    /// Fill created by the sparse elimination's mean-time pass (0 on the
    /// dense tier).
    fill: usize,
    /// GTH elimination pivots from the mean-time pass. Mathematically the
    /// diagonal of `U` in an unpivoted `R = LU`, so their product is
    /// `det(R)` — but each pivot is computed as a sum, never a difference.
    gth_pivots: Vec<f64>,
    /// `mtta[i]` = expected time to absorption from transient row `i`,
    /// computed by GTH elimination.
    mtta: Vec<f64>,
    /// `absorb_prob[a][i]` = P(absorbed in `a` | start in transient row
    /// `i`), computed per absorbing state by GTH elimination.
    absorb_prob: HashMap<usize, Vec<f64>>,
    /// Lazily-built dense absorption matrix and its factorization.
    dense: OnceLock<DenseRoute>,
}

/// The elimination storage a chain's structure selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverTier {
    /// CSR-style rows; only structural nonzeros visited.
    SparseGth,
    /// Dense `m × m` rate table (the differential-testing oracle, and the
    /// automatic fallback when the sparse pass fails).
    DenseGth,
}

/// Tier-specific elimination state.
#[derive(Debug)]
enum Tier {
    Sparse(SparseAbsorption),
    Dense {
        /// Transient-to-transient rates.
        q: Vec<Vec<f64>>,
        /// Per-state total rates into the absorbing class.
        qa: Vec<f64>,
    },
}

/// The dense matrix route: absorption matrix plus its (bandwidth-tiered)
/// LU factorization, built on first demand by [`AbsorbingAnalysis::det`],
/// [`AbsorbingAnalysis::condition_estimate`],
/// [`AbsorbingAnalysis::expected_time_in`] or
/// [`AbsorbingAnalysis::absorption_matrix`]. Sweep-style workloads that
/// only read GTH-computed quantities never pay for it.
#[derive(Debug)]
struct DenseRoute {
    r: Matrix,
    /// `None` when `r` is singular to working precision; every
    /// matrix-land query then falls back to GTH elimination.
    lu: Option<AnyLu>,
}

/// Minimum transient-state count for the sparse tier: below this the
/// dense table's straight-line loops beat per-entry binary searches.
pub const SPARSE_MIN_STATES: usize = 16;
/// Maximum transient-block density for the sparse tier.
pub const SPARSE_MAX_DENSITY: f64 = 0.25;

/// Subtraction-free (GTH-style) solve of `D_i·x_i = r_i + Σ_j q_ij·x_j`
/// over the transient states, where `q` holds non-negative transition
/// rates between transient states, `qa` the non-negative rates into the
/// absorbing class, and `r` a non-negative right-hand side.
///
/// With `r = 1` this yields mean times to absorption; with
/// `r = (rates into one absorbing state)` it yields the absorption
/// probabilities into that state.
///
/// Returns `(x, exit)` where `exit` holds the elimination pivots `D_t`
/// (whose product equals `det(R)`).
///
/// Every arithmetic operation is on non-negative quantities, which is what
/// buys stiffness-independent relative accuracy.
fn gth_solve(
    mut q: Vec<Vec<f64>>,
    mut qa: Vec<f64>,
    mut r: Vec<f64>,
) -> Result<(Vec<f64>, Vec<f64>)> {
    let m = qa.len();
    debug_assert_eq!(q.len(), m);
    debug_assert_eq!(r.len(), m);

    // Elimination pass: fold state t into the remaining states 0..t.
    let mut exit = vec![0.0; m]; // D_t at elimination time, reused in back-substitution
    for t in (0..m).rev() {
        // Exit rate over *remaining* targets (j < t) plus absorption —
        // recomputed as a sum (never a difference), the GTH trick.
        let mut d = qa[t];
        for &qtj in &q[t][..t] {
            d += qtj;
        }
        if d <= 0.0 {
            // State t cannot reach absorption once higher states are
            // eliminated: the chain is reducible w.r.t. absorption.
            return Err(Error::Linalg(nsr_linalg::Error::Singular { pivot: t }));
        }
        exit[t] = d;
        // Snapshot row t's live prefix so folding it into rows i < t does
        // not alias the table being updated.
        let row_t: Vec<f64> = q[t][..t].to_vec();
        for i in 0..t {
            let f = q[i][t] / d;
            if f == 0.0 {
                continue;
            }
            r[i] += f * r[t];
            qa[i] += f * qa[t];
            for (j, &qtj) in row_t.iter().enumerate() {
                if j != i {
                    let add = f * qtj;
                    if add > 0.0 {
                        q[i][j] += add;
                    }
                }
            }
        }
    }
    // Back-substitution: x_t = (r_t + Σ_{j<t} q_tj·x_j) / D_t — again all
    // non-negative.
    let mut x = vec![0.0; m];
    for t in 0..m {
        let mut acc = r[t];
        for (&qtj, &xj) in q[t].iter().zip(x.iter()).take(t) {
            acc += qtj * xj;
        }
        x[t] = acc / exit[t];
    }
    Ok((x, exit))
}

impl AbsorbingAnalysis {
    /// Builds the analysis for a chain.
    ///
    /// # Errors
    ///
    /// * [`Error::NoAbsorbingState`] / [`Error::NoTransientState`] if the
    ///   chain is not a proper absorbing chain.
    /// * [`Error::Linalg`] if some transient state cannot reach any
    ///   absorbing state (the absorption matrix is singular).
    pub fn new(ctmc: &Ctmc) -> Result<Self> {
        Self::build(ctmc, None)
    }

    /// Builds the analysis forcing a specific elimination tier, bypassing
    /// the structure-based selection. This is the differential-testing
    /// entry point: the sparse tier is validated by comparing it
    /// bit-for-bit against the dense oracle on the same chain.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn new_with_tier(ctmc: &Ctmc, tier: SolverTier) -> Result<Self> {
        Self::build(ctmc, Some(tier))
    }

    fn build(ctmc: &Ctmc, force: Option<SolverTier>) -> Result<Self> {
        let t0 = nsr_obs::metrics_timer();
        let mut span = nsr_obs::trace::Span::enter("markov.absorbing.solve");
        let absorbing = ctmc.absorbing_states();
        if absorbing.is_empty() {
            return Err(Error::NoAbsorbingState);
        }
        let transient = ctmc.transient_states();
        if transient.is_empty() {
            return Err(Error::NoTransientState);
        }
        let pos: HashMap<usize, usize> = transient
            .iter()
            .enumerate()
            .map(|(i, s)| (s.0, i))
            .collect();
        let m = transient.len();
        let ones = vec![1.0; m];

        // Tier selection: sparse elimination pays only when the chain is
        // big enough to amortize the per-entry indexing and genuinely
        // sparse; small or dense chains take the straight-line table.
        let sparse = SparseAbsorption::from_ctmc(ctmc, &transient, &pos);
        let want_sparse = match force {
            Some(SolverTier::SparseGth) => true,
            Some(SolverTier::DenseGth) => false,
            None => m >= SPARSE_MIN_STATES && sparse.density() <= SPARSE_MAX_DENSITY,
        };
        let mut fill = 0;
        let (tier, mtta, gth_pivots) = if want_sparse {
            match sparse.gth_solve(ones.clone()) {
                Ok(sol) if sol.x.iter().all(|v| v.is_finite()) => {
                    fill = sol.fill;
                    (Tier::Sparse(sparse), sol.x, sol.pivots)
                }
                // A singular chain fails identically on both tiers, so
                // propagate rather than retry when the tier was forced.
                Err(e) if force.is_some() => return Err(e),
                // A sparse failure (singular chain, or a non-finite result
                // from rate overflow) retries on the dense oracle; the
                // tiers are arithmetically identical, so a dense failure
                // is then a property of the chain, not of the tier.
                _ => {
                    crate::obs::SPARSE_FALLBACKS.inc();
                    Self::dense_tier(ctmc, &transient, &pos, ones)?
                }
            }
        } else {
            Self::dense_tier(ctmc, &transient, &pos, ones)?
        };

        // Absorption probabilities into each absorbing state: same
        // elimination with the per-target inflow rates as RHS.
        let mut absorb_prob = HashMap::new();
        for &a in &absorbing {
            let u = match &tier {
                Tier::Sparse(sp) => {
                    let r_target = SparseAbsorption::rates_into(ctmc, &transient, &pos, a);
                    sp.gth_solve(r_target)?.x
                }
                Tier::Dense { q, qa } => {
                    let (_, r_target) = Self::rate_tables(ctmc, &transient, &pos, Some(a));
                    gth_solve(q.clone(), qa.clone(), r_target)?.0
                }
            };
            absorb_prob.insert(a.0, u);
        }

        let analysis = AbsorbingAnalysis {
            ctmc: ctmc.clone(),
            transient,
            pos,
            absorbing,
            tier,
            fill,
            gth_pivots,
            mtta,
            absorb_prob,
            dense: OnceLock::new(),
        };
        crate::obs::SOLVES.inc();
        match analysis.solver_tier() {
            SolverTier::SparseGth => crate::obs::SPARSE_TIER.inc(),
            SolverTier::DenseGth => crate::obs::DENSE_TIER.inc(),
        }
        if let Some(t0) = t0 {
            crate::obs::SOLVE_SECONDS.observe(t0.elapsed().as_secs_f64());
            crate::obs::FILL.observe(analysis.fill as f64);
            // The κ∞ estimate needs the matrix route (materializes and
            // factors `R`), so it is only paid when someone turned
            // metrics on.
            crate::obs::CONDITION.observe(analysis.condition_estimate());
        }
        span.field("transient", || {
            nsr_obs::Json::Num(analysis.transient.len() as f64)
        });
        span.field("absorbing", || {
            nsr_obs::Json::Num(analysis.absorbing.len() as f64)
        });
        span.field("tier", || {
            nsr_obs::Json::Str(
                match analysis.solver_tier() {
                    SolverTier::SparseGth => "sparse",
                    SolverTier::DenseGth => "dense",
                }
                .into(),
            )
        });
        span.field("fill", || nsr_obs::Json::Num(analysis.fill as f64));
        drop(span);
        Ok(analysis)
    }

    /// Builds the dense elimination tier and runs the mean-time pass.
    fn dense_tier(
        ctmc: &Ctmc,
        transient: &[StateId],
        pos: &HashMap<usize, usize>,
        ones: Vec<f64>,
    ) -> Result<(Tier, Vec<f64>, Vec<f64>)> {
        let (q, qa) = Self::rate_tables(ctmc, transient, pos, None);
        let (mtta, pivots) = gth_solve(q.clone(), qa.clone(), ones)?;
        Ok((Tier::Dense { q, qa }, mtta, pivots))
    }

    /// The dense matrix route, built on first use: the absorption matrix
    /// `R` and its bandwidth-tiered LU factorization (or `None` when `R`
    /// is singular to working precision — the GTH fallback).
    fn dense_route(&self) -> &DenseRoute {
        self.dense.get_or_init(|| {
            // Stiff chains can make `r` singular *in floating point* even
            // though the exact absorption matrix never is; GTH still
            // succeeds there, so an LU failure downgrades to a fallback
            // rather than an error.
            let (r, _) = self.ctmc.absorption_matrix();
            let lu = AnyLu::factor_auto(&r).ok();
            if lu.is_none() {
                crate::obs::GTH_FALLBACKS.inc();
            }
            DenseRoute { r, lu }
        })
    }

    /// Solves `R·x = rhs` by GTH elimination on whichever tier this
    /// analysis selected.
    fn tier_solve(&self, rhs: Vec<f64>) -> Result<Vec<f64>> {
        match &self.tier {
            Tier::Sparse(sp) => Ok(sp.gth_solve(rhs)?.x),
            Tier::Dense { q, qa } => Ok(gth_solve(q.clone(), qa.clone(), rhs)?.0),
        }
    }

    /// Extracts the transient-to-transient rate table `q` and, depending on
    /// `target`, either the rates into *all* absorbing states (`None`) or
    /// the rates into one specific absorbing state (`Some`), as `qa`.
    fn rate_tables(
        ctmc: &Ctmc,
        transient: &[StateId],
        pos: &HashMap<usize, usize>,
        target: Option<StateId>,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let m = transient.len();
        let mut q = vec![vec![0.0; m]; m];
        let mut qa = vec![0.0; m];
        for (i, &s) in transient.iter().enumerate() {
            for &(to, rate) in ctmc.transitions_from(s) {
                if let Some(&j) = pos.get(&to.0) {
                    q[i][j] += rate;
                } else if target.is_none() || target == Some(to) {
                    qa[i] += rate;
                }
            }
        }
        (q, qa)
    }

    /// The transient states, in the internal row order.
    pub fn transient_states(&self) -> &[StateId] {
        &self.transient
    }

    /// The absorbing states.
    pub fn absorbing_states(&self) -> &[StateId] {
        &self.absorbing
    }

    /// The solver tier the chain's structure selected for GTH
    /// elimination.
    pub fn solver_tier(&self) -> SolverTier {
        match self.tier {
            Tier::Sparse(_) => SolverTier::SparseGth,
            Tier::Dense { .. } => SolverTier::DenseGth,
        }
    }

    /// Fill entries created by the sparse elimination's mean-time pass
    /// beyond the chain's structural nonzeros (0 on the dense tier, and 0
    /// for the fill-free BFS-ordered recursive chains).
    pub fn elimination_fill(&self) -> usize {
        self.fill
    }

    /// The absorption matrix `R = −Q_B` (row order = [`Self::transient_states`]).
    ///
    /// Materialized lazily on first call (the GTH-computed quantities
    /// never need it).
    pub fn absorption_matrix(&self) -> &Matrix {
        &self.dense_route().r
    }

    /// Determinant of the absorption matrix (the `det(R)` of the paper's
    /// appendix formula `M(R) = Num(R)/det(R)`).
    ///
    /// Computed from the LU factorization when available, otherwise as
    /// the product of the GTH elimination pivots (which is the same
    /// quantity, evaluated subtraction-free — for stiff chains it is the
    /// *more* accurate of the two).
    pub fn det(&self) -> f64 {
        match &self.dense_route().lu {
            Some(lu) => lu.det(),
            None => self.gth_pivots.iter().product(),
        }
    }

    /// `true` when the LU factorization of the absorption matrix failed
    /// (singular to working precision) and every matrix-land query is
    /// answered by GTH elimination instead.
    ///
    /// Forces the lazy matrix route to be built.
    pub fn uses_gth_fallback(&self) -> bool {
        self.dense_route().lu.is_none()
    }

    /// Which LU factorization backs the matrix route: `Some("banded-lu")`
    /// or `Some("dense-lu")`, or `None` when the factorization failed and
    /// the GTH fallback is in effect.
    ///
    /// Forces the lazy matrix route to be built.
    pub fn lu_kind(&self) -> Option<&'static str> {
        self.dense_route().lu.as_ref().map(|lu| {
            if lu.is_banded() {
                "banded-lu"
            } else {
                "dense-lu"
            }
        })
    }

    /// Estimate of the ∞-norm condition number `κ∞(R)` of the absorption
    /// matrix — how much of the 16 decimal digits a naive linear solve
    /// against `R` would lose. Returns `f64::INFINITY` when `R` is
    /// singular to working precision (the GTH fallback is in effect).
    ///
    /// This diagnoses the *matrix* route only: the GTH-computed
    /// quantities ([`Self::mean_time_to_absorption`],
    /// [`Self::absorption_probability`]) keep componentwise relative
    /// accuracy regardless of this value.
    pub fn condition_estimate(&self) -> f64 {
        let route = self.dense_route();
        match &route.lu {
            Some(lu) => lu.cond_inf(&route.r).unwrap_or(f64::INFINITY),
            None => f64::INFINITY,
        }
    }

    /// Mean time to absorption starting from transient state `from`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::StateNotTransient`] if `from` is absorbing.
    pub fn mean_time_to_absorption(&self, from: StateId) -> Result<f64> {
        let i = *self
            .pos
            .get(&from.0)
            .ok_or(Error::StateNotTransient { state: from.0 })?;
        Ok(self.mtta[i])
    }

    /// Expected total time spent in transient state `in_state` before
    /// absorption, starting from `from` — the `(from, in_state)` entry of
    /// the fundamental matrix `R⁻¹` (the `τᵢ` of equation (A.1)).
    ///
    /// Computed from the LU factorization when available; when the
    /// absorption matrix is singular to working precision the entry is
    /// recovered by a GTH elimination with `e_j` as the right-hand side,
    /// so stiff chains still get an answer instead of an error.
    ///
    /// # Errors
    ///
    /// Returns [`Error::StateNotTransient`] if either state is absorbing.
    pub fn expected_time_in(&self, from: StateId, in_state: StateId) -> Result<f64> {
        let i = *self
            .pos
            .get(&from.0)
            .ok_or(Error::StateNotTransient { state: from.0 })?;
        let j = *self
            .pos
            .get(&in_state.0)
            .ok_or(Error::StateNotTransient { state: in_state.0 })?;
        // (R⁻¹)_{ij} = e_iᵗ R⁻¹ e_j: solve R y = e_j, answer y_i.
        let mut e = vec![0.0; self.transient.len()];
        e[j] = 1.0;
        let y = match &self.dense_route().lu {
            Some(lu) => lu.solve(&e)?,
            // gth_solve computes x with D_i x_i = r_i + Σ_j q_ij x_j,
            // which is exactly R x = r, so e_j as RHS yields column j of
            // the fundamental matrix R⁻¹.
            None => self.tier_solve(e)?,
        };
        Ok(y[i])
    }

    /// Probability that the chain, started in transient state `from`, is
    /// eventually absorbed in `into` (GTH-computed at construction).
    ///
    /// # Errors
    ///
    /// * [`Error::StateNotTransient`] if `from` is absorbing.
    /// * [`Error::StateNotAbsorbing`] if `into` is transient.
    pub fn absorption_probability(&self, from: StateId, into: StateId) -> Result<f64> {
        let i = *self
            .pos
            .get(&from.0)
            .ok_or(Error::StateNotTransient { state: from.0 })?;
        let col = self
            .absorb_prob
            .get(&into.0)
            .ok_or(Error::StateNotAbsorbing { state: into.0 })?;
        Ok(col[i].clamp(0.0, 1.0))
    }

    /// The *pre-absorption occupancy distribution*: the fraction of its
    /// lifetime the chain spends in each transient state before
    /// absorption, starting from `from` (`τᵢ / MTTA` — a normalized view
    /// of the appendix's equation A.1 occupancies).
    ///
    /// # Errors
    ///
    /// Returns [`Error::StateNotTransient`] if `from` is absorbing.
    pub fn occupancy_distribution(&self, from: StateId) -> Result<Vec<(StateId, f64)>> {
        let mtta = self.mean_time_to_absorption(from)?;
        let mut out = Vec::with_capacity(self.transient.len());
        for &s in &self.transient {
            let t = self.expected_time_in(from, s)?;
            out.push((s, (t / mtta).max(0.0)));
        }
        Ok(out)
    }

    /// Mean time to absorption from an initial *distribution* over transient
    /// states (`π₀` in the appendix; entries for absorbing states must be
    /// absent/zero).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidArgument`] if the weights don't sum to ~1 or are
    ///   negative.
    /// * [`Error::StateNotTransient`] if a weighted state is absorbing.
    pub fn mean_time_to_absorption_from(&self, pi0: &[(StateId, f64)]) -> Result<f64> {
        let mut total_w = 0.0;
        let mut acc = 0.0;
        for &(s, w) in pi0 {
            if !(w.is_finite() && w >= 0.0) {
                return Err(Error::InvalidArgument {
                    what: "initial weights must be >= 0",
                });
            }
            let i = *self
                .pos
                .get(&s.0)
                .ok_or(Error::StateNotTransient { state: s.0 })?;
            acc += w * self.mtta[i];
            total_w += w;
        }
        if (total_w - 1.0).abs() > 1e-9 {
            return Err(Error::InvalidArgument {
                what: "initial weights must sum to 1",
            });
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn chain(a: f64, mu: f64, b2: f64) -> (Ctmc, StateId, StateId, StateId) {
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("0");
        let s1 = b.add_state("1");
        let s2 = b.add_state("2");
        b.add_transition(s0, s1, a).unwrap();
        b.add_transition(s1, s0, mu).unwrap();
        b.add_transition(s1, s2, b2).unwrap();
        (b.build().unwrap(), s0, s1, s2)
    }

    #[test]
    fn mtta_matches_closed_form() {
        let (lam_a, mu, lam_b) = (2e-3, 0.5, 1e-3);
        let (c, s0, _, _) = chain(lam_a, mu, lam_b);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let got = an.mean_time_to_absorption(s0).unwrap();
        let exact = (lam_a + lam_b + mu) / (lam_a * lam_b);
        assert!((got - exact).abs() / exact < 1e-12, "{got} vs {exact}");
    }

    #[test]
    fn gth_survives_extreme_stiffness() {
        // A 6-deep repairable chain with μ/λ = 10⁶: condition number ~1e36,
        // hopeless for LU, trivial for GTH. Compare against the analytic
        // leading term μ⁵/(λ⁶·∏1) — more precisely, build the chain and
        // compare with the exact product-form birth–death formula.
        let lam = 1e-6;
        let mu = 1.0;
        let depth = 6;
        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> = (0..=depth).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..depth {
            b.add_transition(states[i], states[i + 1], lam).unwrap();
            b.add_transition(states[i + 1], states[i], mu).unwrap();
        }
        b.add_transition(states[depth], dead, lam).unwrap();
        let c = b.build().unwrap();
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let got = an.mean_time_to_absorption(states[0]).unwrap();

        // Exact birth-death first-passage: T_i = 1/a_i + (b_i/a_i)·T_{i-1},
        // MTTA = Σ T_i (all-positive recurrence, exact to machine eps).
        let mut t_prev = 0.0;
        let mut total = 0.0;
        for i in 0..=depth {
            let b_i = if i == 0 { 0.0 } else { mu };
            let t_i = 1.0 / lam + (b_i / lam) * t_prev;
            total += t_i;
            t_prev = t_i;
        }
        assert!(
            (got - total).abs() / total < 1e-10,
            "GTH {got:.6e} vs product-form {total:.6e}"
        );
    }

    #[test]
    fn mtta_from_degraded_state_is_smaller() {
        let (c, s0, s1, _) = chain(1e-3, 1.0, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let from0 = an.mean_time_to_absorption(s0).unwrap();
        let from1 = an.mean_time_to_absorption(s1).unwrap();
        assert!(from1 < from0);
    }

    #[test]
    fn absorption_probability_single_sink_is_one() {
        let (c, s0, _, s2) = chain(1e-3, 1.0, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let p = an.absorption_probability(s0, s2).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn competing_sinks_split_by_rate() {
        let mut b = CtmcBuilder::new();
        let s = b.add_state("s");
        let a1 = b.add_state("a1");
        let a2 = b.add_state("a2");
        b.add_transition(s, a1, 3.0).unwrap();
        b.add_transition(s, a2, 1.0).unwrap();
        let c = b.build().unwrap();
        let an = AbsorbingAnalysis::new(&c).unwrap();
        assert!((an.absorption_probability(s, a1).unwrap() - 0.75).abs() < 1e-12);
        assert!((an.absorption_probability(s, a2).unwrap() - 0.25).abs() < 1e-12);
        assert!((an.mean_time_to_absorption(s).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn competing_sink_probabilities_sum_to_one_when_stiff() {
        // Stiff chain with two sinks: probabilities must still sum to 1 to
        // high relative accuracy.
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("0");
        let s1 = b.add_state("1");
        let sink1 = b.add_state("sink1");
        let sink2 = b.add_state("sink2");
        b.add_transition(s0, s1, 1e-9).unwrap();
        b.add_transition(s1, s0, 1.0).unwrap();
        b.add_transition(s1, sink1, 3e-9).unwrap();
        b.add_transition(s1, sink2, 1e-9).unwrap();
        let c = b.build().unwrap();
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let p1 = an.absorption_probability(s0, sink1).unwrap();
        let p2 = an.absorption_probability(s0, sink2).unwrap();
        assert!((p1 + p2 - 1.0).abs() < 1e-12, "{p1} + {p2}");
        assert!((p1 / p2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn expected_time_decomposes_mtta() {
        let (c, s0, s1, _) = chain(2e-3, 0.7, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let t00 = an.expected_time_in(s0, s0).unwrap();
        let t01 = an.expected_time_in(s0, s1).unwrap();
        let mtta = an.mean_time_to_absorption(s0).unwrap();
        assert!((t00 + t01 - mtta).abs() / mtta < 1e-10);
    }

    #[test]
    fn occupancy_distribution_sums_to_one_and_orders() {
        let (c, s0, s1, _) = chain(2e-3, 0.7, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let occ = an.occupancy_distribution(s0).unwrap();
        let total: f64 = occ.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        // The healthy state dominates a repairable system's lifetime.
        let f0 = occ.iter().find(|(s, _)| *s == s0).unwrap().1;
        let f1 = occ.iter().find(|(s, _)| *s == s1).unwrap().1;
        assert!(f0 > 0.99 && f1 < 0.01, "{f0} vs {f1}");
    }

    #[test]
    fn initial_distribution_mixes() {
        let (c, s0, s1, _) = chain(1e-3, 1.0, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        let m0 = an.mean_time_to_absorption(s0).unwrap();
        let m1 = an.mean_time_to_absorption(s1).unwrap();
        let mixed = an
            .mean_time_to_absorption_from(&[(s0, 0.25), (s1, 0.75)])
            .unwrap();
        assert!((mixed - (0.25 * m0 + 0.75 * m1)).abs() < 1e-9);
        assert!(an.mean_time_to_absorption_from(&[(s0, 0.5)]).is_err());
        assert!(an
            .mean_time_to_absorption_from(&[(s0, 0.5), (s1, -0.5)])
            .is_err());
    }

    #[test]
    fn errors_for_wrong_state_kinds() {
        let (c, s0, _, s2) = chain(1e-3, 1.0, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        assert!(matches!(
            an.mean_time_to_absorption(s2).unwrap_err(),
            Error::StateNotTransient { state: 2 }
        ));
        assert!(matches!(
            an.absorption_probability(s0, s0).unwrap_err(),
            Error::StateNotAbsorbing { state: 0 }
        ));
    }

    #[test]
    fn no_absorbing_state_rejected() {
        let mut b = CtmcBuilder::new();
        let x = b.add_state("x");
        let y = b.add_state("y");
        b.add_transition(x, y, 1.0).unwrap();
        b.add_transition(y, x, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            AbsorbingAnalysis::new(&c).unwrap_err(),
            Error::NoAbsorbingState
        ));
    }

    #[test]
    fn all_absorbing_rejected() {
        let mut b = CtmcBuilder::new();
        b.add_state("only");
        let c = b.build().unwrap();
        assert!(matches!(
            AbsorbingAnalysis::new(&c).unwrap_err(),
            Error::NoTransientState
        ));
    }

    #[test]
    fn unreachable_sink_detected() {
        // x <-> y cycle plus an unrelated absorbing state z: the transient
        // block cannot reach absorption.
        let mut b = CtmcBuilder::new();
        let x = b.add_state("x");
        let y = b.add_state("y");
        b.add_state("z");
        b.add_transition(x, y, 1.0).unwrap();
        b.add_transition(y, x, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            AbsorbingAnalysis::new(&c).unwrap_err(),
            Error::Linalg(_)
        ));
    }

    #[test]
    fn determinant_positive_for_absorbing_chain() {
        let (c, ..) = chain(1e-3, 1.0, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        assert!(an.det() > 0.0);
        assert_eq!(an.transient_states().len(), 2);
        assert_eq!(an.absorbing_states().len(), 1);
        assert_eq!(an.absorption_matrix().shape(), (2, 2));
    }

    #[test]
    fn benign_chain_keeps_the_lu_route() {
        let (c, ..) = chain(1e-3, 1.0, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        assert!(!an.uses_gth_fallback());
        let kappa = an.condition_estimate();
        assert!(kappa.is_finite() && kappa >= 1.0, "{kappa}");
        // The LU determinant and the GTH pivot product are the same
        // quantity computed two ways; for a well-conditioned chain they
        // must agree to near machine precision.
        let pivot_det: f64 = an.gth_pivots.iter().product();
        assert!((an.det() - pivot_det).abs() / pivot_det < 1e-12);
    }

    /// Deep repairable birth–death chain with absorption off the last
    /// state — sparse enough (and large enough) to select the sparse tier.
    fn deep_chain(depth: usize) -> (Ctmc, Vec<StateId>) {
        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> = (0..=depth).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..depth {
            b.add_transition(states[i], states[i + 1], 1e-3).unwrap();
            b.add_transition(states[i + 1], states[i], 1.0).unwrap();
        }
        b.add_transition(states[depth], dead, 1e-3).unwrap();
        (b.build().unwrap(), states)
    }

    #[test]
    fn tier_selection_follows_structure() {
        // Small chain: dense tier, no fill.
        let (c, ..) = chain(1e-3, 1.0, 1e-3);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        assert_eq!(an.solver_tier(), SolverTier::DenseGth);
        assert_eq!(an.elimination_fill(), 0);

        // 25 transient states, ~2 nonzeros per row: sparse tier, and the
        // birth–death structure eliminates fill-free.
        let (c, _) = deep_chain(24);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        assert_eq!(an.solver_tier(), SolverTier::SparseGth);
        assert_eq!(an.elimination_fill(), 0);
    }

    #[test]
    fn sparse_tier_is_bit_identical_to_dense_oracle() {
        let (c, states) = deep_chain(24);
        let sp = AbsorbingAnalysis::new_with_tier(&c, SolverTier::SparseGth).unwrap();
        let de = AbsorbingAnalysis::new_with_tier(&c, SolverTier::DenseGth).unwrap();
        assert_eq!(sp.solver_tier(), SolverTier::SparseGth);
        assert_eq!(de.solver_tier(), SolverTier::DenseGth);
        // Same elimination order, same accumulation order: every
        // GTH-computed quantity matches to the last bit.
        for &s in &states {
            assert_eq!(
                sp.mean_time_to_absorption(s).unwrap(),
                de.mean_time_to_absorption(s).unwrap(),
            );
        }
        assert_eq!(sp.gth_pivots, de.gth_pivots);
        for &a in sp.absorbing_states() {
            for &s in &states {
                assert_eq!(
                    sp.absorption_probability(s, a).unwrap(),
                    de.absorption_probability(s, a).unwrap(),
                );
            }
        }
    }

    #[test]
    fn forced_tier_propagates_singularity() {
        // x <-> y cycle that cannot reach the absorbing z: both forced
        // tiers must report the same singularity.
        let mut b = CtmcBuilder::new();
        let x = b.add_state("x");
        let y = b.add_state("y");
        b.add_state("z");
        b.add_transition(x, y, 1.0).unwrap();
        b.add_transition(y, x, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            AbsorbingAnalysis::new_with_tier(&c, SolverTier::SparseGth).unwrap_err(),
            Error::Linalg(_)
        ));
        assert!(matches!(
            AbsorbingAnalysis::new_with_tier(&c, SolverTier::DenseGth).unwrap_err(),
            Error::Linalg(_)
        ));
    }

    #[test]
    fn singular_to_working_precision_falls_back_to_gth() {
        // s0 <-> s1 at rate 1, s1 -> dead at 1e-20. The exact absorption
        // matrix [[1, -1], [-1, 1 + 1e-20]] rounds to the singular
        // [[1, -1], [-1, 1]] in f64, so LU fails — but GTH recomputes
        // every pivot as a sum (1e-20 survives as qa) and the analysis
        // must still deliver the whole API.
        let lam_abs = 1e-20;
        let (c, s0, s1, s2) = chain(1.0, 1.0, lam_abs);
        let an = AbsorbingAnalysis::new(&c).unwrap();
        assert!(an.uses_gth_fallback());
        assert_eq!(an.condition_estimate(), f64::INFINITY);

        // Closed form: MTTA = (λa + λb + μ)/(λa·λb) = (2 + 1e-20)/1e-20.
        let exact = (1.0 + lam_abs + 1.0) / lam_abs;
        let got = an.mean_time_to_absorption(s0).unwrap();
        assert!((got - exact).abs() / exact < 1e-12, "{got} vs {exact}");

        // det(R) = 1·(1 + 1e-20) − 1 = 1e-20 exactly in the reals; the
        // pivot product recovers it even though LU saw a zero pivot.
        let det = an.det();
        assert!((det - lam_abs).abs() / lam_abs < 1e-12, "{det}");

        // Fundamental-matrix entries via the GTH route still decompose
        // the mean time to absorption.
        let t00 = an.expected_time_in(s0, s0).unwrap();
        let t01 = an.expected_time_in(s0, s1).unwrap();
        assert!((t00 + t01 - got).abs() / got < 1e-10);
        assert!((an.absorption_probability(s0, s2).unwrap() - 1.0).abs() < 1e-12);
    }
}
