//! Structural classification of a chain: communicating classes and
//! absorption reachability.
//!
//! Building large reliability models programmatically invites wiring
//! mistakes — a repair transition pointing at the wrong state can leave a
//! region of the chain unable to reach absorption, which surfaces only as
//! an opaque singular-matrix error deep in the solver. This module makes
//! the structure inspectable: strongly connected components (Tarjan's
//! algorithm, iterative), and a [`validate_absorbing`] check with a
//! pinpointed diagnosis.

use crate::builder::StateId;
use crate::ctmc::Ctmc;
use crate::{Error, Result};

/// The strongly connected components of the chain's transition digraph,
/// in reverse topological order (successors before predecessors).
///
/// Each component is a set of mutually reachable states; absorbing states
/// are singleton components.
///
/// # Example
///
/// ```
/// use nsr_markov::{CtmcBuilder, strongly_connected_components};
///
/// # fn main() -> Result<(), nsr_markov::Error> {
/// let mut b = CtmcBuilder::new();
/// let a = b.add_state("a");
/// let c = b.add_state("c");
/// let dead = b.add_state("dead");
/// b.add_transition(a, c, 1.0)?;
/// b.add_transition(c, a, 1.0)?;
/// b.add_transition(c, dead, 0.1)?;
/// let sccs = strongly_connected_components(&b.build()?);
/// assert_eq!(sccs.len(), 2); // {a, c} and {dead}
/// # Ok(())
/// # }
/// ```
pub fn strongly_connected_components(ctmc: &Ctmc) -> Vec<Vec<StateId>> {
    // Iterative Tarjan.
    let n = ctmc.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<StateId>> = Vec::new();

    // Explicit DFS frames: (node, next child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let transitions = ctmc.transitions_from(StateId(v));
            if *child < transitions.len() {
                let w = transitions[*child].0 .0;
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack underflow");
                        on_stack[w] = false;
                        comp.push(StateId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// A diagnosis of a chain's fitness for absorbing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsorbingDiagnosis {
    /// States that cannot reach any absorbing state (empty for a proper
    /// absorbing chain).
    pub trapped_states: Vec<StateId>,
    /// Number of absorbing states found.
    pub absorbing_count: usize,
    /// Number of strongly connected components.
    pub component_count: usize,
}

/// Checks that every transient state can reach an absorbing state, naming
/// the trapped states when not.
///
/// # Errors
///
/// * [`Error::NoAbsorbingState`] if there is no absorbing state at all.
///
/// A chain *with* trapped states is reported through the diagnosis rather
/// than an error, so callers can print the offending labels.
pub fn validate_absorbing(ctmc: &Ctmc) -> Result<AbsorbingDiagnosis> {
    let absorbing = ctmc.absorbing_states();
    if absorbing.is_empty() {
        return Err(Error::NoAbsorbingState);
    }
    // Reverse reachability from the absorbing set.
    let n = ctmc.len();
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in ctmc.transitions() {
        reverse[t.to.0].push(t.from.0);
    }
    let mut reached = vec![false; n];
    let mut queue: Vec<usize> = absorbing.iter().map(|s| s.0).collect();
    for &a in &queue {
        reached[a] = true;
    }
    while let Some(v) = queue.pop() {
        for &u in &reverse[v] {
            if !reached[u] {
                reached[u] = true;
                queue.push(u);
            }
        }
    }
    let trapped_states: Vec<StateId> = (0..n).filter(|&v| !reached[v]).map(StateId).collect();
    Ok(AbsorbingDiagnosis {
        trapped_states,
        absorbing_count: absorbing.len(),
        component_count: strongly_connected_components(ctmc).len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    #[test]
    fn scc_of_a_cycle_plus_sink() {
        let mut b = CtmcBuilder::new();
        let x = b.add_state("x");
        let y = b.add_state("y");
        let z = b.add_state("z");
        let dead = b.add_state("dead");
        b.add_transition(x, y, 1.0).unwrap();
        b.add_transition(y, x, 1.0).unwrap();
        b.add_transition(y, z, 1.0).unwrap();
        b.add_transition(z, dead, 1.0).unwrap();
        let sccs = strongly_connected_components(&b.build().unwrap());
        assert_eq!(sccs.len(), 3); // {x,y}, {z}, {dead}
        let sizes: Vec<usize> = sccs.iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&2));
        // Reverse topological: the sink comes before the cycle.
        let pos_dead = sccs.iter().position(|c| c.contains(&dead)).unwrap();
        let pos_cycle = sccs.iter().position(|c| c.contains(&x)).unwrap();
        assert!(pos_dead < pos_cycle);
    }

    #[test]
    fn proper_absorbing_chain_has_no_trapped_states() {
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("0");
        let s1 = b.add_state("1");
        let dead = b.add_state("dead");
        b.add_transition(s0, s1, 1.0).unwrap();
        b.add_transition(s1, s0, 1.0).unwrap();
        b.add_transition(s1, dead, 0.1).unwrap();
        let d = validate_absorbing(&b.build().unwrap()).unwrap();
        assert!(d.trapped_states.is_empty());
        assert_eq!(d.absorbing_count, 1);
    }

    #[test]
    fn trapped_region_is_pinpointed() {
        // Two islands: {a, b} can never reach the sink hanging off {c}.
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a");
        let bb = b.add_state("b");
        let c = b.add_state("c");
        let dead = b.add_state("dead");
        b.add_transition(a, bb, 1.0).unwrap();
        b.add_transition(bb, a, 1.0).unwrap();
        b.add_transition(c, dead, 1.0).unwrap();
        let d = validate_absorbing(&b.build().unwrap()).unwrap();
        assert_eq!(d.trapped_states, vec![a, bb]);
    }

    #[test]
    fn no_absorbing_state_is_an_error() {
        let mut b = CtmcBuilder::new();
        let x = b.add_state("x");
        let y = b.add_state("y");
        b.add_transition(x, y, 1.0).unwrap();
        b.add_transition(y, x, 1.0).unwrap();
        assert!(matches!(
            validate_absorbing(&b.build().unwrap()).unwrap_err(),
            Error::NoAbsorbingState
        ));
    }

    #[test]
    fn reliability_chains_validate_clean() {
        // The workspace's own model chains must pass structural validation
        // (this is the check that would have caught a mis-wired repair).
        let mut b = CtmcBuilder::new();
        let states: Vec<_> = (0..4).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..3usize {
            b.add_transition(states[i], states[i + 1], 1e-3).unwrap();
            b.add_transition(states[i + 1], states[i], 1.0).unwrap();
        }
        b.add_transition(states[3], dead, 1e-3).unwrap();
        let ctmc = b.build().unwrap();
        let d = validate_absorbing(&ctmc).unwrap();
        assert!(d.trapped_states.is_empty());
        // Transient states form one communicating class + the sink.
        assert_eq!(d.component_count, 2);
    }

    #[test]
    fn singleton_chain() {
        let mut b = CtmcBuilder::new();
        b.add_state("only");
        let ctmc = b.build().unwrap();
        let sccs = strongly_connected_components(&ctmc);
        assert_eq!(sccs.len(), 1);
        // All states absorbing: validation passes trivially (no transient).
        let d = validate_absorbing(&ctmc).unwrap();
        assert!(d.trapped_states.is_empty());
    }
}
