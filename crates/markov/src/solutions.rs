//! Stationary and transient solutions of a CTMC.

use nsr_linalg::{vector, Lu, Matrix};

use crate::ctmc::Ctmc;
use crate::{Error, Result};

/// Computes the stationary distribution `π` of an irreducible CTMC by
/// solving `π·Q = 0`, `Σπᵢ = 1`.
///
/// # Errors
///
/// * [`Error::NotIrreducible`] if the chain has absorbing states, the
///   linear system is singular, or the solve produces negative mass —
///   all symptoms of a reducible chain.
///
/// # Example
///
/// ```
/// use nsr_markov::{CtmcBuilder, stationary_distribution};
///
/// # fn main() -> Result<(), nsr_markov::Error> {
/// // Two-state machine: fails at rate 1, repairs at rate 9.
/// let mut b = CtmcBuilder::new();
/// let up = b.add_state("up");
/// let down = b.add_state("down");
/// b.add_transition(up, down, 1.0)?;
/// b.add_transition(down, up, 9.0)?;
/// let pi = stationary_distribution(&b.build()?)?;
/// assert!((pi[0] - 0.9).abs() < 1e-12); // availability
/// # Ok(())
/// # }
/// ```
pub fn stationary_distribution(ctmc: &Ctmc) -> Result<Vec<f64>> {
    let n = ctmc.len();
    if !ctmc.absorbing_states().is_empty() {
        return Err(Error::NotIrreducible);
    }
    // Solve Qᵗ·πᵗ = 0 with the last equation replaced by Σπ = 1.
    let q = ctmc.generator();
    let mut a = q.transpose();
    for c in 0..n {
        a[(n - 1, c)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let lu = Lu::factor(&a).map_err(|_| Error::NotIrreducible)?;
    let pi = lu.solve_refined(&a, &b)?;
    if pi.iter().any(|&p| !(p.is_finite() && p >= -1e-9)) {
        return Err(Error::NotIrreducible);
    }
    let mut pi: Vec<f64> = pi.into_iter().map(|p| p.max(0.0)).collect();
    if !vector::normalize_prob(&mut pi) {
        return Err(Error::NotIrreducible);
    }
    Ok(pi)
}

/// Computes the transient state distribution `π(t)` by uniformization:
///
/// ```text
/// π(t) = Σ_k  e^{−Λt} (Λt)^k / k!  ·  π(0)·Pᵏ,     P = I + Q/Λ
/// ```
///
/// with the Poisson series truncated once its remaining mass drops below
/// `tol`. Works for any chain (absorbing or not).
///
/// # Errors
///
/// * [`Error::InvalidArgument`] if `t < 0`, `tol` is not in `(0, 1)`, or
///   `pi0` is not a distribution over the chain's states.
///
/// # Example
///
/// ```
/// use nsr_markov::{CtmcBuilder, transient_distribution};
///
/// # fn main() -> Result<(), nsr_markov::Error> {
/// let mut b = CtmcBuilder::new();
/// let up = b.add_state("up");
/// let down = b.add_state("down");
/// b.add_transition(up, down, 1.0)?;
/// let ctmc = b.build()?;
/// let mut pi0 = vec![1.0, 0.0];
/// let pi = transient_distribution(&ctmc, &pi0, 1.0, 1e-12)?;
/// // P(still up at t=1) = e^{-1}
/// assert!((pi[0] - (-1.0f64).exp()).abs() < 1e-9);
/// # pi0[0] = 1.0;
/// # Ok(())
/// # }
/// ```
pub fn transient_distribution(ctmc: &Ctmc, pi0: &[f64], t: f64, tol: f64) -> Result<Vec<f64>> {
    let n = ctmc.len();
    if pi0.len() != n {
        return Err(Error::InvalidArgument {
            what: "pi0 length must equal state count",
        });
    }
    if !(t >= 0.0 && t.is_finite()) {
        return Err(Error::InvalidArgument {
            what: "t must be finite and >= 0",
        });
    }
    if !(tol > 0.0 && tol < 1.0) {
        return Err(Error::InvalidArgument {
            what: "tol must be in (0, 1)",
        });
    }
    let mass: f64 = pi0.iter().sum();
    if pi0.iter().any(|&p| p < 0.0) || (mass - 1.0).abs() > 1e-9 {
        return Err(Error::InvalidArgument {
            what: "pi0 must be a probability distribution",
        });
    }
    if t == 0.0 {
        return Ok(pi0.to_vec());
    }

    let lambda = ctmc.max_total_rate() * 1.02 + 1e-300;
    // P = I + Q/Λ.
    let q = ctmc.generator();
    let mut p = q.scaled(1.0 / lambda);
    for i in 0..n {
        p[(i, i)] += 1.0;
    }

    let lt = lambda * t;
    // Poisson(lt) weights computed iteratively in log space for stability.
    let mut result = vec![0.0; n];
    // Double-buffered power iteration: π0·P^k ping-pongs between `v` and
    // `next` so the (possibly thousands of) uniformization steps are
    // allocation-free after setup.
    let mut v = pi0.to_vec(); // π0 · P^k
    let mut next = vec![0.0; n];
    let mut log_w = -lt; // log of Poisson(k=0) weight
    let mut cum = 0.0;
    let mut k: u64 = 0;
    // Hard cap prevents pathological loops; Poisson mass is concentrated
    // around lt with width ~sqrt(lt).
    let cap = (lt + 10.0 * lt.sqrt() + 50.0) as u64;
    loop {
        let w = log_w.exp();
        if w > 0.0 {
            vector::axpy(w, &v, &mut result);
            cum += w;
        }
        if 1.0 - cum < tol || k >= cap {
            break;
        }
        p.vec_mul_into(&v, &mut next)?;
        std::mem::swap(&mut v, &mut next);
        k += 1;
        log_w += (lt / k as f64).ln();
    }
    // Guard against truncation drift.
    let _ = vector::normalize_prob(&mut result);
    Ok(result)
}

/// Returns the uniformized DTMC transition matrix `P = I + Q/Λ` and the
/// uniformization constant `Λ` used (1.02 × max exit rate).
///
/// Useful for callers that want to iterate the embedded uniformized chain
/// themselves (e.g. for repeated transient queries at many horizons).
pub fn uniformized(ctmc: &Ctmc) -> (Matrix, f64) {
    let lambda = ctmc.max_total_rate() * 1.02 + 1e-300;
    let mut p = ctmc.generator().scaled(1.0 / lambda);
    for i in 0..ctmc.len() {
        p[(i, i)] += 1.0;
    }
    (p, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn machine(fail: f64, repair: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up");
        let down = b.add_state("down");
        b.add_transition(up, down, fail).unwrap();
        b.add_transition(down, up, repair).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stationary_two_state() {
        let c = machine(2.0, 8.0);
        let pi = stationary_distribution(&c).unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stationary_birth_death() {
        // M/M/1-like 3-state birth-death chain; detailed balance gives
        // geometric stationary probabilities.
        let (lam, mu) = (1.0, 2.0);
        let mut b = CtmcBuilder::new();
        let s: Vec<_> = (0..3).map(|i| b.add_state(format!("{i}"))).collect();
        b.add_transition(s[0], s[1], lam).unwrap();
        b.add_transition(s[1], s[2], lam).unwrap();
        b.add_transition(s[1], s[0], mu).unwrap();
        b.add_transition(s[2], s[1], mu).unwrap();
        let pi = stationary_distribution(&b.build().unwrap()).unwrap();
        let rho: f64 = lam / mu;
        let z = 1.0 + rho + rho * rho;
        assert!((pi[0] - 1.0 / z).abs() < 1e-12);
        assert!((pi[1] - rho / z).abs() < 1e-12);
        assert!((pi[2] - rho * rho / z).abs() < 1e-12);
    }

    #[test]
    fn stationary_rejects_absorbing() {
        let mut b = CtmcBuilder::new();
        let x = b.add_state("x");
        let y = b.add_state("y");
        b.add_transition(x, y, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            stationary_distribution(&c).unwrap_err(),
            Error::NotIrreducible
        ));
    }

    #[test]
    fn transient_matches_exponential_decay() {
        let c = machine(0.5, 0.0001);
        // Nearly-pure decay from "up": P(up, t) ≈ e^{-0.5 t} for small t.
        let pi = transient_distribution(&c, &[1.0, 0.0], 0.1, 1e-13).unwrap();
        let expected = (-0.05f64).exp();
        assert!((pi[0] - expected).abs() < 1e-4, "{} vs {expected}", pi[0]);
    }

    #[test]
    fn transient_converges_to_stationary() {
        let c = machine(1.0, 3.0);
        let pi_inf = stationary_distribution(&c).unwrap();
        let pi_t = transient_distribution(&c, &[1.0, 0.0], 50.0, 1e-12).unwrap();
        for (a, b) in pi_inf.iter().zip(&pi_t) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_at_zero_is_initial() {
        let c = machine(1.0, 1.0);
        let pi = transient_distribution(&c, &[0.3, 0.7], 0.0, 1e-12).unwrap();
        assert_eq!(pi, vec![0.3, 0.7]);
    }

    #[test]
    fn transient_validates_arguments() {
        let c = machine(1.0, 1.0);
        assert!(transient_distribution(&c, &[1.0], 1.0, 1e-12).is_err());
        assert!(transient_distribution(&c, &[1.0, 0.0], -1.0, 1e-12).is_err());
        assert!(transient_distribution(&c, &[1.0, 0.0], 1.0, 0.0).is_err());
        assert!(transient_distribution(&c, &[0.6, 0.6], 1.0, 1e-12).is_err());
        assert!(transient_distribution(&c, &[-0.5, 1.5], 1.0, 1e-12).is_err());
    }

    #[test]
    fn uniformized_is_stochastic() {
        let c = machine(2.0, 5.0);
        let (p, lambda) = uniformized(&c);
        assert!(lambda >= 5.0);
        for r in 0..2 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }
}
