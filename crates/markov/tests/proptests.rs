//! Property-based tests for the CTMC toolkit: generator identities, the
//! GTH absorbing analysis against independent oracles, and simulation
//! consistency.

use nsr_markov::{
    birth_death_mtta, simulate, AbsorbingAnalysis, Ctmc, CtmcBuilder, StateId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random absorbing chain over `n` transient states plus one
/// absorbing state. Every transient state gets a path toward absorption
/// through the "next" state, so the chain is proper.
fn random_absorbing_chain(n: usize) -> impl Strategy<Value = (Ctmc, StateId)> {
    let rates = prop::collection::vec(0.01f64..10.0, n * n + n);
    rates.prop_map(move |r| {
        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> = (0..n).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        let mut idx = 0;
        for i in 0..n {
            for j in 0..n {
                if i != j && r[idx] > 5.0 {
                    // Sparse-ish random structure.
                    b.add_transition(states[i], states[j], r[idx] - 5.0).unwrap();
                }
                idx += 1;
            }
        }
        for i in 0..n {
            // Guaranteed absorption path.
            b.add_transition(states[i], dead, r[n * n + i]).unwrap();
        }
        (b.build().unwrap(), states[0])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_rows_sum_to_zero((ctmc, _) in random_absorbing_chain(5)) {
        let q = ctmc.generator();
        for r in 0..ctmc.len() {
            let sum: f64 = q.row(r).iter().sum();
            prop_assert!(sum.abs() < 1e-9, "row {r}: {sum}");
        }
    }

    #[test]
    fn mtta_positive_and_bounded_by_slowest_exit((ctmc, root) in random_absorbing_chain(5)) {
        let an = AbsorbingAnalysis::new(&ctmc).unwrap();
        let mtta = an.mean_time_to_absorption(root).unwrap();
        prop_assert!(mtta > 0.0 && mtta.is_finite());
        // Lower bound: expected holding time of the root alone.
        prop_assert!(mtta >= 1.0 / ctmc.total_rate(root) - 1e-12);
    }

    #[test]
    fn absorption_probabilities_sum_to_one((ctmc, root) in random_absorbing_chain(4)) {
        let an = AbsorbingAnalysis::new(&ctmc).unwrap();
        let total: f64 = an
            .absorbing_states()
            .iter()
            .map(|&a| an.absorption_probability(root, a).unwrap())
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn occupancies_decompose_mtta((ctmc, root) in random_absorbing_chain(4)) {
        let an = AbsorbingAnalysis::new(&ctmc).unwrap();
        let mtta = an.mean_time_to_absorption(root).unwrap();
        let sum: f64 = an
            .transient_states()
            .iter()
            .map(|&s| an.expected_time_in(root, s).unwrap())
            .sum();
        prop_assert!((sum - mtta).abs() / mtta < 1e-6, "{sum} vs {mtta}");
    }

    #[test]
    fn rate_scaling_scales_time((ctmc, root) in random_absorbing_chain(4), scale in 0.1f64..10.0) {
        // Scaling every rate by c divides every expected time by c.
        let an = AbsorbingAnalysis::new(&ctmc).unwrap();
        let base = an.mean_time_to_absorption(root).unwrap();

        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> =
            ctmc.states().map(|s| b.add_state(ctmc.label(s))).collect();
        for t in ctmc.transitions() {
            b.add_transition(states[t.from.index()], states[t.to.index()], t.rate * scale)
                .unwrap();
        }
        let scaled = b.build().unwrap();
        let an2 = AbsorbingAnalysis::new(&scaled).unwrap();
        let fast = an2.mean_time_to_absorption(states[root.index()]).unwrap();
        prop_assert!((fast * scale - base).abs() / base < 1e-9);
    }

    #[test]
    fn birth_death_oracle_agrees_with_gth(
        depth in 1usize..6,
        lam in 1e-6f64..1e-2,
        mu in 0.01f64..10.0,
    ) {
        let forward: Vec<f64> = (0..=depth).map(|i| lam * (depth + 1 - i) as f64).collect();
        let backward = vec![mu; depth];
        let oracle = birth_death_mtta(&forward, &backward).unwrap();

        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> =
            (0..=depth).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..=depth {
            let to = if i < depth { states[i + 1] } else { dead };
            b.add_transition(states[i], to, forward[i]).unwrap();
            if i > 0 {
                b.add_transition(states[i], states[i - 1], mu).unwrap();
            }
        }
        let ctmc = b.build().unwrap();
        let gth = AbsorbingAnalysis::new(&ctmc)
            .unwrap()
            .mean_time_to_absorption(states[0])
            .unwrap();
        prop_assert!((oracle - gth).abs() / gth < 1e-9, "{oracle:.6e} vs {gth:.6e}");
    }
}

#[test]
fn simulation_matches_analysis_on_random_chain() {
    // One deterministic random chain, simulated heavily.
    let mut b = CtmcBuilder::new();
    let s0 = b.add_state("0");
    let s1 = b.add_state("1");
    let s2 = b.add_state("2");
    let dead = b.add_state("dead");
    b.add_transition(s0, s1, 0.8).unwrap();
    b.add_transition(s1, s0, 1.5).unwrap();
    b.add_transition(s1, s2, 0.7).unwrap();
    b.add_transition(s2, s1, 0.9).unwrap();
    b.add_transition(s2, dead, 0.4).unwrap();
    b.add_transition(s0, dead, 0.05).unwrap();
    let ctmc = b.build().unwrap();
    let analytic = AbsorbingAnalysis::new(&ctmc)
        .unwrap()
        .mean_time_to_absorption(s0)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(2718);
    let est = simulate::estimate_mtta(&ctmc, s0, 20_000, &mut rng).unwrap();
    assert!(
        est.contains(analytic, 4.0),
        "simulated {est} vs analytic {analytic}"
    );
}
