//! Property-based tests for the CTMC toolkit: generator identities, the
//! GTH absorbing analysis against independent oracles, and simulation
//! consistency. Random chains come from the in-repo seeded PRNG.

use nsr_markov::{
    birth_death_mtta, simulate, AbsorbingAnalysis, Ctmc, CtmcBuilder, SolverTier, StateId,
};
use nsr_rng::rngs::StdRng;
use nsr_rng::{Rng, SeedableRng};

/// A random absorbing chain over `n` transient states plus one absorbing
/// state. Every transient state gets a path toward absorption through the
/// "dead" state, so the chain is proper.
fn random_absorbing_chain<R: Rng + ?Sized>(rng: &mut R, n: usize) -> (Ctmc, StateId) {
    let mut b = CtmcBuilder::new();
    let states: Vec<StateId> = (0..n).map(|i| b.add_state(format!("{i}"))).collect();
    let dead = b.add_state("dead");
    for i in 0..n {
        for j in 0..n {
            let r = rng.random_range_f64(0.01, 10.0);
            if i != j && r > 5.0 {
                // Sparse-ish random structure.
                b.add_transition(states[i], states[j], r - 5.0).unwrap();
            }
        }
    }
    for &s in &states {
        // Guaranteed absorption path.
        b.add_transition(s, dead, rng.random_range_f64(0.01, 10.0))
            .unwrap();
    }
    (b.build().unwrap(), states[0])
}

#[test]
fn generator_rows_sum_to_zero() {
    let mut rng = StdRng::seed_from_u64(0xabc_0001);
    for _ in 0..48 {
        let (ctmc, _) = random_absorbing_chain(&mut rng, 5);
        let q = ctmc.generator();
        for r in 0..ctmc.len() {
            let sum: f64 = q.row(r).iter().sum();
            assert!(sum.abs() < 1e-9, "row {r}: {sum}");
        }
    }
}

#[test]
fn mtta_positive_and_bounded_by_slowest_exit() {
    let mut rng = StdRng::seed_from_u64(0xabc_0002);
    for _ in 0..48 {
        let (ctmc, root) = random_absorbing_chain(&mut rng, 5);
        let an = AbsorbingAnalysis::new(&ctmc).unwrap();
        let mtta = an.mean_time_to_absorption(root).unwrap();
        assert!(mtta > 0.0 && mtta.is_finite());
        // Lower bound: expected holding time of the root alone.
        assert!(mtta >= 1.0 / ctmc.total_rate(root) - 1e-12);
    }
}

#[test]
fn absorption_probabilities_sum_to_one() {
    let mut rng = StdRng::seed_from_u64(0xabc_0003);
    for _ in 0..48 {
        let (ctmc, root) = random_absorbing_chain(&mut rng, 4);
        let an = AbsorbingAnalysis::new(&ctmc).unwrap();
        let total: f64 = an
            .absorbing_states()
            .iter()
            .map(|&a| an.absorption_probability(root, a).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }
}

#[test]
fn occupancies_decompose_mtta() {
    let mut rng = StdRng::seed_from_u64(0xabc_0004);
    for _ in 0..48 {
        let (ctmc, root) = random_absorbing_chain(&mut rng, 4);
        let an = AbsorbingAnalysis::new(&ctmc).unwrap();
        let mtta = an.mean_time_to_absorption(root).unwrap();
        let sum: f64 = an
            .transient_states()
            .iter()
            .map(|&s| an.expected_time_in(root, s).unwrap())
            .sum();
        assert!((sum - mtta).abs() / mtta < 1e-6, "{sum} vs {mtta}");
    }
}

#[test]
fn rate_scaling_scales_time() {
    // Scaling every rate by c divides every expected time by c.
    let mut rng = StdRng::seed_from_u64(0xabc_0005);
    for _ in 0..48 {
        let (ctmc, root) = random_absorbing_chain(&mut rng, 4);
        let scale = rng.random_range_f64(0.1, 10.0);
        let an = AbsorbingAnalysis::new(&ctmc).unwrap();
        let base = an.mean_time_to_absorption(root).unwrap();

        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> = ctmc.states().map(|s| b.add_state(ctmc.label(s))).collect();
        for t in ctmc.transitions() {
            b.add_transition(states[t.from.index()], states[t.to.index()], t.rate * scale)
                .unwrap();
        }
        let scaled = b.build().unwrap();
        let an2 = AbsorbingAnalysis::new(&scaled).unwrap();
        let fast = an2.mean_time_to_absorption(states[root.index()]).unwrap();
        assert!((fast * scale - base).abs() / base < 1e-9);
    }
}

#[test]
fn birth_death_oracle_agrees_with_gth() {
    let mut rng = StdRng::seed_from_u64(0xabc_0006);
    for _ in 0..48 {
        let depth = rng.random_range_usize(1, 6);
        // Log-uniform λ over [1e-6, 1e-2); uniform μ over [0.01, 10).
        let lam = 10f64.powf(rng.random_range_f64(-6.0, -2.0));
        let mu = rng.random_range_f64(0.01, 10.0);
        let forward: Vec<f64> = (0..=depth).map(|i| lam * (depth + 1 - i) as f64).collect();
        let backward = vec![mu; depth];
        let oracle = birth_death_mtta(&forward, &backward).unwrap();

        let mut b = CtmcBuilder::new();
        let states: Vec<StateId> = (0..=depth).map(|i| b.add_state(format!("{i}"))).collect();
        let dead = b.add_state("dead");
        for i in 0..=depth {
            let to = if i < depth { states[i + 1] } else { dead };
            b.add_transition(states[i], to, forward[i]).unwrap();
            if i > 0 {
                b.add_transition(states[i], states[i - 1], mu).unwrap();
            }
        }
        let ctmc = b.build().unwrap();
        let gth = AbsorbingAnalysis::new(&ctmc)
            .unwrap()
            .mean_time_to_absorption(states[0])
            .unwrap();
        assert!(
            (oracle - gth).abs() / gth < 1e-9,
            "{oracle:.6e} vs {gth:.6e}"
        );
    }
}

/// A random chain where only *some* transient states can reach absorption
/// directly, some states are isolated feeders, and singular structures
/// (no path to absorption at all) are possible.
fn random_maybe_improper_chain<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Ctmc {
    let mut b = CtmcBuilder::new();
    let states: Vec<StateId> = (0..n).map(|i| b.add_state(format!("{i}"))).collect();
    let dead = b.add_state("dead");
    // Per-chain densities drawn so that both regimes occur: low p_abs
    // chains frequently have no path to absorption at all (singular),
    // while higher ones are proper.
    let p_edge = rng.random_range_f64(0.05, 0.3);
    let p_abs = rng.random_range_f64(0.0, 0.3);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.random_range_f64(0.0, 1.0) < p_edge {
                b.add_transition(states[i], states[j], rng.random_range_f64(0.01, 10.0))
                    .unwrap();
            }
        }
        // Only some states get a direct absorption edge; the rest must
        // route through them (or cannot absorb at all — singular).
        if rng.random_range_f64(0.0, 1.0) < p_abs {
            b.add_transition(states[i], dead, rng.random_range_f64(0.01, 10.0))
                .unwrap();
        }
    }
    b.build().unwrap()
}

#[test]
fn sparse_and_dense_gth_tiers_are_bit_identical() {
    // The sparse elimination claims bit-for-bit agreement with the dense
    // oracle (same elimination order, same accumulation order). Pin that
    // with exact `==` comparisons across random chains, including chains
    // with isolated states and absorbing-only corners, where both tiers
    // must agree on singularity too.
    let mut rng = StdRng::seed_from_u64(0xabc_0007);
    let mut proper = 0;
    let mut singular = 0;
    for _ in 0..160 {
        let n = rng.random_range_usize(2, 20);
        let ctmc = random_maybe_improper_chain(&mut rng, n);
        let de = AbsorbingAnalysis::new_with_tier(&ctmc, SolverTier::DenseGth);
        let sp = AbsorbingAnalysis::new_with_tier(&ctmc, SolverTier::SparseGth);
        match (de, sp) {
            (Ok(de), Ok(sp)) => {
                proper += 1;
                for &s in de.transient_states() {
                    assert_eq!(
                        de.mean_time_to_absorption(s).unwrap(),
                        sp.mean_time_to_absorption(s).unwrap(),
                        "mtta diverged on a {n}-state chain"
                    );
                    for &a in de.absorbing_states() {
                        assert_eq!(
                            de.absorption_probability(s, a).unwrap(),
                            sp.absorption_probability(s, a).unwrap(),
                            "absorption probability diverged on a {n}-state chain"
                        );
                    }
                }
            }
            (Err(_), Err(_)) => singular += 1,
            (de, sp) => panic!(
                "tiers disagreed on solvability: dense {:?} vs sparse {:?}",
                de.map(|_| ()),
                sp.map(|_| ())
            ),
        }
    }
    // The generator must actually exercise both regimes.
    assert!(
        proper > 10 && singular > 10,
        "{proper} proper / {singular} singular"
    );
}

#[test]
fn auto_tier_agrees_with_forced_dense_on_proper_chains() {
    let mut rng = StdRng::seed_from_u64(0xabc_0008);
    for _ in 0..32 {
        let n = rng.random_range_usize(2, 24);
        let (ctmc, root) = random_absorbing_chain(&mut rng, n);
        let auto = AbsorbingAnalysis::new(&ctmc).unwrap();
        let de = AbsorbingAnalysis::new_with_tier(&ctmc, SolverTier::DenseGth).unwrap();
        assert_eq!(
            auto.mean_time_to_absorption(root).unwrap(),
            de.mean_time_to_absorption(root).unwrap()
        );
    }
}

#[test]
fn simulation_matches_analysis_on_random_chain() {
    // One deterministic random chain, simulated heavily.
    let mut b = CtmcBuilder::new();
    let s0 = b.add_state("0");
    let s1 = b.add_state("1");
    let s2 = b.add_state("2");
    let dead = b.add_state("dead");
    b.add_transition(s0, s1, 0.8).unwrap();
    b.add_transition(s1, s0, 1.5).unwrap();
    b.add_transition(s1, s2, 0.7).unwrap();
    b.add_transition(s2, s1, 0.9).unwrap();
    b.add_transition(s2, dead, 0.4).unwrap();
    b.add_transition(s0, dead, 0.05).unwrap();
    let ctmc = b.build().unwrap();
    let analytic = AbsorbingAnalysis::new(&ctmc)
        .unwrap()
        .mean_time_to_absorption(s0)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(2718);
    let est = simulate::estimate_mtta(&ctmc, s0, 20_000, &mut rng).unwrap();
    assert!(
        est.contains(analytic, 4.0),
        "simulated {est} vs analytic {analytic}"
    );
}
