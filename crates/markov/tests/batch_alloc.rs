//! Pins the `BatchSolver` allocation contract: after construction,
//! `solve_mtta` performs zero heap allocations, on both fill-free and
//! fill-producing topologies. A counting global allocator wraps the
//! system one; the steady-state assertion is exact, not a threshold.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nsr_markov::{BatchSolver, Ctmc, CtmcBuilder, StateId};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A deep birth–death chain (fill-free elimination).
fn birth_death(depth: usize) -> (Ctmc, StateId) {
    let mut b = CtmcBuilder::new();
    let states: Vec<StateId> = (0..=depth).map(|i| b.add_state(format!("{i}"))).collect();
    let dead = b.add_state("dead");
    for i in 0..depth {
        b.add_transition(states[i], states[i + 1], 1.0).unwrap();
        b.add_transition(states[i + 1], states[i], 1.0).unwrap();
    }
    b.add_transition(states[depth], dead, 1.0).unwrap();
    (b.build().unwrap(), states[0])
}

/// A cycle with a chord (elimination creates fill).
fn cyclic() -> (Ctmc, StateId) {
    let mut b = CtmcBuilder::new();
    let s: Vec<StateId> = (0..6).map(|i| b.add_state(format!("{i}"))).collect();
    let dead = b.add_state("dead");
    for i in 0..6 {
        b.add_transition(s[i], s[(i + 1) % 6], 1.0).unwrap();
    }
    b.add_transition(s[0], s[3], 1.0).unwrap();
    b.add_transition(s[4], dead, 1.0).unwrap();
    (b.build().unwrap(), s[0])
}

fn assert_alloc_free(skel: &Ctmc, root: StateId, what: &str) {
    let mut solver = BatchSolver::new(skel, root).unwrap();
    let n = solver.transitions();
    let rates: Vec<f64> = (0..n).map(|k| 0.5 + 0.25 * k as f64).collect();
    // Warm-up solve (first call may touch lazily-initialized runtime
    // state outside the solver, e.g. stdout locks in the test harness).
    let first = solver.solve_mtta(&rates).unwrap();

    let before = allocations();
    let mut all_same = true;
    for _ in 0..100 {
        all_same &= solver.solve_mtta(&rates).unwrap().to_bits() == first.to_bits();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{what}: steady-state solve_mtta allocated"
    );
    assert!(all_same, "{what}: solves must be bit-reproducible");
}

#[test]
fn steady_state_solves_do_not_allocate() {
    let (skel, root) = birth_death(12);
    assert_alloc_free(&skel, root, "birth-death");
    let (skel, root) = cyclic();
    assert_alloc_free(&skel, root, "cyclic-with-fill");
}
