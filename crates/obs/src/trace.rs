//! Causal span/event tracing with per-thread sharded sinks drained to
//! `nsr-obs/v2` JSON-lines.
//!
//! Like metrics, tracing is disabled by default and the disabled path is
//! near-free: one relaxed atomic load and a branch. Field construction is
//! deferred behind closures so a disabled [`event`] allocates nothing, and
//! a disabled [`Span`] is a plain struct with an empty (unallocated)
//! `Vec`.
//!
//! # Causality (`nsr-obs/v2`)
//!
//! Every recorded span carries a process-unique `span_id`; a thread-local
//! span stack supplies the `parent_id` for spans and events recorded
//! while another span is open on the same thread, so records form a
//! forest whose edges are *causal* (this solve ran inside that sweep
//! cell, this post-mortem event belongs to that loss). Records also carry
//! `thread` (the recording thread's lane, see [`set_trace_lane`]) and
//! `seq` (a process-wide monotone sequence number).
//!
//! # Sharded sinks and deterministic drain
//!
//! Each recording thread appends to its **own** shard, so recording never
//! contends with other recording threads — the only lock an append takes
//! is the appending thread's own shard mutex, which is uncontended except
//! at the moment a [`drain`] walks the shards. [`drain`] merges all
//! shards into a single sequence ordered by `(at_s, thread, seq)`; with
//! deterministic lanes ([`set_trace_lane`]) and after
//! [`canonical_jsonl`]'s timestamp normalization, serial and parallel
//! runs of the same deterministic workload produce byte-identical output.
//!
//! The sink is bounded: at most [`SINK_CAP`] records (configurable via
//! [`set_trace_capacity`]) buffer across *all* shards; each record beyond
//! the capacity increments the dropped count by exactly one, and the
//! drained `meta` line reports it.

use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Default maximum number of buffered trace records before new ones are
/// dropped (and counted in the drained `meta` record). See
/// [`set_trace_capacity`].
pub const SINK_CAP: usize = 1 << 16;

/// Lanes assigned automatically to threads that never called
/// [`set_trace_lane`] start here, far above any explicit worker lane, so
/// pinned lanes sort first in the drained output.
const AUTO_LANE_BASE: u64 = 1 << 32;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Shared record budget across all shards.
static CAPACITY: AtomicUsize = AtomicUsize::new(SINK_CAP);
static BUFFERED: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Process-unique span ids; 0 is never issued so it can mean "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Process-wide monotone record sequence (total-order tiebreak).
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_AUTO_LANE: AtomicU64 = AtomicU64::new(AUTO_LANE_BASE);
/// All shards ever created by live threads (pruned at drain once their
/// thread has exited and their records are taken).
static REGISTRY: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());
/// Process identity ([`set_trace_process`]): the label stamped on
/// drained `meta` lines plus its FNV-1a id, carried by outbound
/// [`SpanContext`]s so merged cluster traces can namespace span ids.
static PROCESS: Mutex<Option<(String, u64)>> = Mutex::new(None);

/// Cap on rendered lines retained for cursor-based scrape deltas
/// ([`trace_delta`]); older lines are discarded from the front, which
/// advances the cursor base.
const RETAIN_CAP: usize = 1 << 14;

/// Rendered records retained between scrapes. `base` is the cursor of
/// `lines[0]`; the cursor one past the end is `base + lines.len()`.
/// `dropped` accumulates sink drops observed by scrape flushes so the
/// final dump's `meta` line still accounts for them.
struct Retained {
    base: u64,
    lines: Vec<String>,
    dropped: u64,
}

static RETAINED: Mutex<Retained> = Mutex::new(Retained {
    base: 0,
    lines: Vec::new(),
    dropped: 0,
});

/// One thread's sink shard. The mutex is only ever contended by a
/// concurrent [`drain`]; recording threads each lock their own shard.
struct Shard {
    /// The lane stamped on *new* records from this thread.
    lane: AtomicU64,
    records: Mutex<Vec<Rec>>,
}

/// A buffered record with its merge key.
struct Rec {
    at_s: f64,
    lane: u64,
    seq: u64,
    line: Json,
}

/// Per-thread recorder state: the thread's shard plus its open-span
/// stack (the source of `parent_id`).
struct LocalState {
    shard: Option<Arc<Shard>>,
    stack: Vec<u64>,
}

thread_local! {
    static LOCAL: RefCell<LocalState> = const {
        RefCell::new(LocalState {
            shard: None,
            stack: Vec::new(),
        })
    };
}

/// Enables or disables trace recording process-wide. The first enable
/// fixes the epoch that `at_s` timestamps are measured from.
pub fn set_trace_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether trace recording is currently enabled.
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// FNV-1a over `label` — the deterministic process id used by
/// [`set_trace_process`]: the same label always maps to the same id, so
/// merged cluster traces are reproducible without coordination.
pub fn process_id_for(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Ids round-trip through JSON numbers (f64): keep them ≤ 2^53 so
    // they stay exactly representable.
    h & ((1 << 53) - 1)
}

/// Names the calling process for cross-process tracing. The label (and
/// its deterministic FNV-1a id) is stamped on drained `meta` lines and
/// carried by [`current_context`] so a remote process can link its
/// handler spans back to this one. Call once, before work is traced;
/// distinct processes in one cluster must use distinct labels.
pub fn set_trace_process(label: &str) {
    *PROCESS.lock().unwrap_or_else(|p| p.into_inner()) =
        Some((label.to_string(), process_id_for(label)));
}

/// The process label and id set by [`set_trace_process`], if any.
pub fn trace_process() -> Option<(String, u64)> {
    PROCESS.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// A span's cross-process identity: the originating process
/// ([`set_trace_process`]) plus its process-local span id. Sent over
/// the wire so a remote handler span can adopt this span as its causal
/// parent — see [`Span::enter_remote`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Deterministic id of the originating process.
    pub proc_id: u64,
    /// The originating span's process-local id.
    pub span_id: u64,
}

/// The innermost open span on this thread as a [`SpanContext`], ready to
/// propagate to a remote process. `None` when tracing is disabled, no
/// span is open, or [`set_trace_process`] was never called (an unnamed
/// process has no cross-process identity).
pub fn current_context() -> Option<SpanContext> {
    if !trace_enabled() {
        return None;
    }
    let (_, proc_id) = trace_process()?;
    let span_id = LOCAL
        .try_with(|l| l.borrow().stack.last().copied())
        .ok()
        .flatten()?;
    Some(SpanContext { proc_id, span_id })
}

/// Sets the shared record capacity of the sink (all shards together).
/// Takes effect for subsequent records; already-buffered records are
/// never discarded. The process default is [`SINK_CAP`].
pub fn set_trace_capacity(cap: usize) {
    CAPACITY.store(cap, Ordering::Relaxed);
}

/// Pins the calling thread's lane — the `thread` value stamped on its
/// records and the second component of the drain's `(at_s, thread, seq)`
/// merge order. Parallel drivers (sweep and simulation workers) pin lane
/// `worker_index + 1` so the merged drain is independent of OS thread
/// identity; threads that never call this get an arbitrary high lane.
/// No-op while tracing is disabled.
pub fn set_trace_lane(lane: u64) {
    if !trace_enabled() {
        return;
    }
    let _ = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        shard_of(&mut l).lane.store(lane, Ordering::Relaxed);
    });
}

/// Seconds since the trace epoch. The epoch is fixed on first use —
/// either the first `set_trace_enabled(true)` or the first timestamp
/// request — so `at_s` can never read `0.0` from an unset epoch and
/// successive timestamps are non-decreasing.
fn now_s() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// The calling thread's shard, created and registered on first use.
fn shard_of(l: &mut LocalState) -> &Arc<Shard> {
    l.shard.get_or_insert_with(|| {
        let shard = Arc::new(Shard {
            lane: AtomicU64::new(NEXT_AUTO_LANE.fetch_add(1, Ordering::Relaxed)),
            records: Mutex::new(Vec::new()),
        });
        REGISTRY
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&shard));
        shard
    })
}

/// Reserves one slot of the shared record budget; on failure the record
/// is counted as dropped (exactly once).
fn reserve_slot() -> bool {
    let cap = CAPACITY.load(Ordering::Relaxed);
    let mut cur = BUFFERED.load(Ordering::Relaxed);
    loop {
        if cur >= cap {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        match BUFFERED.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
}

/// Appends one record to the calling thread's shard. `make` receives the
/// record's `(lane, seq, parent_id)` — the parent is the innermost open
/// span on this thread, if any.
fn push_record(at_s: f64, make: impl FnOnce(u64, u64, Option<u64>) -> Json) {
    if !reserve_slot() {
        return;
    }
    let appended = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        let parent = l.stack.last().copied();
        let shard = shard_of(&mut l);
        let lane = shard.lane.load(Ordering::Relaxed);
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let line = make(lane, seq, parent);
        shard
            .records
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Rec {
                at_s,
                lane,
                seq,
                line,
            });
    });
    if appended.is_err() {
        // Thread-local storage already destroyed (record from a late
        // thread-exit destructor): give the slot back, count the drop.
        BUFFERED.fetch_sub(1, Ordering::Relaxed);
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

fn fields_obj(fields: Vec<(&'static str, Json)>) -> Json {
    Json::obj(fields)
}

/// Base pairs shared by every v2 span/event record. Sized for the base
/// six pairs plus `dur_s`/`span_id`/`parent_id`/remote identity/`fields`
/// so the common cases never reallocate.
fn v2_base(
    kind: &'static str,
    name: &'static str,
    at_s: f64,
    lane: u64,
    seq: u64,
) -> Vec<(&'static str, Json)> {
    let mut pairs = Vec::with_capacity(12);
    pairs.push(("schema", Json::Str(crate::SCHEMA_V2.into())));
    pairs.push(("kind", Json::Str(kind.into())));
    pairs.push(("name", Json::Str(name.into())));
    pairs.push(("at_s", Json::Num(at_s)));
    pairs.push(("thread", Json::Num(lane as f64)));
    pairs.push(("seq", Json::Num(seq as f64)));
    pairs
}

/// An event's field list, as accepted by [`event`]. Arrays of up to
/// four fields convert without touching the heap (the enabled-path fast
/// path: most events carry 1–3 fields); a `Vec` converts by moving, for
/// call sites whose field count is dynamic.
pub struct Fields {
    inline: [(&'static str, Json); 4],
    len: usize,
    spill: Option<Vec<(&'static str, Json)>>,
}

impl Fields {
    fn into_obj(self) -> Json {
        match self.spill {
            Some(v) => Json::obj(v),
            None => Json::obj(self.inline.into_iter().take(self.len)),
        }
    }
}

const NO_FIELD: (&str, Json) = ("", Json::Null);

impl From<[(&'static str, Json); 0]> for Fields {
    fn from(_: [(&'static str, Json); 0]) -> Fields {
        Fields {
            inline: [NO_FIELD; 4],
            len: 0,
            spill: None,
        }
    }
}

impl From<[(&'static str, Json); 1]> for Fields {
    fn from(a: [(&'static str, Json); 1]) -> Fields {
        let [f0] = a;
        Fields {
            inline: [f0, NO_FIELD, NO_FIELD, NO_FIELD],
            len: 1,
            spill: None,
        }
    }
}

impl From<[(&'static str, Json); 2]> for Fields {
    fn from(a: [(&'static str, Json); 2]) -> Fields {
        let [f0, f1] = a;
        Fields {
            inline: [f0, f1, NO_FIELD, NO_FIELD],
            len: 2,
            spill: None,
        }
    }
}

impl From<[(&'static str, Json); 3]> for Fields {
    fn from(a: [(&'static str, Json); 3]) -> Fields {
        let [f0, f1, f2] = a;
        Fields {
            inline: [f0, f1, f2, NO_FIELD],
            len: 3,
            spill: None,
        }
    }
}

impl From<[(&'static str, Json); 4]> for Fields {
    fn from(a: [(&'static str, Json); 4]) -> Fields {
        Fields {
            inline: a,
            len: 4,
            spill: None,
        }
    }
}

impl From<Vec<(&'static str, Json)>> for Fields {
    fn from(v: Vec<(&'static str, Json)>) -> Fields {
        Fields {
            inline: [NO_FIELD; 4],
            len: 0,
            spill: Some(v),
        }
    }
}

/// An empty field list, allocation-free — pass as `event(name,
/// no_fields)` (a bare `Vec::new` no longer infers now that [`event`]
/// is generic over its field container).
pub fn no_fields() -> Fields {
    Fields {
        inline: [NO_FIELD; 4],
        len: 0,
        spill: None,
    }
}

/// Records a point-in-time event. `fields` is only invoked (and only
/// allocates) when tracing is enabled, and may return either a `Vec` or
/// an inline array of up to four pairs — the array form skips the
/// per-event heap allocation on the enabled path. The event inherits
/// the innermost open [`Span`] on this thread as `parent_id`.
pub fn event<F: Into<Fields>>(name: &'static str, fields: impl FnOnce() -> F) {
    if !trace_enabled() {
        return;
    }
    let at_s = now_s();
    let fields = fields().into().into_obj();
    push_record(at_s, |lane, seq, parent| {
        let mut pairs = v2_base("event", name, at_s, lane, seq);
        if let Some(p) = parent {
            pairs.push(("parent_id", Json::Num(p as f64)));
        }
        pairs.push(("fields", fields));
        Json::obj(pairs)
    });
}

/// An in-progress span: records its name, ids, start offset and duration
/// when dropped. Construct with [`Span::enter`]; attach fields with
/// [`Span::field`]. When tracing is disabled the span is inert and
/// allocation-free.
///
/// A live span sits on its thread's span stack from `enter` to drop, so
/// spans and events started in between become its children. Spans are
/// expected to be entered and dropped on the same thread; a span dropped
/// elsewhere still records, but cannot close its stack entry.
pub struct Span {
    name: &'static str,
    start: Option<(f64, Instant)>,
    id: u64,
    parent: Option<u64>,
    remote: Option<SpanContext>,
    fields: Vec<(&'static str, Json)>,
}

impl Span {
    /// Starts a span. Inert (no clock read, no allocation) when tracing
    /// is disabled.
    pub fn enter(name: &'static str) -> Span {
        if !trace_enabled() {
            return Span {
                name,
                start: None,
                id: 0,
                parent: None,
                remote: None,
                fields: Vec::new(),
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = LOCAL
            .try_with(|l| {
                let mut l = l.borrow_mut();
                let parent = l.stack.last().copied();
                l.stack.push(id);
                parent
            })
            .unwrap_or(None);
        Span {
            name,
            start: Some((now_s(), Instant::now())),
            id,
            parent,
            remote: None,
            fields: Vec::new(),
        }
    }

    /// Starts a span whose causal parent lives in another process: the
    /// recorded span carries `remote_proc_id`/`remote_parent_id` (never
    /// `parent_id`, which stays process-local so single-file link
    /// validation sees no orphans). Cross-process merges
    /// ([`canonical_cluster_jsonl`]) resolve the remote link into one
    /// causal tree. Locally the span still behaves like [`Span::enter`]:
    /// it goes on this thread's stack, so nested work parents under it.
    pub fn enter_remote(name: &'static str, ctx: SpanContext) -> Span {
        let mut span = Span::enter(name);
        if span.start.is_some() {
            span.remote = Some(ctx);
        }
        span
    }

    /// Attaches a field to the span; `value` is only invoked when the
    /// span is live (tracing was enabled at `enter`).
    pub fn field(&mut self, key: &'static str, value: impl FnOnce() -> Json) {
        if self.start.is_some() {
            self.fields.push((key, value()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((at_s, t0)) = self.start.take() else {
            return;
        };
        let id = self.id;
        // Close the stack entry. Searching from the top keeps this
        // robust to out-of-order drops of sibling spans.
        let _ = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            if let Some(i) = l.stack.iter().rposition(|&s| s == id) {
                l.stack.remove(i);
            }
        });
        let dur_s = t0.elapsed().as_secs_f64();
        let name = self.name;
        let parent = self.parent;
        let remote = self.remote;
        let fields = fields_obj(std::mem::take(&mut self.fields));
        push_record(at_s, |lane, seq, _| {
            let mut pairs = v2_base("span", name, at_s, lane, seq);
            pairs.push(("dur_s", Json::Num(dur_s)));
            pairs.push(("span_id", Json::Num(id as f64)));
            if let Some(p) = parent {
                pairs.push(("parent_id", Json::Num(p as f64)));
            }
            if let Some(ctx) = remote {
                pairs.push(("remote_proc_id", Json::Num(ctx.proc_id as f64)));
                pairs.push(("remote_parent_id", Json::Num(ctx.span_id as f64)));
            }
            pairs.push(("fields", fields));
            Json::obj(pairs)
        });
    }
}

/// Drains the sink: merges all shards into one sequence ordered by
/// `(at_s, thread, seq)` and returns it (plus the number of records
/// dropped since the last drain), resetting both. Shards of exited
/// threads are reclaimed. Intended to be called at a quiescent point
/// (concurrent recording during the drain lands in the next one).
pub fn drain() -> (Vec<Json>, u64) {
    let mut recs: Vec<Rec> = Vec::new();
    {
        let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        reg.retain(|shard| {
            recs.append(&mut shard.records.lock().unwrap_or_else(|p| p.into_inner()));
            // Only the registry holds shards of exited threads.
            Arc::strong_count(shard) > 1
        });
    }
    BUFFERED.store(0, Ordering::Relaxed);
    let dropped = DROPPED.swap(0, Ordering::Relaxed);
    recs.sort_by(|a, b| {
        a.at_s
            .total_cmp(&b.at_s)
            .then(a.lane.cmp(&b.lane))
            .then(a.seq.cmp(&b.seq))
    });
    (recs.into_iter().map(|r| r.line).collect(), dropped)
}

/// Drains freshly recorded lines into the retained scrape buffer,
/// trimming the front past [`RETAIN_CAP`] and accumulating the sink's
/// dropped count for the eventual dump.
fn flush_to_retained() {
    let (records, dropped) = drain();
    let mut r = RETAINED.lock().unwrap_or_else(|p| p.into_inner());
    for rec in records {
        r.lines.push(rec.render_compact());
    }
    let over = r.lines.len().saturating_sub(RETAIN_CAP);
    if over > 0 {
        r.lines.drain(..over);
        r.base += over as u64;
    }
    r.dropped += dropped;
}

/// Cursor-based trace delta for the scrape path: returns up to
/// `max_lines` rendered records starting at `cursor`, plus the cursor to
/// resume from — repeated scrapes never replay a line. A cursor behind
/// the retained window (the buffer trimmed past it) silently skips to
/// the oldest retained line; a cursor past the end returns nothing.
/// Lines handed out stay retained until [`RETAIN_CAP`] pushes them out,
/// so a second consumer at an older cursor still sees them.
pub fn trace_delta(cursor: u64, max_lines: usize) -> (u64, Vec<String>) {
    flush_to_retained();
    let r = RETAINED.lock().unwrap_or_else(|p| p.into_inner());
    let end = r.base + r.lines.len() as u64;
    let start = cursor.clamp(r.base, end);
    let take = ((end - start) as usize).min(max_lines);
    let from = (start - r.base) as usize;
    (start + take as u64, r.lines[from..from + take].to_vec())
}

/// Drains the sink and renders it as JSON-lines: a `meta` record
/// (carrying the dropped count, and the process label/id when
/// [`set_trace_process`] named this process) followed by the merged
/// records. Lines still sitting in the scrape-delta buffer are included
/// first (they were recorded earlier) and consumed, so a process that
/// was scraped and then dumped emits each record exactly once here.
pub fn trace_jsonl(source: &str) -> String {
    flush_to_retained();
    let (lines, dropped) = {
        let mut r = RETAINED.lock().unwrap_or_else(|p| p.into_inner());
        r.base += r.lines.len() as u64;
        (std::mem::take(&mut r.lines), std::mem::take(&mut r.dropped))
    };
    let mut out = String::new();
    let mut meta_pairs = vec![
        ("schema", Json::Str(crate::SCHEMA.into())),
        ("kind", Json::Str("meta".into())),
        ("source", Json::Str(source.into())),
        ("dropped", Json::Num(dropped as f64)),
    ];
    if let Some((label, id)) = trace_process() {
        meta_pairs.push(("proc", Json::Str(label)));
        meta_pairs.push(("proc_id", Json::Num(id as f64)));
    }
    out.push_str(&Json::obj(meta_pairs).render_compact());
    out.push('\n');
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Writes [`trace_jsonl`] to `path`; returns the number of records
/// written (including the leading `meta` record).
pub fn write_trace(path: &Path, source: &str) -> std::io::Result<usize> {
    let text = trace_jsonl(source);
    let records = text.lines().count();
    std::fs::write(path, text)?;
    Ok(records)
}

/// Rewrites drained trace JSON-lines into a **canonical** form that is
/// byte-identical across scheduling orders whenever the *multiset* of
/// recorded work is the same:
///
/// * `at_s` and `dur_s` are zeroed (wall-clock normalization);
/// * `thread` and `seq` are dropped;
/// * `span_id` / `parent_id` are replaced by the span's causal name path
///   (`"root/child/…"`, from following `parent_id` links);
/// * the lines are sorted lexicographically.
///
/// This is what the parallel-determinism tests compare: a deterministic
/// workload traced at 1, 3 and 8 workers canonicalizes to identical
/// bytes.
///
/// # Errors
///
/// Returns a description if a line fails to parse, a `parent_id` does
/// not resolve to an emitted `span_id`, or the parent links form a cycle.
pub fn canonical_jsonl(text: &str) -> Result<String, String> {
    let mut docs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        docs.push(doc);
    }
    // Map span_id -> (name, parent_id) so ids can become name paths.
    let mut spans: std::collections::HashMap<u64, (String, Option<u64>)> =
        std::collections::HashMap::new();
    for doc in &docs {
        if doc.get("kind").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let Some(id) = doc.get("span_id").and_then(Json::as_f64) else {
            continue; // v1 span: nothing to resolve
        };
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let parent = doc
            .get("parent_id")
            .and_then(Json::as_f64)
            .map(|p| p as u64);
        spans.insert(id as u64, (name, parent));
    }
    let path_of = |mut id: u64| -> Result<String, String> {
        let mut parts = Vec::new();
        loop {
            let (name, parent) = spans
                .get(&id)
                .ok_or_else(|| format!("parent_id {id} does not resolve to a span_id"))?;
            parts.push(name.clone());
            if parts.len() > spans.len() {
                return Err(format!("span parent cycle through id {id}"));
            }
            match parent {
                Some(p) => id = *p,
                None => break,
            }
        }
        parts.reverse();
        Ok(parts.join("/"))
    };
    let mut lines = Vec::with_capacity(docs.len());
    for doc in docs {
        let Json::Obj(mut map) = doc else {
            return Err("record is not an object".into());
        };
        if map.contains_key("at_s") {
            map.insert("at_s".into(), Json::Num(0.0));
        }
        if map.contains_key("dur_s") {
            map.insert("dur_s".into(), Json::Num(0.0));
        }
        map.remove("thread");
        map.remove("seq");
        if let Some(id) = map.get("span_id").and_then(Json::as_f64) {
            map.insert("span_id".into(), Json::Str(path_of(id as u64)?));
        }
        if let Some(p) = map.get("parent_id").and_then(Json::as_f64) {
            map.insert("parent_id".into(), Json::Str(path_of(p as u64)?));
        }
        lines.push(Json::Obj(map).render_compact());
    }
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    Ok(out)
}

/// Merges per-process trace JSONL parts into one **canonical
/// cross-process** causal tree, byte-identical across scheduling orders
/// and process interleavings whenever the multiset of recorded work is
/// the same.
///
/// Each part must lead with a `meta` line carrying `proc` and `proc_id`
/// (written by [`trace_jsonl`] after [`set_trace_process`]). Span
/// identity is namespaced per process — ids are `(proc_id, span_id)` —
/// and a span's causal path follows local `parent_id` links first, then
/// jumps across the process boundary through
/// `remote_proc_id`/`remote_parent_id` and continues in the originating
/// process. Canonical records gain a `"proc"` label, lose
/// `thread`/`seq`/timestamps and the raw ids (replaced by name paths
/// prefixed with the owning process of each segment), and the merged
/// lines are sorted lexicographically. `meta` lines are omitted (their
/// dropped counts are timing-dependent).
///
/// # Errors
///
/// Returns a description if a part lacks its `proc`/`proc_id` meta, a
/// line fails to parse, a local or remote parent does not resolve, or
/// parent links form a cycle.
pub fn canonical_cluster_jsonl(parts: &[&str]) -> Result<String, String> {
    // Key spans globally by (proc_id, span_id).
    type Key = (u64, u64);
    struct SpanInfo {
        name: String,
        parent: Option<u64>,
        remote: Option<Key>,
    }
    let mut spans: std::collections::HashMap<Key, SpanInfo> = std::collections::HashMap::new();
    let mut parsed: Vec<(String, u64, Vec<Json>)> = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        let mut label: Option<(String, u64)> = None;
        let mut docs = Vec::new();
        for (i, line) in part.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc =
                Json::parse(line).map_err(|e| format!("part {}, line {}: {e}", pi + 1, i + 1))?;
            if doc.get("kind").and_then(Json::as_str) == Some("meta") {
                let proc = doc.get("proc").and_then(Json::as_str).map(str::to_string);
                let id = doc.get("proc_id").and_then(Json::as_f64).map(|v| v as u64);
                if let (Some(p), Some(id)) = (proc, id) {
                    label = Some((p, id));
                }
                continue;
            }
            docs.push(doc);
        }
        let (proc, proc_id) = label.ok_or_else(|| {
            format!(
                "part {} has no meta line with `proc`/`proc_id` (was the \
                 process named with set_trace_process?)",
                pi + 1
            )
        })?;
        for doc in &docs {
            if doc.get("kind").and_then(Json::as_str) != Some("span") {
                continue;
            }
            let Some(id) = doc.get("span_id").and_then(Json::as_f64) else {
                continue;
            };
            let remote = match (
                doc.get("remote_proc_id").and_then(Json::as_f64),
                doc.get("remote_parent_id").and_then(Json::as_f64),
            ) {
                (Some(p), Some(s)) => Some((p as u64, s as u64)),
                _ => None,
            };
            spans.insert(
                (proc_id, id as u64),
                SpanInfo {
                    name: doc
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    parent: doc
                        .get("parent_id")
                        .and_then(Json::as_f64)
                        .map(|p| p as u64),
                    remote,
                },
            );
        }
        parsed.push((proc, proc_id, docs));
    }
    let proc_names: std::collections::HashMap<u64, String> = parsed
        .iter()
        .map(|(name, id, _)| (*id, name.clone()))
        .collect();
    // A span's canonical path: walk local parents to this process's
    // root, jump through any remote context, repeat. Segments are
    // prefixed with their process label so paths are unambiguous.
    let path_of = |key: Key| -> Result<String, String> {
        let mut parts_rev: Vec<String> = Vec::new();
        let mut cur = key;
        loop {
            let info = spans.get(&cur).ok_or_else(|| {
                format!("span ({}, {}) referenced but never emitted", cur.0, cur.1)
            })?;
            let proc = proc_names.get(&cur.0).map(String::as_str).unwrap_or("?");
            parts_rev.push(format!("{proc}:{}", info.name));
            if parts_rev.len() > spans.len() {
                return Err(format!("span parent cycle through ({}, {})", cur.0, cur.1));
            }
            match (info.parent, info.remote) {
                (Some(p), _) => cur = (cur.0, p),
                (None, Some(r)) => cur = r,
                (None, None) => break,
            }
        }
        parts_rev.reverse();
        Ok(parts_rev.join("/"))
    };
    let mut lines = Vec::new();
    for (proc, proc_id, docs) in parsed {
        for doc in docs {
            let Json::Obj(mut map) = doc else {
                return Err("record is not an object".into());
            };
            if map.contains_key("at_s") {
                map.insert("at_s".into(), Json::Num(0.0));
            }
            if map.contains_key("dur_s") {
                map.insert("dur_s".into(), Json::Num(0.0));
            }
            map.remove("thread");
            map.remove("seq");
            map.remove("remote_proc_id");
            map.remove("remote_parent_id");
            map.insert("proc".into(), Json::Str(proc.clone()));
            if let Some(id) = map.get("span_id").and_then(Json::as_f64) {
                map.insert("span_id".into(), Json::Str(path_of((proc_id, id as u64))?));
            }
            if let Some(p) = map.get("parent_id").and_then(Json::as_f64) {
                map.insert("parent_id".into(), Json::Str(path_of((proc_id, p as u64))?));
            }
            lines.push(Json::Obj(map).render_compact());
        }
    }
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_guard;

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = test_guard();
        set_trace_enabled(false);
        drain();
        event("test.noop", || vec![("x", Json::Num(1.0))]);
        {
            let mut s = Span::enter("test.noop.span");
            s.field("y", || Json::Num(2.0));
        }
        let (records, dropped) = drain();
        assert!(records.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn events_and_spans_are_recorded_and_validate() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        event("test.event", || vec![("worker", Json::Num(3.0))]);
        {
            let mut s = Span::enter("test.span");
            s.field("items", || Json::Num(7.0));
        }
        set_trace_enabled(false);
        let text = trace_jsonl("unit-test");
        let n = crate::validate_jsonl(&text).unwrap();
        assert_eq!(n, 3, "meta + event + span: {text}");
        let span_line = text.lines().find(|l| l.contains("test.span")).unwrap();
        let doc = Json::parse(span_line).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(crate::SCHEMA_V2)
        );
        assert!(doc.get("dur_s").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(doc.get("span_id").and_then(Json::as_f64).unwrap() >= 1.0);
        assert_eq!(
            doc.get("fields")
                .and_then(|f| f.get("items"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn nested_spans_and_events_link_to_their_parents() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        {
            let _outer = Span::enter("test.outer");
            event("test.inner.event", no_fields);
            let _inner = Span::enter("test.inner");
        }
        set_trace_enabled(false);
        let (records, _) = drain();
        assert_eq!(records.len(), 3);
        let find = |name: &str| {
            records
                .iter()
                .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
                .unwrap()
        };
        let outer_id = find("test.outer").get("span_id").and_then(Json::as_f64);
        assert!(outer_id.is_some());
        assert!(find("test.outer").get("parent_id").is_none());
        for child in ["test.inner", "test.inner.event"] {
            assert_eq!(
                find(child).get("parent_id").and_then(Json::as_f64),
                outer_id,
                "{child} should nest under test.outer"
            );
        }
    }

    #[test]
    fn event_timestamps_are_nondecreasing() {
        // Regression: `now_s` used to return a constant 0.0 whenever the
        // epoch had not been initialized; it now self-initializes.
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        event("test.tick", no_fields);
        std::thread::sleep(std::time::Duration::from_millis(2));
        event("test.tick", no_fields);
        event("test.tick", no_fields);
        set_trace_enabled(false);
        let (records, _) = drain();
        let stamps: Vec<f64> = records
            .iter()
            .map(|r| r.get("at_s").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(stamps.len(), 3);
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
        // The sleep separates the epoch from the later stamps, so a
        // constant-zero clock cannot pass this.
        assert!(stamps[2] > 0.0, "{stamps:?}");
    }

    #[test]
    fn sink_capacity_bounds_records_with_exact_drop_accounting() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        set_trace_capacity(4);
        for _ in 0..9 {
            event("test.cap", no_fields);
        }
        set_trace_enabled(false);
        let text = trace_jsonl("cap-test");
        set_trace_capacity(SINK_CAP);
        let meta = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(meta.get("dropped").and_then(Json::as_f64), Some(5.0));
        assert_eq!(text.lines().count(), 5, "meta + 4 kept records: {text}");
        // The drain reset the budget: recording works again.
        set_trace_enabled(true);
        event("test.cap", no_fields);
        set_trace_enabled(false);
        let (records, dropped) = drain();
        assert_eq!((records.len(), dropped), (1, 0));
    }

    #[test]
    fn parallel_threads_record_without_loss_and_merge_deterministically() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                scope.spawn(move || {
                    set_trace_lane(w + 1);
                    for i in 0..25 {
                        let mut s = Span::enter("test.par");
                        s.field("i", || Json::Num(f64::from(i)));
                    }
                });
            }
        });
        set_trace_enabled(false);
        let (records, dropped) = drain();
        assert_eq!(records.len(), 100);
        assert_eq!(dropped, 0);
        // Merged order is (at_s, thread, seq): check it is a total order
        // actually sorted.
        let keys: Vec<(f64, f64, f64)> = records
            .iter()
            .map(|r| {
                (
                    r.get("at_s").and_then(Json::as_f64).unwrap(),
                    r.get("thread").and_then(Json::as_f64).unwrap(),
                    r.get("seq").and_then(Json::as_f64).unwrap(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.total_cmp(&b.2))
        });
        assert_eq!(keys, sorted);
        let lanes: std::collections::BTreeSet<u64> = keys.iter().map(|k| k.1 as u64).collect();
        assert_eq!(lanes, (1..=4).collect());
    }

    #[test]
    fn canonical_jsonl_is_stable_across_lane_and_time_jitter() {
        let _g = test_guard();
        let run = |lane: u64| {
            set_trace_enabled(true);
            drain();
            set_trace_lane(lane);
            {
                let mut outer = Span::enter("test.canon.outer");
                outer.field("k", || Json::Num(7.0));
                event("test.canon.tick", no_fields);
            }
            set_trace_enabled(false);
            let text = trace_jsonl("canon");
            canonical_jsonl(&text).unwrap()
        };
        let a = run(1);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = run(9);
        assert_eq!(a, b);
        assert!(a.contains("\"span_id\":\"test.canon.outer\""), "{a}");
        assert!(
            a.contains("\"parent_id\":\"test.canon.outer\""),
            "event keeps its causal path: {a}"
        );
    }

    #[test]
    fn inline_array_events_record_their_fields() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        event("test.inline", || {
            [("a", Json::Num(1.0)), ("b", Json::Str("x".into()))]
        });
        event("test.inline.empty", || -> [(&'static str, Json); 0] { [] });
        set_trace_enabled(false);
        let (records, dropped) = drain();
        assert_eq!((records.len(), dropped), (2, 0));
        let f = records[0].get("fields").unwrap();
        assert_eq!(f.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(f.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            records[1].get("fields").map(|f| f.render_compact()),
            Some("{}".to_string())
        );
    }

    #[test]
    fn trace_delta_cursors_never_replay_and_resume() {
        let _g = test_guard();
        set_trace_enabled(true);
        let _ = trace_jsonl("reset"); // clear sink + retained buffer
                                      // A cursor past the end clamps to the live end — the origin for
                                      // the deltas below (`base` survives from earlier tests).
        let (c0, none) = trace_delta(u64::MAX, 100);
        assert!(none.is_empty());
        for i in 0..5 {
            event("test.delta", move || [("i", Json::Num(f64::from(i)))]);
        }
        let (c1, lines1) = trace_delta(c0, 3);
        assert_eq!((c1 - c0, lines1.len()), (3, 3));
        let (c2, lines2) = trace_delta(c1, 100);
        assert_eq!((c2 - c0, lines2.len()), (5, 2));
        // No new records: resuming from the cursor returns nothing.
        let (c3, lines3) = trace_delta(c2, 100);
        assert_eq!((c3, lines3.len()), (c2, 0));
        // More records extend the window from the same cursor.
        event("test.delta.more", no_fields);
        let (c4, lines4) = trace_delta(c3, 100);
        assert_eq!((c4 - c0, lines4.len()), (6, 1));
        assert!(lines4[0].contains("test.delta.more"));
        // An older cursor still replays retained lines (second consumer).
        let (_, again) = trace_delta(c0, 100);
        assert_eq!(again.len(), 6);
        set_trace_enabled(false);
        let _ = trace_jsonl("cleanup");
    }

    #[test]
    fn remote_spans_stitch_into_one_cluster_tree() {
        let _g = test_guard();
        set_trace_enabled(true);
        let _ = trace_jsonl("reset");
        // "Gateway" process: a put span whose context crosses the wire.
        set_trace_process("gw");
        let ctx = {
            let _put = Span::enter("net.put");
            current_context().expect("open span + named process")
        };
        assert_eq!(ctx.proc_id, process_id_for("gw"));
        set_trace_enabled(false);
        let gw_part = trace_jsonl("gw");
        // "Brick" process: the handler span adopts the remote parent.
        set_trace_enabled(true);
        set_trace_process("brick-0");
        {
            let _h = Span::enter_remote("net.brick.put", ctx);
            event("net.brick.commit", || []);
        }
        set_trace_enabled(false);
        let brick_part = trace_jsonl("brick-0");
        let merged = canonical_cluster_jsonl(&[&gw_part, &brick_part]).unwrap();
        assert!(
            merged.contains("\"span_id\":\"gw:net.put/brick-0:net.brick.put\""),
            "handler span paths through the gateway parent: {merged}"
        );
        assert!(
            merged.contains("\"parent_id\":\"gw:net.put/brick-0:net.brick.put\""),
            "brick-local event keeps the stitched path: {merged}"
        );
        assert!(!merged.contains("remote_proc_id"), "{merged}");
        // A part without process identity is rejected.
        let anon = "{\"schema\":\"nsr-obs/v1\",\"kind\":\"meta\",\"source\":\"x\"}\n";
        let err = canonical_cluster_jsonl(&[anon]).unwrap_err();
        assert!(err.contains("proc"), "{err}");
        // An unresolvable remote parent is rejected.
        let missing = canonical_cluster_jsonl(&[&brick_part]);
        assert!(missing.is_err(), "dangling remote parent must error");
    }

    #[test]
    fn canonical_jsonl_rejects_orphan_parents() {
        let line = format!(
            "{{\"schema\":\"{}\",\"kind\":\"event\",\"name\":\"x\",\"at_s\":0.1,\
             \"thread\":1,\"seq\":0,\"parent_id\":42,\"fields\":{{}}}}\n",
            crate::SCHEMA_V2
        );
        let err = canonical_jsonl(&line).unwrap_err();
        assert!(err.contains("42"), "{err}");
    }
}
