//! Lightweight span/event tracing with an in-memory sink drained to
//! `nsr-obs/v1` JSON-lines.
//!
//! Like metrics, tracing is disabled by default and the disabled path is
//! near-free: one relaxed atomic load and a branch. Field construction is
//! deferred behind closures so a disabled [`event`] allocates nothing, and
//! a disabled [`Span`] is a plain struct with an empty (unallocated)
//! `Vec`. Records accumulate in a bounded global sink ([`SINK_CAP`]);
//! once full, further records are counted as dropped rather than growing
//! memory without bound.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Maximum number of buffered trace records before new ones are dropped
/// (and counted in the drained `meta` record).
pub const SINK_CAP: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SINK: Mutex<Vec<Json>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Enables or disables trace recording process-wide. The first enable
/// fixes the epoch that `at_s` timestamps are measured from.
pub fn set_trace_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether trace recording is currently enabled.
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_s() -> f64 {
    EPOCH
        .get()
        .map(|e| e.elapsed().as_secs_f64())
        .unwrap_or(0.0)
}

fn sink() -> std::sync::MutexGuard<'static, Vec<Json>> {
    SINK.lock().unwrap_or_else(|p| p.into_inner())
}

fn push_record(rec: Json) {
    let mut s = sink();
    if s.len() >= SINK_CAP {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    s.push(rec);
}

fn fields_obj(fields: Vec<(&'static str, Json)>) -> Json {
    Json::obj(fields)
}

/// Records a point-in-time event. `fields` is only invoked (and only
/// allocates) when tracing is enabled.
pub fn event(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Json)>) {
    if !trace_enabled() {
        return;
    }
    push_record(Json::obj([
        ("schema", Json::Str(crate::SCHEMA.into())),
        ("kind", Json::Str("event".into())),
        ("name", Json::Str(name.into())),
        ("at_s", Json::Num(now_s())),
        ("fields", fields_obj(fields())),
    ]));
}

/// An in-progress span: records its name, start offset and duration when
/// dropped. Construct with [`Span::enter`]; attach fields with
/// [`Span::field`]. When tracing is disabled the span is inert and
/// allocation-free.
pub struct Span {
    name: &'static str,
    start: Option<(f64, Instant)>,
    fields: Vec<(&'static str, Json)>,
}

impl Span {
    /// Starts a span. Inert (no clock read, no allocation) when tracing
    /// is disabled.
    pub fn enter(name: &'static str) -> Span {
        let start = trace_enabled().then(|| (now_s(), Instant::now()));
        Span {
            name,
            start,
            fields: Vec::new(),
        }
    }

    /// Attaches a field to the span; `value` is only invoked when the
    /// span is live (tracing was enabled at `enter`).
    pub fn field(&mut self, key: &'static str, value: impl FnOnce() -> Json) {
        if self.start.is_some() {
            self.fields.push((key, value()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((at_s, t0)) = self.start.take() {
            let fields = std::mem::take(&mut self.fields);
            push_record(Json::obj([
                ("schema", Json::Str(crate::SCHEMA.into())),
                ("kind", Json::Str("span".into())),
                ("name", Json::Str(self.name.into())),
                ("at_s", Json::Num(at_s)),
                ("dur_s", Json::Num(t0.elapsed().as_secs_f64())),
                ("fields", fields_obj(fields)),
            ]));
        }
    }
}

/// Drains the sink: returns all buffered records (oldest first) and the
/// number of records dropped since the last drain, resetting both.
pub fn drain() -> (Vec<Json>, u64) {
    let records = std::mem::take(&mut *sink());
    let dropped = DROPPED.swap(0, Ordering::Relaxed);
    (records, dropped)
}

/// Drains the sink and renders it as `nsr-obs/v1` JSON-lines: a `meta`
/// record (carrying the dropped count) followed by the buffered records.
pub fn trace_jsonl(source: &str) -> String {
    let (records, dropped) = drain();
    let mut out = String::new();
    let meta = Json::obj([
        ("schema", Json::Str(crate::SCHEMA.into())),
        ("kind", Json::Str("meta".into())),
        ("source", Json::Str(source.into())),
        ("dropped", Json::Num(dropped as f64)),
    ]);
    out.push_str(&meta.render_compact());
    out.push('\n');
    for r in records {
        out.push_str(&r.render_compact());
        out.push('\n');
    }
    out
}

/// Writes [`trace_jsonl`] to `path`; returns the number of records
/// written (including the leading `meta` record).
pub fn write_trace(path: &Path, source: &str) -> std::io::Result<usize> {
    let text = trace_jsonl(source);
    let records = text.lines().count();
    std::fs::write(path, text)?;
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_guard;

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = test_guard();
        set_trace_enabled(false);
        drain();
        event("test.noop", || vec![("x", Json::Num(1.0))]);
        {
            let mut s = Span::enter("test.noop.span");
            s.field("y", || Json::Num(2.0));
        }
        let (records, dropped) = drain();
        assert!(records.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn events_and_spans_are_recorded_and_validate() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        event("test.event", || vec![("worker", Json::Num(3.0))]);
        {
            let mut s = Span::enter("test.span");
            s.field("items", || Json::Num(7.0));
        }
        set_trace_enabled(false);
        let text = trace_jsonl("unit-test");
        let n = crate::validate_jsonl(&text).unwrap();
        assert_eq!(n, 3, "meta + event + span: {text}");
        let span_line = text.lines().find(|l| l.contains("test.span")).unwrap();
        let doc = Json::parse(span_line).unwrap();
        assert!(doc.get("dur_s").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(
            doc.get("fields")
                .and_then(|f| f.get("items"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn sink_is_bounded() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        // Fill beyond capacity via the low-level path (cheap records).
        for _ in 0..SINK_CAP + 5 {
            push_record(Json::Null);
        }
        set_trace_enabled(false);
        let (records, dropped) = drain();
        assert_eq!(records.len(), SINK_CAP);
        assert_eq!(dropped, 5);
    }
}
