//! Causal span/event tracing with per-thread sharded sinks drained to
//! `nsr-obs/v2` JSON-lines.
//!
//! Like metrics, tracing is disabled by default and the disabled path is
//! near-free: one relaxed atomic load and a branch. Field construction is
//! deferred behind closures so a disabled [`event`] allocates nothing, and
//! a disabled [`Span`] is a plain struct with an empty (unallocated)
//! `Vec`.
//!
//! # Causality (`nsr-obs/v2`)
//!
//! Every recorded span carries a process-unique `span_id`; a thread-local
//! span stack supplies the `parent_id` for spans and events recorded
//! while another span is open on the same thread, so records form a
//! forest whose edges are *causal* (this solve ran inside that sweep
//! cell, this post-mortem event belongs to that loss). Records also carry
//! `thread` (the recording thread's lane, see [`set_trace_lane`]) and
//! `seq` (a process-wide monotone sequence number).
//!
//! # Sharded sinks and deterministic drain
//!
//! Each recording thread appends to its **own** shard, so recording never
//! contends with other recording threads — the only lock an append takes
//! is the appending thread's own shard mutex, which is uncontended except
//! at the moment a [`drain`] walks the shards. [`drain`] merges all
//! shards into a single sequence ordered by `(at_s, thread, seq)`; with
//! deterministic lanes ([`set_trace_lane`]) and after
//! [`canonical_jsonl`]'s timestamp normalization, serial and parallel
//! runs of the same deterministic workload produce byte-identical output.
//!
//! The sink is bounded: at most [`SINK_CAP`] records (configurable via
//! [`set_trace_capacity`]) buffer across *all* shards; each record beyond
//! the capacity increments the dropped count by exactly one, and the
//! drained `meta` line reports it.

use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Default maximum number of buffered trace records before new ones are
/// dropped (and counted in the drained `meta` record). See
/// [`set_trace_capacity`].
pub const SINK_CAP: usize = 1 << 16;

/// Lanes assigned automatically to threads that never called
/// [`set_trace_lane`] start here, far above any explicit worker lane, so
/// pinned lanes sort first in the drained output.
const AUTO_LANE_BASE: u64 = 1 << 32;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Shared record budget across all shards.
static CAPACITY: AtomicUsize = AtomicUsize::new(SINK_CAP);
static BUFFERED: AtomicUsize = AtomicUsize::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Process-unique span ids; 0 is never issued so it can mean "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Process-wide monotone record sequence (total-order tiebreak).
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_AUTO_LANE: AtomicU64 = AtomicU64::new(AUTO_LANE_BASE);
/// All shards ever created by live threads (pruned at drain once their
/// thread has exited and their records are taken).
static REGISTRY: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());

/// One thread's sink shard. The mutex is only ever contended by a
/// concurrent [`drain`]; recording threads each lock their own shard.
struct Shard {
    /// The lane stamped on *new* records from this thread.
    lane: AtomicU64,
    records: Mutex<Vec<Rec>>,
}

/// A buffered record with its merge key.
struct Rec {
    at_s: f64,
    lane: u64,
    seq: u64,
    line: Json,
}

/// Per-thread recorder state: the thread's shard plus its open-span
/// stack (the source of `parent_id`).
struct LocalState {
    shard: Option<Arc<Shard>>,
    stack: Vec<u64>,
}

thread_local! {
    static LOCAL: RefCell<LocalState> = const {
        RefCell::new(LocalState {
            shard: None,
            stack: Vec::new(),
        })
    };
}

/// Enables or disables trace recording process-wide. The first enable
/// fixes the epoch that `at_s` timestamps are measured from.
pub fn set_trace_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether trace recording is currently enabled.
pub fn trace_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the shared record capacity of the sink (all shards together).
/// Takes effect for subsequent records; already-buffered records are
/// never discarded. The process default is [`SINK_CAP`].
pub fn set_trace_capacity(cap: usize) {
    CAPACITY.store(cap, Ordering::Relaxed);
}

/// Pins the calling thread's lane — the `thread` value stamped on its
/// records and the second component of the drain's `(at_s, thread, seq)`
/// merge order. Parallel drivers (sweep and simulation workers) pin lane
/// `worker_index + 1` so the merged drain is independent of OS thread
/// identity; threads that never call this get an arbitrary high lane.
/// No-op while tracing is disabled.
pub fn set_trace_lane(lane: u64) {
    if !trace_enabled() {
        return;
    }
    let _ = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        shard_of(&mut l).lane.store(lane, Ordering::Relaxed);
    });
}

/// Seconds since the trace epoch. The epoch is fixed on first use —
/// either the first `set_trace_enabled(true)` or the first timestamp
/// request — so `at_s` can never read `0.0` from an unset epoch and
/// successive timestamps are non-decreasing.
fn now_s() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// The calling thread's shard, created and registered on first use.
fn shard_of(l: &mut LocalState) -> &Arc<Shard> {
    l.shard.get_or_insert_with(|| {
        let shard = Arc::new(Shard {
            lane: AtomicU64::new(NEXT_AUTO_LANE.fetch_add(1, Ordering::Relaxed)),
            records: Mutex::new(Vec::new()),
        });
        REGISTRY
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&shard));
        shard
    })
}

/// Reserves one slot of the shared record budget; on failure the record
/// is counted as dropped (exactly once).
fn reserve_slot() -> bool {
    let cap = CAPACITY.load(Ordering::Relaxed);
    let mut cur = BUFFERED.load(Ordering::Relaxed);
    loop {
        if cur >= cap {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        match BUFFERED.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
}

/// Appends one record to the calling thread's shard. `make` receives the
/// record's `(lane, seq, parent_id)` — the parent is the innermost open
/// span on this thread, if any.
fn push_record(at_s: f64, make: impl FnOnce(u64, u64, Option<u64>) -> Json) {
    if !reserve_slot() {
        return;
    }
    let appended = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        let parent = l.stack.last().copied();
        let shard = shard_of(&mut l);
        let lane = shard.lane.load(Ordering::Relaxed);
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let line = make(lane, seq, parent);
        shard
            .records
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Rec {
                at_s,
                lane,
                seq,
                line,
            });
    });
    if appended.is_err() {
        // Thread-local storage already destroyed (record from a late
        // thread-exit destructor): give the slot back, count the drop.
        BUFFERED.fetch_sub(1, Ordering::Relaxed);
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

fn fields_obj(fields: Vec<(&'static str, Json)>) -> Json {
    Json::obj(fields)
}

/// Base pairs shared by every v2 span/event record.
fn v2_base(
    kind: &'static str,
    name: &'static str,
    at_s: f64,
    lane: u64,
    seq: u64,
) -> Vec<(&'static str, Json)> {
    vec![
        ("schema", Json::Str(crate::SCHEMA_V2.into())),
        ("kind", Json::Str(kind.into())),
        ("name", Json::Str(name.into())),
        ("at_s", Json::Num(at_s)),
        ("thread", Json::Num(lane as f64)),
        ("seq", Json::Num(seq as f64)),
    ]
}

/// Records a point-in-time event. `fields` is only invoked (and only
/// allocates) when tracing is enabled. The event inherits the innermost
/// open [`Span`] on this thread as `parent_id`.
pub fn event(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Json)>) {
    if !trace_enabled() {
        return;
    }
    let at_s = now_s();
    let fields = fields_obj(fields());
    push_record(at_s, |lane, seq, parent| {
        let mut pairs = v2_base("event", name, at_s, lane, seq);
        if let Some(p) = parent {
            pairs.push(("parent_id", Json::Num(p as f64)));
        }
        pairs.push(("fields", fields));
        Json::obj(pairs)
    });
}

/// An in-progress span: records its name, ids, start offset and duration
/// when dropped. Construct with [`Span::enter`]; attach fields with
/// [`Span::field`]. When tracing is disabled the span is inert and
/// allocation-free.
///
/// A live span sits on its thread's span stack from `enter` to drop, so
/// spans and events started in between become its children. Spans are
/// expected to be entered and dropped on the same thread; a span dropped
/// elsewhere still records, but cannot close its stack entry.
pub struct Span {
    name: &'static str,
    start: Option<(f64, Instant)>,
    id: u64,
    parent: Option<u64>,
    fields: Vec<(&'static str, Json)>,
}

impl Span {
    /// Starts a span. Inert (no clock read, no allocation) when tracing
    /// is disabled.
    pub fn enter(name: &'static str) -> Span {
        if !trace_enabled() {
            return Span {
                name,
                start: None,
                id: 0,
                parent: None,
                fields: Vec::new(),
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = LOCAL
            .try_with(|l| {
                let mut l = l.borrow_mut();
                let parent = l.stack.last().copied();
                l.stack.push(id);
                parent
            })
            .unwrap_or(None);
        Span {
            name,
            start: Some((now_s(), Instant::now())),
            id,
            parent,
            fields: Vec::new(),
        }
    }

    /// Attaches a field to the span; `value` is only invoked when the
    /// span is live (tracing was enabled at `enter`).
    pub fn field(&mut self, key: &'static str, value: impl FnOnce() -> Json) {
        if self.start.is_some() {
            self.fields.push((key, value()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((at_s, t0)) = self.start.take() else {
            return;
        };
        let id = self.id;
        // Close the stack entry. Searching from the top keeps this
        // robust to out-of-order drops of sibling spans.
        let _ = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            if let Some(i) = l.stack.iter().rposition(|&s| s == id) {
                l.stack.remove(i);
            }
        });
        let dur_s = t0.elapsed().as_secs_f64();
        let name = self.name;
        let parent = self.parent;
        let fields = fields_obj(std::mem::take(&mut self.fields));
        push_record(at_s, |lane, seq, _| {
            let mut pairs = v2_base("span", name, at_s, lane, seq);
            pairs.push(("dur_s", Json::Num(dur_s)));
            pairs.push(("span_id", Json::Num(id as f64)));
            if let Some(p) = parent {
                pairs.push(("parent_id", Json::Num(p as f64)));
            }
            pairs.push(("fields", fields));
            Json::obj(pairs)
        });
    }
}

/// Drains the sink: merges all shards into one sequence ordered by
/// `(at_s, thread, seq)` and returns it (plus the number of records
/// dropped since the last drain), resetting both. Shards of exited
/// threads are reclaimed. Intended to be called at a quiescent point
/// (concurrent recording during the drain lands in the next one).
pub fn drain() -> (Vec<Json>, u64) {
    let mut recs: Vec<Rec> = Vec::new();
    {
        let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        reg.retain(|shard| {
            recs.append(&mut shard.records.lock().unwrap_or_else(|p| p.into_inner()));
            // Only the registry holds shards of exited threads.
            Arc::strong_count(shard) > 1
        });
    }
    BUFFERED.store(0, Ordering::Relaxed);
    let dropped = DROPPED.swap(0, Ordering::Relaxed);
    recs.sort_by(|a, b| {
        a.at_s
            .total_cmp(&b.at_s)
            .then(a.lane.cmp(&b.lane))
            .then(a.seq.cmp(&b.seq))
    });
    (recs.into_iter().map(|r| r.line).collect(), dropped)
}

/// Drains the sink and renders it as JSON-lines: a `meta` record
/// (carrying the dropped count) followed by the merged records.
pub fn trace_jsonl(source: &str) -> String {
    let (records, dropped) = drain();
    let mut out = String::new();
    let meta = Json::obj([
        ("schema", Json::Str(crate::SCHEMA.into())),
        ("kind", Json::Str("meta".into())),
        ("source", Json::Str(source.into())),
        ("dropped", Json::Num(dropped as f64)),
    ]);
    out.push_str(&meta.render_compact());
    out.push('\n');
    for r in records {
        out.push_str(&r.render_compact());
        out.push('\n');
    }
    out
}

/// Writes [`trace_jsonl`] to `path`; returns the number of records
/// written (including the leading `meta` record).
pub fn write_trace(path: &Path, source: &str) -> std::io::Result<usize> {
    let text = trace_jsonl(source);
    let records = text.lines().count();
    std::fs::write(path, text)?;
    Ok(records)
}

/// Rewrites drained trace JSON-lines into a **canonical** form that is
/// byte-identical across scheduling orders whenever the *multiset* of
/// recorded work is the same:
///
/// * `at_s` and `dur_s` are zeroed (wall-clock normalization);
/// * `thread` and `seq` are dropped;
/// * `span_id` / `parent_id` are replaced by the span's causal name path
///   (`"root/child/…"`, from following `parent_id` links);
/// * the lines are sorted lexicographically.
///
/// This is what the parallel-determinism tests compare: a deterministic
/// workload traced at 1, 3 and 8 workers canonicalizes to identical
/// bytes.
///
/// # Errors
///
/// Returns a description if a line fails to parse, a `parent_id` does
/// not resolve to an emitted `span_id`, or the parent links form a cycle.
pub fn canonical_jsonl(text: &str) -> Result<String, String> {
    let mut docs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        docs.push(doc);
    }
    // Map span_id -> (name, parent_id) so ids can become name paths.
    let mut spans: std::collections::HashMap<u64, (String, Option<u64>)> =
        std::collections::HashMap::new();
    for doc in &docs {
        if doc.get("kind").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let Some(id) = doc.get("span_id").and_then(Json::as_f64) else {
            continue; // v1 span: nothing to resolve
        };
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let parent = doc
            .get("parent_id")
            .and_then(Json::as_f64)
            .map(|p| p as u64);
        spans.insert(id as u64, (name, parent));
    }
    let path_of = |mut id: u64| -> Result<String, String> {
        let mut parts = Vec::new();
        loop {
            let (name, parent) = spans
                .get(&id)
                .ok_or_else(|| format!("parent_id {id} does not resolve to a span_id"))?;
            parts.push(name.clone());
            if parts.len() > spans.len() {
                return Err(format!("span parent cycle through id {id}"));
            }
            match parent {
                Some(p) => id = *p,
                None => break,
            }
        }
        parts.reverse();
        Ok(parts.join("/"))
    };
    let mut lines = Vec::with_capacity(docs.len());
    for doc in docs {
        let Json::Obj(mut map) = doc else {
            return Err("record is not an object".into());
        };
        if map.contains_key("at_s") {
            map.insert("at_s".into(), Json::Num(0.0));
        }
        if map.contains_key("dur_s") {
            map.insert("dur_s".into(), Json::Num(0.0));
        }
        map.remove("thread");
        map.remove("seq");
        if let Some(id) = map.get("span_id").and_then(Json::as_f64) {
            map.insert("span_id".into(), Json::Str(path_of(id as u64)?));
        }
        if let Some(p) = map.get("parent_id").and_then(Json::as_f64) {
            map.insert("parent_id".into(), Json::Str(path_of(p as u64)?));
        }
        lines.push(Json::Obj(map).render_compact());
    }
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_guard;

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = test_guard();
        set_trace_enabled(false);
        drain();
        event("test.noop", || vec![("x", Json::Num(1.0))]);
        {
            let mut s = Span::enter("test.noop.span");
            s.field("y", || Json::Num(2.0));
        }
        let (records, dropped) = drain();
        assert!(records.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn events_and_spans_are_recorded_and_validate() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        event("test.event", || vec![("worker", Json::Num(3.0))]);
        {
            let mut s = Span::enter("test.span");
            s.field("items", || Json::Num(7.0));
        }
        set_trace_enabled(false);
        let text = trace_jsonl("unit-test");
        let n = crate::validate_jsonl(&text).unwrap();
        assert_eq!(n, 3, "meta + event + span: {text}");
        let span_line = text.lines().find(|l| l.contains("test.span")).unwrap();
        let doc = Json::parse(span_line).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(crate::SCHEMA_V2)
        );
        assert!(doc.get("dur_s").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(doc.get("span_id").and_then(Json::as_f64).unwrap() >= 1.0);
        assert_eq!(
            doc.get("fields")
                .and_then(|f| f.get("items"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn nested_spans_and_events_link_to_their_parents() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        {
            let _outer = Span::enter("test.outer");
            event("test.inner.event", Vec::new);
            let _inner = Span::enter("test.inner");
        }
        set_trace_enabled(false);
        let (records, _) = drain();
        assert_eq!(records.len(), 3);
        let find = |name: &str| {
            records
                .iter()
                .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
                .unwrap()
        };
        let outer_id = find("test.outer").get("span_id").and_then(Json::as_f64);
        assert!(outer_id.is_some());
        assert!(find("test.outer").get("parent_id").is_none());
        for child in ["test.inner", "test.inner.event"] {
            assert_eq!(
                find(child).get("parent_id").and_then(Json::as_f64),
                outer_id,
                "{child} should nest under test.outer"
            );
        }
    }

    #[test]
    fn event_timestamps_are_nondecreasing() {
        // Regression: `now_s` used to return a constant 0.0 whenever the
        // epoch had not been initialized; it now self-initializes.
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        event("test.tick", Vec::new);
        std::thread::sleep(std::time::Duration::from_millis(2));
        event("test.tick", Vec::new);
        event("test.tick", Vec::new);
        set_trace_enabled(false);
        let (records, _) = drain();
        let stamps: Vec<f64> = records
            .iter()
            .map(|r| r.get("at_s").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(stamps.len(), 3);
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
        // The sleep separates the epoch from the later stamps, so a
        // constant-zero clock cannot pass this.
        assert!(stamps[2] > 0.0, "{stamps:?}");
    }

    #[test]
    fn sink_capacity_bounds_records_with_exact_drop_accounting() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        set_trace_capacity(4);
        for _ in 0..9 {
            event("test.cap", Vec::new);
        }
        set_trace_enabled(false);
        let text = trace_jsonl("cap-test");
        set_trace_capacity(SINK_CAP);
        let meta = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(meta.get("dropped").and_then(Json::as_f64), Some(5.0));
        assert_eq!(text.lines().count(), 5, "meta + 4 kept records: {text}");
        // The drain reset the budget: recording works again.
        set_trace_enabled(true);
        event("test.cap", Vec::new);
        set_trace_enabled(false);
        let (records, dropped) = drain();
        assert_eq!((records.len(), dropped), (1, 0));
    }

    #[test]
    fn parallel_threads_record_without_loss_and_merge_deterministically() {
        let _g = test_guard();
        set_trace_enabled(true);
        drain();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                scope.spawn(move || {
                    set_trace_lane(w + 1);
                    for i in 0..25 {
                        let mut s = Span::enter("test.par");
                        s.field("i", || Json::Num(f64::from(i)));
                    }
                });
            }
        });
        set_trace_enabled(false);
        let (records, dropped) = drain();
        assert_eq!(records.len(), 100);
        assert_eq!(dropped, 0);
        // Merged order is (at_s, thread, seq): check it is a total order
        // actually sorted.
        let keys: Vec<(f64, f64, f64)> = records
            .iter()
            .map(|r| {
                (
                    r.get("at_s").and_then(Json::as_f64).unwrap(),
                    r.get("thread").and_then(Json::as_f64).unwrap(),
                    r.get("seq").and_then(Json::as_f64).unwrap(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.total_cmp(&b.2))
        });
        assert_eq!(keys, sorted);
        let lanes: std::collections::BTreeSet<u64> = keys.iter().map(|k| k.1 as u64).collect();
        assert_eq!(lanes, (1..=4).collect());
    }

    #[test]
    fn canonical_jsonl_is_stable_across_lane_and_time_jitter() {
        let _g = test_guard();
        let run = |lane: u64| {
            set_trace_enabled(true);
            drain();
            set_trace_lane(lane);
            {
                let mut outer = Span::enter("test.canon.outer");
                outer.field("k", || Json::Num(7.0));
                event("test.canon.tick", Vec::new);
            }
            set_trace_enabled(false);
            let text = trace_jsonl("canon");
            canonical_jsonl(&text).unwrap()
        };
        let a = run(1);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = run(9);
        assert_eq!(a, b);
        assert!(a.contains("\"span_id\":\"test.canon.outer\""), "{a}");
        assert!(
            a.contains("\"parent_id\":\"test.canon.outer\""),
            "event keeps its causal path: {a}"
        );
    }

    #[test]
    fn canonical_jsonl_rejects_orphan_parents() {
        let line = format!(
            "{{\"schema\":\"{}\",\"kind\":\"event\",\"name\":\"x\",\"at_s\":0.1,\
             \"thread\":1,\"seq\":0,\"parent_id\":42,\"fields\":{{}}}}\n",
            crate::SCHEMA_V2
        );
        let err = canonical_jsonl(&line).unwrap_err();
        assert!(err.contains("42"), "{err}");
    }
}
