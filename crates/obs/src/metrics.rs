//! Process-wide metrics: atomic counters, gauges and log-bucketed
//! histograms, registered lazily into a global registry and snapshotted
//! as `nsr-obs/v1` JSON-lines.
//!
//! # Cost contract
//!
//! Metrics are **disabled by default** and the disabled path is near-free:
//! one relaxed atomic load and a predictable branch, no allocation, no
//! locking. Instrumented hot loops therefore cost a handful of cycles per
//! metric call when nobody is listening (the `obs` bench suite pins this).
//! Enabling ([`set_metrics_enabled`]) turns each call into a relaxed
//! atomic RMW; the registry mutex is only touched once per metric (first
//! use) and at snapshot time.
//!
//! # Usage
//!
//! Metrics are `static`s constructed in `const` context:
//!
//! ```
//! use nsr_obs::metrics::Counter;
//! static CACHE_HITS: Counter = Counter::new("example.cache.hits");
//! CACHE_HITS.inc(); // no-op unless metrics are enabled
//! ```
//!
//! A metric only appears in snapshots once *registered*, which happens on
//! first use — or explicitly via `register()`, which instrumented crates
//! expose in bulk (`nsr_sim::obs::register()` etc.) so that a snapshot
//! shows zero-valued metrics rather than omitting them.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

use crate::json::Json;

/// Global enable flag; see the module docs for the cost contract.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables metric recording process-wide.
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Returns `Some(Instant::now())` only when metrics are enabled — the
/// idiom for timing a region without paying for the clock when disabled:
///
/// ```
/// if let Some(t0) = nsr_obs::metrics::metrics_timer() {
///     // ... observe t0.elapsed() into a histogram ...
/// }
/// ```
pub fn metrics_timer() -> Option<Instant> {
    metrics_enabled().then(Instant::now)
}

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: Vec::new(),
    gauges: Vec::new(),
    histograms: Vec::new(),
});

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    // A panic while holding the registry lock can only come from OOM;
    // recover the data rather than cascading poison errors.
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

/// A monotonically increasing `u64` counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: Once,
}

impl Counter {
    /// Creates a counter; usable in `static` position.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1. No-op when metrics are disabled.
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Adds `n`. No-op when metrics are disabled.
    pub fn add(&'static self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Registers the counter so it appears in snapshots even at zero.
    pub fn register(&'static self) {
        self.registered.call_once(|| registry().counters.push(self));
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(crate::SCHEMA.into())),
            ("kind", Json::Str("counter".into())),
            ("name", Json::Str(self.name.into())),
            ("value", Json::Num(self.get() as f64)),
        ])
    }
}

/// A last-value-wins `f64` gauge.
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
    registered: Once,
}

impl Gauge {
    /// Creates a gauge (initial value `0.0`); usable in `static` position.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            bits: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    /// The gauge's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stores `v`. No-op when metrics are disabled.
    pub fn set(&'static self, v: f64) {
        if !metrics_enabled() {
            return;
        }
        self.register();
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Registers the gauge so it appears in snapshots even when unset.
    pub fn register(&'static self) {
        self.registered.call_once(|| registry().gauges.push(self));
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(crate::SCHEMA.into())),
            ("kind", Json::Str("gauge".into())),
            ("name", Json::Str(self.name.into())),
            // Non-finite values render as `null`, which the schema allows
            // for gauges.
            ("value", Json::Num(self.get())),
        ])
    }
}

/// Number of finite histogram buckets; observations above the top bound
/// land in the `overflow` bucket.
pub const BUCKET_COUNT: usize = 64;

/// Bucket `i` has inclusive upper bound `2^(i - 31)`: the buckets span
/// roughly `4.7e-10` to `4.3e9` in factor-of-two steps, wide enough for
/// both sub-microsecond timings (seconds) and rebuild throughput
/// (bytes per second).
const BUCKET_EXP_OFFSET: i64 = 31;

fn bucket_bound(i: usize) -> f64 {
    (2.0f64).powi(i as i32 - BUCKET_EXP_OFFSET as i32)
}

/// A histogram with fixed log-spaced (power-of-two) buckets.
///
/// `observe` semantics: `NaN` is ignored; `±inf` counts toward `count`
/// and `overflow` but not `sum`/`min`/`max`; non-positive finite values
/// land in the first bucket.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKET_COUNT],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    registered: Once,
}

impl Histogram {
    /// Creates a histogram; usable in `static` position.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            registered: Once::new(),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation. No-op when metrics are disabled.
    pub fn observe(&'static self, v: f64) {
        if !metrics_enabled() || v.is_nan() {
            return;
        }
        self.register();
        self.count.fetch_add(1, Ordering::Relaxed);
        if !v.is_finite() {
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.min_bits, |m| m.min(v));
        atomic_f64_update(&self.max_bits, |m| m.max(v));
        match Self::bucket_index(v) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Registers the histogram so it appears in snapshots even when empty.
    pub fn register(&'static self) {
        self.registered
            .call_once(|| registry().histograms.push(self));
    }

    /// Total number of observations (including overflow).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Largest finite observation so far (`-inf` before the first one).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) from the log
    /// buckets via [`percentile_from_buckets`]: the answer is the upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` observation, so
    /// it is exact at bucket boundaries and otherwise overestimates by at
    /// most one octave. Ranks landing in the overflow bucket report the
    /// tracked maximum. Returns `None` for an empty histogram.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let entries: Vec<(f64, u64)> = (0..BUCKET_COUNT)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_bound(i), n))
            })
            .collect();
        percentile_from_buckets(
            &entries,
            self.overflow.load(Ordering::Relaxed),
            self.max(),
            q,
        )
    }

    fn bucket_index(v: f64) -> Option<usize> {
        if v <= bucket_bound(0) {
            return Some(0);
        }
        let idx = v.log2().ceil() as i64 + BUCKET_EXP_OFFSET;
        if (0..BUCKET_COUNT as i64).contains(&idx) {
            Some(idx as usize)
        } else {
            None
        }
    }

    fn to_json(&self) -> Json {
        let count = self.count();
        let overflow = self.overflow.load(Ordering::Relaxed);
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let buckets: Vec<Json> = (0..BUCKET_COUNT)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| {
                    Json::obj([
                        ("le", Json::Num(bucket_bound(i))),
                        ("count", Json::Num(n as f64)),
                    ])
                })
            })
            .collect();
        Json::obj([
            ("schema", Json::Str(crate::SCHEMA.into())),
            ("kind", Json::Str("histogram".into())),
            ("name", Json::Str(self.name.into())),
            ("count", Json::Num(count as f64)),
            ("sum", Json::Num(self.sum())),
            // min/max render as `null` until a finite value is observed.
            ("min", Json::Num(min)),
            ("max", Json::Num(max)),
            ("overflow", Json::Num(overflow as f64)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// Quantile estimation over `(le, count)` histogram buckets (ascending
/// `le`, zero-count buckets may be omitted) plus an `overflow` count and
/// the tracked `max`. Shared between live [`Histogram`]s and parsers of
/// their JSON snapshots (`nsr report`).
///
/// `q` is clamped to `[0, 1]`. The rank-`⌈q·total⌉` observation (rank 1
/// minimum) is located by a cumulative walk; the answer is the owning
/// bucket's upper bound `le`. A rank in the overflow region reports `max`
/// when finite (overflowed observations are at least the largest bucket
/// bound, and `max` tracks them exactly when they are finite), otherwise
/// `None`. An empty histogram returns `None`.
pub fn percentile_from_buckets(
    entries: &[(f64, u64)],
    overflow: u64,
    max: f64,
    q: f64,
) -> Option<f64> {
    let total: u64 = entries.iter().map(|&(_, n)| n).sum::<u64>() + overflow;
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // ceil without float rounding surprises at exact multiples.
    let rank = (((total as f64) * q).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for &(le, n) in entries {
        cum += n;
        if cum >= rank {
            return Some(le);
        }
    }
    max.is_finite().then_some(max)
}

/// Read-modify-write an `f64` stored as bits in an `AtomicU64`.
fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Renders every registered metric as `nsr-obs/v1` JSON-lines: a `meta`
/// record first, then one record per metric, sorted by name within each
/// kind (counters, then gauges, then histograms).
pub fn metrics_jsonl(source: &str) -> String {
    let (mut counters, mut gauges, mut histograms) = {
        let reg = registry();
        (
            reg.counters.clone(),
            reg.gauges.clone(),
            reg.histograms.clone(),
        )
    };
    counters.sort_by_key(|c| c.name);
    gauges.sort_by_key(|g| g.name);
    histograms.sort_by_key(|h| h.name);
    let mut out = String::new();
    let meta = Json::obj([
        ("schema", Json::Str(crate::SCHEMA.into())),
        ("kind", Json::Str("meta".into())),
        ("source", Json::Str(source.into())),
    ]);
    out.push_str(&meta.render_compact());
    out.push('\n');
    for c in counters {
        out.push_str(&c.to_json().render_compact());
        out.push('\n');
    }
    for g in gauges {
        out.push_str(&g.to_json().render_compact());
        out.push('\n');
    }
    for h in histograms {
        out.push_str(&h.to_json().render_compact());
        out.push('\n');
    }
    out
}

/// Writes [`metrics_jsonl`] to `path`; returns the number of records
/// written (including the leading `meta` record).
pub fn write_metrics(path: &Path, source: &str) -> std::io::Result<usize> {
    let text = metrics_jsonl(source);
    let records = text.lines().count();
    std::fs::write(path, text)?;
    Ok(records)
}

/// Resets every *registered* metric to its initial state (counters and
/// histograms to zero, gauges to `0.0`). Registration is retained. Meant
/// for tests and benches that need a clean slate in one process.
pub fn reset_metrics() {
    let reg = registry();
    for c in &reg.counters {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in &reg.gauges {
        g.bits.store(0, Ordering::Relaxed);
    }
    for h in &reg.histograms {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.overflow.store(0, Ordering::Relaxed);
        h.count.store(0, Ordering::Relaxed);
        h.sum_bits.store(0, Ordering::Relaxed);
        h.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        h.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    // Tests that toggle the global enable flag must not interleave.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    static HITS: Counter = Counter::new("test.metrics.hits");
    static TEMP: Gauge = Gauge::new("test.metrics.temp");
    static LAT: Histogram = Histogram::new("test.metrics.lat");

    #[test]
    fn disabled_metrics_record_nothing() {
        let _g = test_guard();
        set_metrics_enabled(false);
        reset_metrics();
        HITS.inc();
        TEMP.set(3.5);
        LAT.observe(0.25);
        assert_eq!(HITS.get(), 0);
        assert_eq!(TEMP.get(), 0.0);
        assert_eq!(LAT.count(), 0);
        assert!(metrics_timer().is_none());
    }

    #[test]
    fn enabled_metrics_accumulate_and_snapshot() {
        let _g = test_guard();
        set_metrics_enabled(true);
        reset_metrics();
        HITS.inc();
        HITS.add(4);
        TEMP.set(2.25);
        LAT.observe(0.5);
        LAT.observe(0.5);
        LAT.observe(3.0);
        LAT.observe(f64::NAN); // ignored
        LAT.observe(f64::INFINITY); // overflow only
        assert_eq!(HITS.get(), 5);
        assert_eq!(TEMP.get(), 2.25);
        assert_eq!(LAT.count(), 4);
        assert_eq!(LAT.sum(), 4.0);

        let text = metrics_jsonl("unit-test");
        set_metrics_enabled(false);
        let n = crate::validate_jsonl(&text).unwrap();
        assert!(n >= 4, "expected meta + 3 metrics, got {n} records");
        assert!(text.contains("\"test.metrics.hits\""));
        let hist_line = text
            .lines()
            .find(|l| l.contains("test.metrics.lat"))
            .unwrap();
        let doc = Json::parse(hist_line).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("overflow").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("sum").and_then(Json::as_f64), Some(4.0));
        let buckets = doc.get("buckets").and_then(Json::as_arr).unwrap();
        let total: f64 = buckets
            .iter()
            .filter_map(|b| b.get("count").and_then(Json::as_f64))
            .sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn bucket_bounds_cover_observations() {
        // Every bucket's bound contains values placed into it.
        for (v, want_le) in [
            (1e-12, bucket_bound(0)),
            (0.0, bucket_bound(0)),
            (-4.0, bucket_bound(0)),
            (1.0, 1.0),
            (1.5, 2.0),
            (2.0, 2.0),
            (1000.0, 1024.0),
        ] {
            let i = Histogram::bucket_index(v).unwrap();
            assert!(
                v <= bucket_bound(i) && bucket_bound(i) <= want_le,
                "v={v} got bucket le={} want le={want_le}",
                bucket_bound(i)
            );
        }
        // Beyond the top bound: overflow.
        assert_eq!(Histogram::bucket_index(1e12), None);
    }

    #[test]
    fn percentiles_are_exact_at_bucket_boundaries() {
        static PCT: Histogram = Histogram::new("test.metrics.pct");
        let _g = test_guard();
        set_metrics_enabled(true);
        reset_metrics();
        assert_eq!(PCT.percentile(0.5), None, "empty histogram");
        // Two observations at the le=1 boundary, two at le=2: ranks 1-2
        // resolve to 1.0, ranks 3-4 to 2.0.
        for v in [1.0, 1.0, 2.0, 2.0] {
            PCT.observe(v);
        }
        assert_eq!(PCT.percentile(0.0), Some(1.0));
        assert_eq!(PCT.percentile(0.25), Some(1.0));
        assert_eq!(PCT.percentile(0.5), Some(1.0));
        assert_eq!(PCT.percentile(0.51), Some(2.0));
        assert_eq!(PCT.percentile(0.75), Some(2.0));
        assert_eq!(PCT.percentile(1.0), Some(2.0));
        // 1000.0 lands in the le=1024 bucket: its percentile reports the
        // bucket bound, not the observation.
        PCT.observe(1000.0);
        assert_eq!(PCT.percentile(1.0), Some(1024.0));
        set_metrics_enabled(false);
        reset_metrics();
    }

    #[test]
    fn percentiles_in_the_overflow_bucket_report_the_tracked_max() {
        static OVF: Histogram = Histogram::new("test.metrics.ovf");
        let _g = test_guard();
        set_metrics_enabled(true);
        reset_metrics();
        OVF.observe(1.0);
        OVF.observe(1e12); // beyond the top bucket bound: overflow
        OVF.observe(3e12);
        assert_eq!(OVF.percentile(0.25), Some(1.0));
        assert_eq!(OVF.percentile(0.5), Some(3e12));
        assert_eq!(OVF.percentile(0.99), Some(3e12));
        set_metrics_enabled(false);
        reset_metrics();
        // Pure-infinite overflow has no finite max to report.
        assert_eq!(
            percentile_from_buckets(&[], 2, f64::NEG_INFINITY, 0.5),
            None
        );
        // The free function agrees with snapshots that omit zero buckets.
        assert_eq!(
            percentile_from_buckets(&[(1.0, 2), (4.0, 2)], 0, 4.0, 0.75),
            Some(4.0)
        );
    }

    #[test]
    fn reset_zeroes_registered_metrics() {
        let _g = test_guard();
        set_metrics_enabled(true);
        HITS.inc();
        LAT.observe(1.0);
        reset_metrics();
        set_metrics_enabled(false);
        assert_eq!(HITS.get(), 0);
        assert_eq!(LAT.count(), 0);
        assert_eq!(LAT.sum(), 0.0);
    }
}
