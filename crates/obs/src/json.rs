//! A tiny hand-rolled JSON value type shared across the workspace: enough
//! to *emit* the `BENCH_*.json` reports and `nsr-obs/v1` JSON-lines, and to
//! *parse them back* for validation (the CI smoke steps re-read what the
//! harnesses wrote and check the schemas).
//!
//! The workspace is intentionally dependency-free, so this replaces
//! `serde_json` for the narrow subset the reports need: objects, arrays,
//! strings, finite numbers, booleans and null. Numbers are stored as
//! `f64`; non-finite values are rendered as `null` (JSON has no NaN).
//! Strings support the full escape repertoire including surrogate pairs
//! (`😀` decodes to `😀`); *lone* surrogates remain a parse
//! error because they are not Unicode scalar values.
//!
//! This module used to live in `nsr-bench`; it moved here so every crate
//! can emit structured records without `nsr-bench`'s heavier dependency
//! closure. `nsr_bench::json` re-exports it for compatibility.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline — the
    /// exact format checked into the repository's `BENCH_*.json` files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no indentation or trailing newline —
    /// the format used for `nsr-obs/v1` JSON-lines records, where each
    /// record must occupy exactly one line.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => {
                self.render_into(out, 0);
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction; others with
                    // enough digits to round-trip through `parse`.
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns a descriptive error (with byte
    /// offset) on malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                offset: pos,
                what: "trailing characters after the document",
            });
        }
        Ok(value)
    }
}

/// A JSON parse error: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What was wrong.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for ParseError {}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str, what: &'static str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError { offset: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError {
            offset: *pos,
            what: "unexpected end of input",
        }),
        Some(b'n') => expect(bytes, pos, "null", "expected `null`").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true", "expected `true`").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false", "expected `false`").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            offset: *pos,
                            what: "expected `,` or `]` in array",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":", "expected `:` after object key")?;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => {
                        return Err(ParseError {
                            offset: *pos,
                            what: "expected `,` or `}` in object",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

/// Reads four hex digits starting at `at`.
fn hex4(bytes: &[u8], at: usize) -> Result<u32, &'static str> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    std::str::from_utf8(hex)
        .ok()
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or("invalid \\u escape")
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError {
            offset: *pos,
            what: "expected `\"`",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseError {
                    offset: *pos,
                    what: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = hex4(bytes, *pos + 1)
                            .map_err(|what| ParseError { offset: *pos, what })?;
                        match code {
                            // A high surrogate must be immediately followed
                            // by an escaped low surrogate; the pair decodes
                            // to one supplementary-plane scalar.
                            0xd800..=0xdbff => {
                                if bytes.get(*pos + 5) != Some(&b'\\')
                                    || bytes.get(*pos + 6) != Some(&b'u')
                                {
                                    return Err(ParseError {
                                        offset: *pos,
                                        what: "unpaired high surrogate in \\u escape",
                                    });
                                }
                                let low = hex4(bytes, *pos + 7).map_err(|what| ParseError {
                                    offset: *pos + 6,
                                    what,
                                })?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err(ParseError {
                                        offset: *pos + 6,
                                        what: "unpaired high surrogate in \\u escape",
                                    });
                                }
                                let scalar = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                let c = char::from_u32(scalar).ok_or(ParseError {
                                    offset: *pos,
                                    what: "\\u escape is not a scalar value",
                                })?;
                                out.push(c);
                                *pos += 10;
                            }
                            // A low surrogate with no preceding high half
                            // is not a scalar value.
                            0xdc00..=0xdfff => {
                                return Err(ParseError {
                                    offset: *pos,
                                    what: "unpaired low surrogate in \\u escape",
                                })
                            }
                            _ => {
                                let c = char::from_u32(code).ok_or(ParseError {
                                    offset: *pos,
                                    what: "\\u escape is not a scalar value",
                                })?;
                                out.push(c);
                                *pos += 4;
                            }
                        }
                    }
                    _ => {
                        return Err(ParseError {
                            offset: *pos,
                            what: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&b) => {
                // Copy the full UTF-8 sequence starting at this byte.
                let start = *pos;
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes.get(start..start + len).ok_or(ParseError {
                    offset: start,
                    what: "truncated UTF-8 sequence",
                })?;
                let s = std::str::from_utf8(chunk).map_err(|_| ParseError {
                    offset: start,
                    what: "invalid UTF-8 in string",
                })?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| ParseError {
        offset: start,
        what: "invalid number",
    })?;
    text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
        offset: start,
        what: "invalid number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = Json::obj([
            ("schema", Json::Str("nsr-bench/v1".into())),
            ("suite", Json::Str("erasure".into())),
            (
                "results",
                Json::Arr(vec![Json::obj([
                    ("name", Json::Str("gf256/mul_acc_64k".into())),
                    ("ns_per_iter", Json::Num(19_531.25)),
                    ("bytes_per_iter", Json::Num(65_536.0)),
                    ("mib_per_s", Json::Num(3_200.0)),
                ])]),
            ),
        ]);
        let text = doc.render();
        assert!(text.ends_with('\n'));
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("nsr-bench/v1")
        );
        let results = back.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(
            results[0].get("ns_per_iter").and_then(Json::as_f64),
            Some(19_531.25)
        );
    }

    #[test]
    fn parses_literals_escapes_and_nesting() {
        let back =
            Json::parse(r#" { "a": [1, -2.5e3, true, false, null], "b": "x\n\"y\"A" } "#).unwrap();
        assert_eq!(back.get("b").and_then(Json::as_str), Some("x\n\"y\"A"));
        let a = back.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[1], Json::Num(-2500.0));
        assert_eq!(a[4], Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[1,]e",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("{\"a\": nope}").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // U+1F600 as an escaped pair, the case the old parser rejected.
        let back = Json::parse(r#""😀""#).unwrap();
        assert_eq!(back, Json::Str("😀".into()));
        // Pair embedded mid-string, with surrounding text intact.
        let back = Json::parse(r#""pre 𝒜 post""#).unwrap();
        assert_eq!(back, Json::Str("pre 𝒜 post".into()));
    }

    #[test]
    fn surrogate_pair_escape_round_trips_through_render() {
        // The renderer emits non-BMP characters as raw UTF-8; both the raw
        // and the escaped spelling must parse back to the same document.
        let doc = Json::obj([("label", Json::Str("node-😀-𝒜".into()))]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        let escaped = "{\"label\": \"node-\\ud83d\\ude00-\\ud835\\udc9c\"}";
        assert_eq!(Json::parse(escaped).unwrap(), doc);
    }

    #[test]
    fn rejects_lone_surrogates() {
        for bad in [
            r#""\ud83d""#,       // lone high at end of string
            r#""\ud83d rest""#,  // high followed by plain text
            r#""\ud83d\n""#,     // high followed by a non-\u escape
            r#""\ud83dA""#,      // high followed by a non-surrogate
            r#""\ud83d\ud83d""#, // high followed by another high
            r#""\ude00""#,       // lone low
            r#""x\ude00y""#,     // lone low mid-string
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn render_compact_is_single_line_and_round_trips() {
        let doc = Json::obj([
            ("schema", Json::Str("nsr-obs/v1".into())),
            ("value", Json::Num(42.0)),
            ("tags", Json::Arr(vec![Json::Str("a".into()), Json::Null])),
            ("nested", Json::obj([("k", Json::Bool(true))])),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(Json::Obj(BTreeMap::new()).render_compact(), "{}");
        assert_eq!(Json::Arr(vec![]).render_compact(), "[]");
    }
}
