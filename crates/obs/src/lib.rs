//! `nsr-obs`: zero-dependency structured observability for the workspace.
//!
//! Three pieces, all hand-rolled in the style of the `nsr-bench` JSON
//! stack (which now lives here, in [`json`]):
//!
//! - [`metrics`] — a process-wide registry of atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed [`Histogram`]s, snapshotted as JSON-lines.
//! - [`trace`] — causal [`Span`]/[`trace::event`] tracing with per-thread
//!   sharded sinks merged into a deterministic JSON-lines drain.
//! - [`json`] — the shared JSON value type used for both, plus the
//!   `BENCH_*.json` reports.
//!
//! # The `nsr-obs/v1` and `nsr-obs/v2` schemas
//!
//! Every emitted line is a self-contained JSON object with a `"schema"`
//! and a `"kind"`. Metric snapshots and `meta` lines are `nsr-obs/v1`:
//!
//! | kind        | fields |
//! |-------------|--------|
//! | `meta`      | `source` (string; trace meta adds `dropped`) |
//! | `counter`   | `name`, `value` (non-negative integer) |
//! | `gauge`     | `name`, `value` (number, or `null` when non-finite) |
//! | `histogram` | `name`, `count`, `sum`, `min`, `max`, `overflow`, `buckets` (array of `{le, count}`) |
//! | `span`      | `name`, `at_s`, `dur_s`, `fields` (object) |
//! | `event`     | `name`, `at_s`, `fields` (object) |
//!
//! Trace records are now emitted as `nsr-obs/v2`, which extends the v1
//! `span`/`event` shapes with causal identity:
//!
//! | kind    | fields added in v2 |
//! |---------|--------------------|
//! | `span`  | `span_id` (unique positive integer), `parent_id` (optional; must resolve to an emitted `span_id`), `thread`, `seq` |
//! | `event` | `parent_id` (optional), `thread`, `seq` |
//!
//! [`validate_line`] / [`validate_jsonl`] accept **both** versions, so v1
//! artifacts remain readable; [`validate_span_links`] adds the v2
//! structural check that every `parent_id` resolves to an emitted
//! `span_id` (no orphan spans). The CLI's `obs-check` command and the CI
//! smoke step are built on all three.
//!
//! # Cost contract
//!
//! Both layers are **off by default**, and every recording call starts
//! with a relaxed atomic load + branch and returns immediately when
//! disabled — no allocation, no locks, no clock reads. The `obs` bench
//! suite measures the disabled path so regressions show up as a bench
//! delta.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::{Json, ParseError};
pub use metrics::{
    metrics_enabled, metrics_jsonl, metrics_timer, percentile_from_buckets, reset_metrics,
    set_metrics_enabled, write_metrics, Counter, Gauge, Histogram,
};
pub use trace::{
    canonical_cluster_jsonl, canonical_jsonl, current_context, no_fields, process_id_for,
    set_trace_capacity, set_trace_enabled, set_trace_lane, set_trace_process, trace_delta,
    trace_enabled, trace_jsonl, trace_process, write_trace, Fields, Span, SpanContext,
};

/// The schema identifier stamped on metric snapshots and `meta` records.
pub const SCHEMA: &str = "nsr-obs/v1";

/// The schema identifier stamped on causal trace records (spans and
/// events carrying `span_id`/`parent_id`/`thread`/`seq`).
pub const SCHEMA_V2: &str = "nsr-obs/v2";

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn field_num(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric `{key}`"))
}

fn field_count(doc: &Json, key: &str) -> Result<f64, String> {
    let v = field_num(doc, key)?;
    if v.is_finite() && v >= 0.0 && v == v.trunc() {
        Ok(v)
    } else {
        Err(format!("`{key}` must be a non-negative integer, got {v}"))
    }
}

/// `key` may be a finite number or `null` (how non-finite values render).
fn field_num_or_null(doc: &Json, key: &str) -> Result<(), String> {
    match doc.get(key) {
        Some(Json::Num(_)) | Some(Json::Null) => Ok(()),
        _ => Err(format!("missing or non-numeric `{key}`")),
    }
}

fn field_fields(doc: &Json) -> Result<(), String> {
    match doc.get("fields") {
        None | Some(Json::Obj(_)) => Ok(()),
        _ => Err("`fields` must be an object".into()),
    }
}

/// The v2 causal identity: required `thread`/`seq`, a required positive
/// `span_id` when `require_span_id`, and an optional positive `parent_id`.
fn v2_identity(doc: &Json, require_span_id: bool) -> Result<(), String> {
    field_count(doc, "thread")?;
    field_count(doc, "seq")?;
    if require_span_id {
        let id = field_count(doc, "span_id")?;
        if id < 1.0 {
            return Err("`span_id` must be positive".into());
        }
    }
    if let Some(p) = doc.get("parent_id") {
        let p = p
            .as_f64()
            .ok_or_else(|| "non-numeric `parent_id`".to_string())?;
        if !(p.is_finite() && p >= 1.0 && p == p.trunc()) {
            return Err(format!("`parent_id` must be a positive integer, got {p}"));
        }
    }
    Ok(())
}

/// Validates one parsed record against the `nsr-obs/v1` or `nsr-obs/v2`
/// schema (v2 only defines the causal `span`/`event` kinds).
pub fn validate_line(doc: &Json) -> Result<(), String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("record is not an object".into());
    }
    let schema = field_str(doc, "schema")?;
    let v2 = match schema {
        s if s == SCHEMA => false,
        s if s == SCHEMA_V2 => true,
        other => {
            return Err(format!(
                "schema is {other:?}, expected {SCHEMA:?} or {SCHEMA_V2:?}"
            ))
        }
    };
    let kind = field_str(doc, "kind")?;
    match kind {
        "meta" if !v2 => {
            field_str(doc, "source")?;
        }
        "counter" if !v2 => {
            field_str(doc, "name")?;
            field_count(doc, "value")?;
        }
        "gauge" if !v2 => {
            field_str(doc, "name")?;
            field_num_or_null(doc, "value")?;
        }
        "histogram" if !v2 => {
            field_str(doc, "name")?;
            let count = field_count(doc, "count")?;
            field_num_or_null(doc, "sum")?;
            field_num_or_null(doc, "min")?;
            field_num_or_null(doc, "max")?;
            let overflow = field_count(doc, "overflow")?;
            let buckets = doc
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or("missing or non-array `buckets`")?;
            let mut in_buckets = 0.0;
            for b in buckets {
                let le = field_num(b, "le")?;
                if !le.is_finite() {
                    return Err("bucket `le` must be finite".into());
                }
                in_buckets += field_count(b, "count")?;
            }
            if in_buckets + overflow != count {
                return Err(format!(
                    "bucket counts ({in_buckets}) + overflow ({overflow}) != count ({count})"
                ));
            }
        }
        "span" => {
            field_str(doc, "name")?;
            field_num(doc, "at_s")?;
            let dur = field_num(doc, "dur_s")?;
            if dur < 0.0 {
                return Err("`dur_s` must be non-negative".into());
            }
            field_fields(doc)?;
            if v2 {
                v2_identity(doc, true)?;
            }
        }
        "event" => {
            field_str(doc, "name")?;
            field_num(doc, "at_s")?;
            field_fields(doc)?;
            if v2 {
                v2_identity(doc, false)?;
            }
        }
        other => return Err(format!("kind {other:?} not valid under schema {schema:?}")),
    }
    Ok(())
}

/// Validates a whole JSON-lines document: every non-empty line must parse
/// and pass [`validate_line`]. Returns the number of records on success;
/// errors name the offending (1-based) line.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut records = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        validate_line(&doc).map_err(|e| format!("line {}: {e}", i + 1))?;
        records += 1;
    }
    if records == 0 {
        return Err("no records found".into());
    }
    Ok(records)
}

/// The v2 structural check: every `parent_id` in the document resolves
/// to a `span_id` emitted by some span record (no orphan spans), and no
/// `span_id` is emitted twice. Lines that fail to parse are skipped —
/// run [`validate_jsonl`] first for shape errors.
pub fn validate_span_links(text: &str) -> Result<(), String> {
    let docs: Vec<Json> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Json::parse(l).ok())
        .collect();
    let mut ids = std::collections::HashSet::new();
    for doc in &docs {
        if doc.get("kind").and_then(Json::as_str) != Some("span") {
            continue;
        }
        if let Some(id) = doc.get("span_id").and_then(Json::as_f64) {
            if !ids.insert(id.to_bits()) {
                return Err(format!("duplicate span_id {id}"));
            }
        }
    }
    for (i, doc) in docs.iter().enumerate() {
        if let Some(p) = doc.get("parent_id").and_then(Json::as_f64) {
            if !ids.contains(&p.to_bits()) {
                return Err(format!(
                    "record {} ({}): parent_id {p} does not resolve to an emitted span_id",
                    i + 1,
                    doc.get("name").and_then(Json::as_str).unwrap_or("?"),
                ));
            }
        }
    }
    Ok(())
}

/// The cross-process extension of [`validate_span_links`]: each part is
/// one process's trace JSONL (its `meta` line must carry `proc` /
/// `proc_id`, see [`trace::set_trace_process`]). Checks that span ids
/// are unique *per process*, local `parent_id`s resolve within their
/// own part, and every `remote_proc_id`/`remote_parent_id` pair
/// resolves to a span emitted by some part.
pub fn validate_cluster_links(parts: &[&str]) -> Result<(), String> {
    let mut all_spans = std::collections::HashSet::new();
    let mut parsed: Vec<(u64, Vec<Json>)> = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        validate_span_links(part).map_err(|e| format!("part {}: {e}", pi + 1))?;
        let docs: Vec<Json> = part
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| Json::parse(l).ok())
            .collect();
        let proc_id = docs
            .iter()
            .find(|d| d.get("kind").and_then(Json::as_str) == Some("meta"))
            .and_then(|d| d.get("proc_id"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("part {} has no meta line with `proc_id`", pi + 1))?
            as u64;
        for doc in &docs {
            if doc.get("kind").and_then(Json::as_str) != Some("span") {
                continue;
            }
            if let Some(id) = doc.get("span_id").and_then(Json::as_f64) {
                all_spans.insert((proc_id, id.to_bits()));
            }
        }
        parsed.push((proc_id, docs));
    }
    for (pi, (_, docs)) in parsed.iter().enumerate() {
        for (i, doc) in docs.iter().enumerate() {
            let (rp, rs) = (
                doc.get("remote_proc_id").and_then(Json::as_f64),
                doc.get("remote_parent_id").and_then(Json::as_f64),
            );
            match (rp, rs) {
                (None, None) => {}
                (Some(rp), Some(rs)) => {
                    if !all_spans.contains(&(rp as u64, rs.to_bits())) {
                        return Err(format!(
                            "part {}, record {}: remote parent ({rp}, {rs}) does not \
                             resolve to a span emitted by any part",
                            pi + 1,
                            i + 1
                        ));
                    }
                }
                _ => {
                    return Err(format!(
                        "part {}, record {}: remote_proc_id and remote_parent_id \
                         must appear together",
                        pi + 1,
                        i + 1
                    ))
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(s: &str) -> Result<(), String> {
        validate_line(&Json::parse(s).unwrap())
    }

    #[test]
    fn accepts_well_formed_records() {
        for good in [
            r#"{"schema":"nsr-obs/v1","kind":"meta","source":"nsr sim"}"#,
            r#"{"schema":"nsr-obs/v1","kind":"counter","name":"a.b","value":3}"#,
            r#"{"schema":"nsr-obs/v1","kind":"gauge","name":"a.b","value":0.5}"#,
            r#"{"schema":"nsr-obs/v1","kind":"gauge","name":"a.b","value":null}"#,
            concat!(
                r#"{"schema":"nsr-obs/v1","kind":"histogram","name":"h","count":3,"#,
                r#""sum":2.5,"min":0.5,"max":1.5,"overflow":1,"#,
                r#""buckets":[{"le":1,"count":1},{"le":2,"count":1}]}"#
            ),
            r#"{"schema":"nsr-obs/v1","kind":"span","name":"s","at_s":0.1,"dur_s":0.2,"fields":{}}"#,
            r#"{"schema":"nsr-obs/v1","kind":"event","name":"e","at_s":0.1,"fields":{"w":1}}"#,
            concat!(
                r#"{"schema":"nsr-obs/v2","kind":"span","name":"s","at_s":0.1,"dur_s":0.2,"#,
                r#""span_id":3,"parent_id":1,"thread":2,"seq":17,"fields":{}}"#
            ),
            concat!(
                r#"{"schema":"nsr-obs/v2","kind":"span","name":"root","at_s":0,"dur_s":0,"#,
                r#""span_id":1,"thread":0,"seq":0,"fields":{}}"#
            ),
            concat!(
                r#"{"schema":"nsr-obs/v2","kind":"event","name":"e","at_s":0.1,"#,
                r#""parent_id":3,"thread":2,"seq":18,"fields":{"w":1}}"#
            ),
            r#"{"schema":"nsr-obs/v2","kind":"event","name":"e","at_s":0.1,"thread":2,"seq":18,"fields":{}}"#,
        ] {
            assert_eq!(line(good), Ok(()), "rejected {good}");
        }
    }

    #[test]
    fn rejects_malformed_records() {
        for bad in [
            r#"[1,2]"#,                                                // not an object
            r#"{"kind":"counter","name":"a","value":1}"#,              // no schema
            r#"{"schema":"nsr-bench/v1","kind":"meta","source":"x"}"#, // wrong schema
            r#"{"schema":"nsr-obs/v1","kind":"widget","name":"a"}"#,   // unknown kind
            r#"{"schema":"nsr-obs/v1","kind":"counter","value":1}"#,   // no name
            r#"{"schema":"nsr-obs/v1","kind":"counter","name":"a","value":-1}"#,
            r#"{"schema":"nsr-obs/v1","kind":"counter","name":"a","value":1.5}"#,
            r#"{"schema":"nsr-obs/v1","kind":"span","name":"s","at_s":0,"dur_s":-1}"#,
            concat!(
                r#"{"schema":"nsr-obs/v1","kind":"histogram","name":"h","count":5,"#,
                r#""sum":0,"min":null,"max":null,"overflow":0,"buckets":[]}"#
            ), // counts don't add up
            // v2 is trace-only: metric kinds stay v1.
            r#"{"schema":"nsr-obs/v2","kind":"counter","name":"a","value":1}"#,
            r#"{"schema":"nsr-obs/v2","kind":"meta","source":"x"}"#,
            // v2 spans need their causal identity.
            r#"{"schema":"nsr-obs/v2","kind":"span","name":"s","at_s":0,"dur_s":0,"fields":{}}"#,
            concat!(
                r#"{"schema":"nsr-obs/v2","kind":"span","name":"s","at_s":0,"dur_s":0,"#,
                r#""span_id":0,"thread":0,"seq":0,"fields":{}}"#
            ), // span_id must be positive
            concat!(
                r#"{"schema":"nsr-obs/v2","kind":"event","name":"e","at_s":0,"#,
                r#""parent_id":1.5,"thread":0,"seq":0,"fields":{}}"#
            ), // fractional parent_id
        ] {
            assert!(line(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn validate_jsonl_counts_and_locates_errors() {
        let good = concat!(
            "{\"schema\":\"nsr-obs/v1\",\"kind\":\"meta\",\"source\":\"t\"}\n",
            "\n",
            "{\"schema\":\"nsr-obs/v1\",\"kind\":\"counter\",\"name\":\"c\",\"value\":1}\n",
        );
        assert_eq!(validate_jsonl(good), Ok(2));
        let bad = "{\"schema\":\"nsr-obs/v1\",\"kind\":\"meta\",\"source\":\"t\"}\nnot json\n";
        let err = validate_jsonl(bad).unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
        assert!(validate_jsonl("").is_err());
    }

    #[test]
    fn span_links_resolve_or_error() {
        let root = concat!(
            r#"{"schema":"nsr-obs/v2","kind":"span","name":"root","at_s":0,"dur_s":0,"#,
            r#""span_id":1,"thread":0,"seq":0,"fields":{}}"#
        );
        let child = concat!(
            r#"{"schema":"nsr-obs/v2","kind":"event","name":"child","at_s":0,"#,
            r#""parent_id":1,"thread":0,"seq":1,"fields":{}}"#
        );
        let ok = format!("{root}\n{child}\n");
        assert_eq!(validate_span_links(&ok), Ok(()));
        let orphan = format!("{child}\n");
        let err = validate_span_links(&orphan).unwrap_err();
        assert!(err.contains("parent_id 1"), "{err}");
        let dup = format!("{root}\n{root}\n");
        assert!(validate_span_links(&dup).unwrap_err().contains("duplicate"));
    }
}
