//! Heartbeat edge cases (satellite coverage): flapping bricks that die
//! and rejoin inside the suspect window, simultaneous death of exactly
//! `t` and of `t + 1` bricks, and clock-free determinism of the
//! detector — every test drives a `MockClock`, so there is no sleep and
//! no scheduler dependence anywhere in this file.

use std::sync::Arc;
use std::time::Duration;

use nsr_net::brick::{BrickConfig, BrickServer};
use nsr_net::client::BrickClient;
use nsr_net::clock::MockClock;
use nsr_net::detector::{DetectorConfig, FailureDetector, Health};
use nsr_net::gateway::{Gateway, GatewayConfig, RetryPolicy};
use nsr_net::Error;

fn det(clock: &MockClock, bricks: u32) -> FailureDetector {
    FailureDetector::new(
        Arc::new(clock.clone()),
        DetectorConfig {
            suspect_phi: 1.0,
            dead_phi: 3.0,
            initial_interval_s: 0.5,
            interval_alpha: 0.2,
        },
        0..bricks,
    )
}

fn warm(d: &mut FailureDetector, clock: &MockClock, bricks: u32, rounds: u32) {
    for _ in 0..rounds {
        clock.advance(0.5);
        for b in 0..bricks {
            d.heartbeat(b);
        }
        assert!(d.tick().is_empty());
    }
}

/// A brick that misses beats long enough to be suspected but resumes
/// before the dead threshold must flap back to Healthy — no death, no
/// rebuild, and the detection machinery keeps working afterwards.
#[test]
fn flap_within_suspect_window_returns_to_healthy() {
    let clock = MockClock::new();
    let mut d = det(&clock, 2);
    warm(&mut d, &clock, 2, 10);
    // Brick 1 misses beats: mean ≈ 0.5 s, so suspect at ~1.15 s of
    // silence and dead at ~3.45 s. Walk it into Suspect…
    let mut suspected = false;
    for _ in 0..3 {
        clock.advance(0.5);
        d.heartbeat(0);
        for tr in d.tick() {
            assert_eq!((tr.brick, tr.to), (1, Health::Suspect));
            suspected = true;
        }
    }
    assert!(suspected, "brick 1 must reach Suspect");
    assert_eq!(d.health(1), Some(Health::Suspect));
    // …then resume inside the window: the flap transition is
    // Suspect → Healthy, not a rejoin, and no death is ever recorded.
    let tr = d.heartbeat(1).expect("flap transition");
    assert_eq!((tr.from, tr.to), (Health::Suspect, Health::Healthy));
    assert!(tr.detection_latency_s.is_none());
    warm(&mut d, &clock, 2, 10);
    assert_eq!(d.health(1), Some(Health::Healthy));
}

/// Repeated flapping must never escalate: a brick that oscillates
/// between silence-to-Suspect and resume never reaches Dead.
#[test]
fn repeated_flapping_never_escalates_to_dead() {
    let clock = MockClock::new();
    let mut d = det(&clock, 2);
    warm(&mut d, &clock, 2, 10);
    for _ in 0..8 {
        // Two missed rounds: into (or toward) Suspect…
        for _ in 0..3 {
            clock.advance(0.5);
            d.heartbeat(0);
            for tr in d.tick() {
                assert_ne!(tr.to, Health::Dead, "flapping must not kill the brick");
            }
        }
        // …then one beat to recover. The EWMA absorbs the long gap, so
        // thresholds adapt rather than ratchet.
        d.heartbeat(1);
        for _ in 0..4 {
            clock.advance(0.5);
            d.heartbeat(0);
            d.heartbeat(1);
            d.tick();
        }
    }
    assert_eq!(d.health(0), Some(Health::Healthy));
    assert_eq!(d.health(1), Some(Health::Healthy));
}

/// Exactly `t` and `t + 1` simultaneous deaths, at the detector level:
/// every victim individually walks Suspect → Dead with a latency
/// measurement, and the survivor set is exact.
#[test]
fn simultaneous_deaths_t_and_t_plus_one_detected_exactly() {
    for victims in [2u32, 3u32] {
        let clock = MockClock::new();
        let bricks = 6;
        let mut d = det(&clock, bricks);
        warm(&mut d, &clock, bricks, 10);
        let mut deaths = Vec::new();
        for _ in 0..12 {
            clock.advance(0.5);
            for b in victims..bricks {
                d.heartbeat(b);
            }
            for tr in d.tick() {
                if tr.to == Health::Dead {
                    assert!(tr.detection_latency_s.expect("latency") > 0.0);
                    deaths.push(tr.brick);
                }
            }
        }
        deaths.sort_unstable();
        assert_eq!(deaths, (0..victims).collect::<Vec<_>>());
        assert_eq!(d.healthy(), (victims..bricks).collect::<Vec<_>>());
        assert_eq!(d.failed(), (0..victims).collect::<Vec<_>>());
    }
}

/// Repeated kill/rejoin cycles must not slow detection down: the
/// silence while a brick is dead is not an inter-arrival sample, so the
/// estimate (and with it the dead threshold) must not ratchet upward
/// cycle over cycle.
#[test]
fn detection_latency_stable_across_kill_rejoin_cycles() {
    let clock = MockClock::new();
    let mut d = det(&clock, 2);
    warm(&mut d, &clock, 2, 10);
    let mut latencies = Vec::new();
    for _ in 0..6 {
        // Brick 1 goes silent until declared dead.
        let mut latency = None;
        for _ in 0..64 {
            clock.advance(0.5);
            d.heartbeat(0);
            for tr in d.tick() {
                if tr.brick == 1 && tr.to == Health::Dead {
                    latency = tr.detection_latency_s;
                }
            }
            if latency.is_some() {
                break;
            }
        }
        latencies.push(latency.expect("brick 1 declared dead"));
        // It comes back, is adopted, and beats steadily again.
        let tr = d.heartbeat(1).expect("rejoin transition");
        assert_eq!(tr.to, Health::Rejoined);
        d.adopt_spare(1).expect("adopt");
        warm(&mut d, &clock, 2, 10);
    }
    let first = latencies[0];
    for (i, &l) in latencies.iter().enumerate() {
        assert!(
            (l - first).abs() < 1.0,
            "cycle {i} latency {l:.2}s drifted from {first:.2}s: the dead gap leaked into the estimate"
        );
    }
}

/// The same two runs, bit for bit: transition log, φ values, latencies.
#[test]
fn detector_is_clock_free_deterministic() {
    let run = || {
        let clock = MockClock::new();
        let mut d = det(&clock, 5);
        let mut log: Vec<String> = Vec::new();
        for step in 0usize..60 {
            clock.advance(0.25);
            for b in 0..5u32 {
                // Per-brick beat patterns: 0–2 steady, 3 bursty (flaps
                // in and out of Suspect), 4 goes silent for good —
                // the log covers flaps, a death, and staggered timing.
                let beats = match b {
                    3 => step % 7 < 3,
                    4 => step < 20,
                    _ => step % 2 == 0,
                };
                if beats {
                    d.heartbeat(b);
                }
            }
            for tr in d.tick() {
                log.push(format!(
                    "{step} {} {:?}->{:?} lat={:?}",
                    tr.brick, tr.from, tr.to, tr.detection_latency_s
                ));
            }
            log.push(format!("{step} phi0={:.6} phi4={:.6}", d.phi(0), d.phi(4)));
        }
        log
    };
    assert_eq!(run(), run());
}

/// System-level t vs t+1, on live bricks: with `t = 2` parity, two
/// simultaneous brick deaths leave every object readable (degraded at
/// worst); three deaths produce typed `DataLoss` on exactly the
/// stripes that lost more than `t` shards — and nothing else.
#[test]
fn t_deaths_readable_t_plus_one_typed_loss() {
    let bricks = 6;
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for id in 0..bricks {
        let (addr, handle) = BrickServer::bind("127.0.0.1:0", BrickConfig::new(id as u32))
            .expect("bind")
            .spawn();
        addrs.push(addr);
        handles.push(Some(handle));
    }
    let clock = MockClock::new();
    let mut cfg = GatewayConfig::new(2, 2);
    cfg.timeout = Duration::from_millis(300);
    cfg.retry = RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(2),
    };
    let gw = Gateway::with_clock(addrs.clone(), cfg, Arc::new(clock.clone())).expect("gateway");
    for _ in 0..10 {
        clock.advance(0.5);
        gw.pump_heartbeats();
    }
    let n_objects = 12u64;
    for id in 0..n_objects {
        gw.put(id, &vec![id as u8; 2048]).expect("put");
    }
    let stop = |id: usize, handles: &mut Vec<Option<std::thread::JoinHandle<_>>>| {
        let mut c = BrickClient::connect(addrs[id], Duration::from_millis(300)).expect("connect");
        c.shutdown().expect("shutdown");
        if let Some(h) = handles[id].take() {
            let _: Result<(), Error> = h.join().expect("join");
        }
    };
    // Exactly t = 2 deaths: everything stays readable.
    stop(0, &mut handles);
    stop(1, &mut handles);
    for id in 0..n_objects {
        let (bytes, _) = gw.get(id).expect("readable at exactly t deaths");
        assert_eq!(bytes, vec![id as u8; 2048]);
    }
    // One more (t + 1 = 3 dead): loss appears, typed, on exactly the
    // stripes with > t dead shards.
    stop(2, &mut handles);
    for id in 0..n_objects {
        let layout = gw.object_layout(id).expect("layout");
        let dead_in_layout = layout.iter().filter(|&&b| b <= 2).count();
        match gw.get(id) {
            Ok((bytes, _)) => {
                assert!(dead_in_layout <= 2, "obj{id} should have been lost");
                assert_eq!(bytes, vec![id as u8; 2048]);
            }
            Err(Error::DataLoss {
                object,
                missing,
                tolerated,
            }) => {
                assert_eq!(object, id);
                assert_eq!(tolerated, 2);
                assert!(
                    dead_in_layout > 2,
                    "obj{id} lost with only {dead_in_layout} dead"
                );
                assert_eq!(missing, dead_in_layout);
            }
            Err(e) => panic!("obj{id}: unexpected error {e:?}"),
        }
    }
    for (id, slot) in handles.iter_mut().enumerate() {
        if let Some(h) = slot.take() {
            if let Ok(mut c) = BrickClient::connect(addrs[id], Duration::from_millis(200)) {
                let _ = c.shutdown();
            }
            let _ = h.join();
        }
    }
}
