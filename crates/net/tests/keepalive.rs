//! Regression test for gateway reconnect churn: pooled brick
//! connections must be refreshed by the keepalive thread *before* the
//! brick's idle read deadline, so a gateway that sits idle between
//! requests serves the next one on warm lanes — zero retries, zero
//! reconnects. The control run (keepalive disabled) shows the churn the
//! fix removes: every lane is dropped by the brick during the idle
//! stretch and must be transparently re-dialed.
//!
//! Both scenarios share one test function because the pool counters are
//! process-wide; sequential deltas keep them race-free.

use std::net::SocketAddr;
use std::time::Duration;

use nsr_net::brick::{BrickConfig, BrickServer};
use nsr_net::client::BrickClient;
use nsr_net::detector::DetectorConfig;
use nsr_net::gateway::{Gateway, GatewayConfig, ReadMode, RetryPolicy};
use nsr_net::Error;

/// Brick-side idle read deadline. Short so the test's idle stretch
/// stays well under a second (the production default is 2 s).
const BRICK_DEADLINE: Duration = Duration::from_millis(300);

/// Idle stretch between the put and the get — comfortably past the
/// brick deadline, so any unrefreshed lane is dropped server-side.
const IDLE: Duration = Duration::from_millis(900);

struct Cluster {
    addrs: Vec<SocketAddr>,
    handles: Vec<std::thread::JoinHandle<Result<(), Error>>>,
    gw: Gateway,
}

fn cluster(keepalive_refresh: Duration) -> Cluster {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for id in 0..4u32 {
        let mut cfg = BrickConfig::new(id);
        cfg.read_timeout = BRICK_DEADLINE;
        cfg.write_timeout = BRICK_DEADLINE;
        let (addr, handle) = BrickServer::bind("127.0.0.1:0", cfg)
            .expect("bind brick")
            .spawn();
        addrs.push(addr);
        handles.push(handle);
    }
    let mut cfg = GatewayConfig::new(2, 1);
    cfg.timeout = Duration::from_millis(250);
    cfg.retry = RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
    };
    cfg.detector = DetectorConfig {
        suspect_phi: 1.0,
        dead_phi: 3.0,
        initial_interval_s: 0.02,
        interval_alpha: 0.2,
    };
    cfg.keepalive_refresh = keepalive_refresh;
    let gw = Gateway::connect(addrs.clone(), cfg).expect("gateway");
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(20));
        gw.pump_heartbeats();
    }
    Cluster { addrs, handles, gw }
}

impl Cluster {
    fn shutdown(self) {
        drop(self.gw);
        for addr in &self.addrs {
            let mut c = BrickClient::connect(*addr, Duration::from_millis(300)).expect("connect");
            c.shutdown().expect("shutdown");
        }
        for h in self.handles {
            h.join().expect("join").expect("brick run");
        }
    }
}

#[test]
fn keepalive_prevents_reconnects_and_retries_across_idle_gaps() {
    nsr_obs::set_metrics_enabled(true);
    let payload: Vec<u8> = (0..96 * 1024).map(|i| (i % 251) as u8).collect();

    // With keepalive refreshing lanes every 80 ms, an idle stretch past
    // the 300 ms brick deadline must cost nothing: no brick drops the
    // connection, so the get runs with zero retries and zero reconnects.
    let c = cluster(Duration::from_millis(80));
    c.gw.put(7, &payload).expect("put");
    std::thread::sleep(IDLE);
    let retries_before = nsr_net::obs::RETRIES.get();
    let reconnects_before = nsr_net::obs::POOL_RECONNECTS.get();
    let (data, mode) = c.gw.get(7).expect("get after idle");
    assert_eq!(data, payload);
    assert_eq!(mode, ReadMode::Healthy);
    assert_eq!(
        nsr_net::obs::RETRIES.get() - retries_before,
        0,
        "idle gap must not trigger gateway retries when keepalive is on"
    );
    assert_eq!(
        nsr_net::obs::POOL_RECONNECTS.get() - reconnects_before,
        0,
        "idle gap must not drop pooled lanes when keepalive is on"
    );
    assert!(
        nsr_net::obs::POOL_KEEPALIVES.get() > 0,
        "the keepalive thread should have refreshed idle lanes"
    );
    c.shutdown();

    // Control: keepalive disabled. The bricks drop every lane during
    // the idle stretch; the get still succeeds (transparent reconnect)
    // but the churn is visible in the reconnect counter.
    let c = cluster(Duration::ZERO);
    c.gw.put(7, &payload).expect("put");
    std::thread::sleep(IDLE);
    let reconnects_before = nsr_net::obs::POOL_RECONNECTS.get();
    let (data, _) = c.gw.get(7).expect("get after idle without keepalive");
    assert_eq!(data, payload);
    assert!(
        nsr_net::obs::POOL_RECONNECTS.get() > reconnects_before,
        "without keepalive the idle gap must show up as reconnect churn"
    );
    c.shutdown();
}
