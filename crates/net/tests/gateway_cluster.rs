//! End-to-end gateway tests against in-process brick servers: healthy
//! and degraded reads, automatic rebuild to spares, the typed
//! `RebuildInterrupted` checkpoint, and coordinator-restart resume.
//!
//! Bricks run as threads (the child-process path is exercised by
//! `nsr cluster-inject` and the CLI integration test); the failure
//! detector runs on a `MockClock` so every health transition in here is
//! deterministic.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use nsr_net::brick::{BrickConfig, BrickServer};
use nsr_net::client::BrickClient;
use nsr_net::clock::MockClock;
use nsr_net::detector::{DetectorConfig, Health};
use nsr_net::gateway::{Gateway, GatewayConfig, ReadMode, RetryPolicy};
use nsr_net::Error;

struct TestCluster {
    addrs: Vec<SocketAddr>,
    handles: Vec<Option<std::thread::JoinHandle<Result<(), Error>>>>,
    clock: MockClock,
    gw: Gateway,
}

impl TestCluster {
    fn new(bricks: usize, data: usize, parity: usize) -> TestCluster {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for id in 0..bricks {
            let (addr, handle) = BrickServer::bind("127.0.0.1:0", BrickConfig::new(id as u32))
                .expect("bind brick")
                .spawn();
            addrs.push(addr);
            handles.push(Some(handle));
        }
        let clock = MockClock::new();
        let mut cfg = GatewayConfig::new(data, parity);
        cfg.timeout = Duration::from_millis(300);
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
        };
        cfg.detector = DetectorConfig {
            suspect_phi: 1.0,
            dead_phi: 3.0,
            initial_interval_s: 0.5,
            interval_alpha: 0.2,
        };
        let gw = Gateway::with_clock(addrs.clone(), cfg, Arc::new(clock.clone())).expect("gateway");
        let cluster = TestCluster {
            addrs,
            handles,
            clock,
            gw,
        };
        // Establish heartbeat history at a steady mock interval.
        for _ in 0..10 {
            cluster.pump();
        }
        cluster
    }

    /// One detector round: advance mock time half a second, probe.
    fn pump(&self) {
        self.clock.advance(0.5);
        self.gw.pump_heartbeats();
    }

    /// Orderly brick shutdown — from the gateway's perspective the
    /// brick simply stops answering, like a kill.
    fn stop_brick(&mut self, id: usize) {
        let mut c = BrickClient::connect(self.addrs[id], Duration::from_millis(300))
            .expect("connect for shutdown");
        c.shutdown().expect("shutdown");
        if let Some(h) = self.handles[id].take() {
            h.join().expect("join").expect("brick run");
        }
    }

    /// Restarts a stopped brick on a fresh port with an empty store —
    /// the in-process analogue of the campaign's victim respawn.
    fn restart_brick(&mut self, id: usize) {
        let (addr, handle) = BrickServer::bind("127.0.0.1:0", BrickConfig::new(id as u32))
            .expect("rebind brick")
            .spawn();
        self.addrs[id] = addr;
        self.handles[id] = Some(handle);
        self.gw.set_brick_addr(id as u32, addr);
    }

    /// Pumps until `id` is declared dead (bounded).
    fn pump_until_dead(&self, id: u32) {
        for _ in 0..32 {
            self.pump();
            if self.gw.health_summary()[id as usize].1 == Health::Dead {
                return;
            }
        }
        panic!(
            "brick {id} not declared dead: {:?}",
            self.gw.health_summary()
        );
    }
}

impl Drop for TestCluster {
    fn drop(&mut self) {
        for (id, slot) in self.handles.iter_mut().enumerate() {
            if let Some(h) = slot.take() {
                if let Ok(mut c) = BrickClient::connect(self.addrs[id], Duration::from_millis(200))
                {
                    let _ = c.shutdown();
                }
                let _ = h.join();
            }
        }
    }
}

fn payload(object: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 31 + object * 7) % 251) as u8)
        .collect()
}

#[test]
fn healthy_put_get_round_trip() {
    let cluster = TestCluster::new(4, 2, 1);
    let data = payload(3, 10_000);
    cluster.gw.put(3, &data).expect("put");
    let (back, mode) = cluster.gw.get(3).expect("get");
    assert_eq!(back, data);
    assert_eq!(mode, ReadMode::Healthy);
    // Odd sizes survive the shard padding too.
    cluster.gw.put(4, &payload(4, 1)).expect("put tiny");
    assert_eq!(cluster.gw.get(4).expect("get tiny").0, payload(4, 1));
    cluster.gw.put(5, &[]).expect("put empty");
    assert_eq!(cluster.gw.get(5).expect("get empty").0, Vec::<u8>::new());
}

#[test]
fn degraded_read_routes_around_undetected_dead_brick() {
    let mut cluster = TestCluster::new(4, 2, 1);
    let data = payload(0, 8_192);
    cluster.gw.put(0, &data).expect("put");
    let layout = cluster.gw.object_layout(0).expect("layout");
    // Kill a data-shard holder without giving the detector a chance to
    // notice: the read must still succeed by reconstruction.
    cluster.stop_brick(layout[0] as usize);
    let (back, mode) = cluster.gw.get(0).expect("degraded get");
    assert_eq!(back, data);
    assert_eq!(mode, ReadMode::Degraded);
}

#[test]
fn death_triggers_rebuild_to_spare_and_healthy_reads() {
    let mut cluster = TestCluster::new(4, 2, 1);
    for id in 0..6u64 {
        cluster.gw.put(id, &payload(id, 4_096)).expect("put");
    }
    // Brick 1 appears in some layouts (4 bricks, r=3 → each object
    // skips exactly one brick).
    cluster.stop_brick(1);
    cluster.pump_until_dead(1);
    let report = cluster.gw.repair_all().expect("repair");
    assert!(report.shards_moved > 0, "rebuild must move shards");
    assert_eq!(report.lost_objects, Vec::<u64>::new());
    assert_eq!(report.resumed_from, 0);
    // Every layout now avoids brick 1 and reads are fully healthy.
    for id in 0..6u64 {
        let layout = cluster.gw.object_layout(id).expect("layout");
        assert!(!layout.contains(&1), "obj{id} still references dead brick");
        let (back, mode) = cluster.gw.get(id).expect("get after rebuild");
        assert_eq!(back, payload(id, 4_096));
        assert_eq!(mode, ReadMode::Healthy);
    }
    // The drained brick is out of rebuilding, still out of service.
    assert_eq!(cluster.gw.health_summary()[1].1, Health::Dead);
}

/// The interruption scenario, fully deterministic: brick 0 dies and is
/// detected; bricks 5 and 6 die *silently* (no detector round). The
/// repair pass fixes obj 0 (checkpoint = 1), then hits obj 5 — whose
/// surviving sources are mostly the silently-dead bricks — and must
/// surface `RebuildInterrupted { resumed_from: 1 }` rather than failing
/// some other way or redoing work on resume.
#[test]
fn rebuild_interruption_checkpoints_and_resumes() {
    let mut cluster = TestCluster::new(8, 2, 2);
    // Layout rotation over 8 healthy bricks: obj0 → [0,1,2,3],
    // obj5 → [5,6,7,0].
    cluster.gw.put(0, &payload(0, 4_096)).expect("put 0");
    cluster.gw.put(5, &payload(5, 4_096)).expect("put 5");
    assert_eq!(cluster.gw.object_layout(0).unwrap(), vec![0, 1, 2, 3]);
    assert_eq!(cluster.gw.object_layout(5).unwrap(), vec![5, 6, 7, 0]);

    cluster.stop_brick(0);
    cluster.pump_until_dead(0);
    // Silent deaths: the detector still believes 5 and 6 are healthy.
    cluster.stop_brick(5);
    cluster.stop_brick(6);

    match cluster.gw.repair_all() {
        Err(Error::RebuildInterrupted { resumed_from }) => {
            assert_eq!(resumed_from, 1, "obj0's completed move is the checkpoint")
        }
        other => panic!("expected RebuildInterrupted, got {other:?}"),
    }
    // obj0's repair survived the interruption (per-shard commit).
    assert!(!cluster.gw.object_layout(0).unwrap().contains(&0));

    // Let detection catch up, then resume.
    cluster.pump_until_dead(5);
    cluster.pump_until_dead(6);
    let report = cluster.gw.repair_all().expect("resumed repair");
    assert_eq!(report.resumed_from, 1, "resumed from the checkpoint");
    assert_eq!(report.shards_moved, 0, "no completed work is redone");
    assert_eq!(
        report.lost_objects,
        vec![5],
        "obj5 lost 3 of 4 shards — typed loss, not silent"
    );
    assert_eq!(
        cluster.gw.get(0).expect("obj0 healthy").1,
        ReadMode::Healthy
    );
    assert!(matches!(
        cluster.gw.get(5),
        Err(Error::DataLoss {
            object: 5,
            missing: 3,
            tolerated: 2
        })
    ));
    // A clean pass closes the rebuild generation.
    assert_eq!(
        cluster.gw.repair_all().expect("idle repair").resumed_from,
        0
    );
}

/// Spare exhaustion: with 2 of 4 bricks dead, an object that lost only
/// 1 shard (≤ t) may find every survivor already in its layout — there
/// is nowhere to re-replicate to. The repair pass must *defer* such
/// objects (keeping them degraded-readable), not abort, and a
/// presence-driven scrub after the bricks rejoin must restore them to
/// full redundancy in place.
#[test]
fn no_spare_defers_objects_and_scrub_restores_after_rejoin() {
    let mut cluster = TestCluster::new(4, 2, 1);
    for id in 0..6u64 {
        cluster.gw.put(id, &payload(id, 4_096)).expect("put");
    }
    // Layout rotation: obj o → bricks [o%4, o+1, o+2]. Dead {0, 3}:
    // objects 0,1,4,5 lose exactly 1 shard but every survivor {1,2} is
    // already in their layout; objects 2,3 lose 2 > t.
    cluster.stop_brick(0);
    cluster.stop_brick(3);
    cluster.pump_until_dead(0);
    cluster.pump_until_dead(3);

    let report = cluster.gw.repair_all().expect("repair pass must not abort");
    assert_eq!(report.deferred_objects, vec![0, 1, 4, 5]);
    assert_eq!(report.lost_objects, vec![2, 3]);
    assert_eq!(report.shards_moved, 0, "nowhere to move shards to");

    // Deferred objects stay readable. Objects 0 and 4 lost a *data*
    // shard (brick 0 holds their pos 0), so their reads reconstruct;
    // objects 1 and 5 only lost parity (brick 3) and read clean.
    for id in [0u64, 1, 4, 5] {
        let (back, mode) = cluster.gw.get(id).expect("deferred object readable");
        assert_eq!(back, payload(id, 4_096));
        let expect_mode = if id % 4 == 0 {
            ReadMode::Degraded
        } else {
            ReadMode::Healthy
        };
        assert_eq!(mode, expect_mode, "obj{id}");
    }
    assert!(matches!(
        cluster.gw.get(2),
        Err(Error::DataLoss {
            object: 2,
            missing: 2,
            tolerated: 1
        })
    ));

    // Victims come back empty and are adopted as spares.
    cluster.restart_brick(0);
    cluster.restart_brick(3);
    for _ in 0..32 {
        cluster.pump();
        cluster.gw.adopt_rejoined();
        let hs = cluster.gw.health_summary();
        if hs[0].1 == Health::Healthy && hs[3].1 == Health::Healthy {
            break;
        }
    }

    let scrub = cluster.gw.scrub_repair().expect("scrub");
    assert_eq!(scrub.objects_repaired, 4);
    assert_eq!(
        scrub.shards_moved, 4,
        "one missing shard per deferred object"
    );
    assert_eq!(scrub.lost_objects, vec![2, 3], "loss is permanent");
    assert_eq!(scrub.deferred_objects, Vec::<u64>::new());

    // Full redundancy restored in place: same layouts, healthy reads.
    for id in [0u64, 1, 4, 5] {
        let (back, mode) = cluster.gw.get(id).expect("get after scrub");
        assert_eq!(back, payload(id, 4_096));
        assert_eq!(mode, ReadMode::Healthy);
    }
    // A second scrub finds nothing to do.
    let idle = cluster.gw.scrub_repair().expect("idle scrub");
    assert_eq!(idle.shards_moved, 0);
}

/// Coordinator restart: a fresh gateway importing the old gateway's
/// exported metadata resumes the rebuild from the committed layout —
/// obj0's finished move is not redone, obj5's loss is re-derived.
#[test]
fn coordinator_restart_resumes_from_committed_metadata() {
    let mut cluster = TestCluster::new(8, 2, 2);
    cluster.gw.put(0, &payload(0, 4_096)).expect("put 0");
    cluster.gw.put(5, &payload(5, 4_096)).expect("put 5");
    cluster.stop_brick(0);
    cluster.pump_until_dead(0);
    cluster.stop_brick(5);
    cluster.stop_brick(6);
    assert!(matches!(
        cluster.gw.repair_all(),
        Err(Error::RebuildInterrupted { resumed_from: 1 })
    ));
    let exported = cluster.gw.export_meta();

    // The coordinator "crashes" and a new one starts with a blank
    // detector and the exported metadata.
    let mut cfg = GatewayConfig::new(2, 2);
    cfg.timeout = Duration::from_millis(300);
    cfg.retry = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
    };
    let clock = MockClock::new();
    let gw2 = Gateway::with_clock(cluster.addrs.clone(), cfg, Arc::new(clock.clone()))
        .expect("second gateway");
    gw2.import_meta(&exported).expect("import");
    for _ in 0..40 {
        clock.advance(0.5);
        gw2.pump_heartbeats();
        let hs = gw2.health_summary();
        if [0usize, 5, 6].iter().all(|&b| hs[b].1 == Health::Dead) {
            break;
        }
    }
    let report = gw2.repair_all().expect("repair after restart");
    assert_eq!(
        report.shards_moved, 0,
        "finished move not redone after restart"
    );
    assert_eq!(report.lost_objects, vec![5]);
    assert_eq!(gw2.get(0).expect("obj0 readable").0, payload(0, 4_096));
}
