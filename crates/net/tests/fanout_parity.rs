//! Property tests for the pipelined shard fan-out: the fast path must
//! be observably identical to the serial per-shard reference path.
//!
//! The same seeded script — puts of varying sizes, a seeded brick kill,
//! degraded gets, post-kill puts — runs once with `fanout: true` and
//! once with `fanout: false` at each pool size, and the full transcript
//! (returned bytes AND `ReadMode` per get) must match entry for entry.
//! Both clusters share the jitter seed, so layouts are identical and
//! the only variable is the serving path.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use nsr_net::brick::{BrickConfig, BrickServer};
use nsr_net::client::BrickClient;
use nsr_net::clock::MockClock;
use nsr_net::detector::{DetectorConfig, Health};
use nsr_net::gateway::{Gateway, GatewayConfig, ReadMode, RetryPolicy};
use nsr_net::Error;

struct Cluster {
    addrs: Vec<SocketAddr>,
    handles: Vec<Option<std::thread::JoinHandle<Result<(), Error>>>>,
    clock: MockClock,
    gw: Gateway,
}

fn cluster(bricks: usize, data: usize, parity: usize, fanout: bool, pool_size: usize) -> Cluster {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for id in 0..bricks {
        let (addr, handle) = BrickServer::bind("127.0.0.1:0", BrickConfig::new(id as u32))
            .expect("bind brick")
            .spawn();
        addrs.push(addr);
        handles.push(Some(handle));
    }
    let clock = MockClock::new();
    let mut cfg = GatewayConfig::new(data, parity);
    cfg.timeout = Duration::from_millis(300);
    cfg.retry = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
    };
    cfg.detector = DetectorConfig {
        suspect_phi: 1.0,
        dead_phi: 3.0,
        initial_interval_s: 0.5,
        interval_alpha: 0.2,
    };
    cfg.jitter_seed = 77;
    cfg.fanout = fanout;
    cfg.pool_size = pool_size;
    let gw = Gateway::with_clock(addrs.clone(), cfg, Arc::new(clock.clone())).expect("gateway");
    let c = Cluster {
        addrs,
        handles,
        clock,
        gw,
    };
    for _ in 0..10 {
        c.pump();
    }
    c
}

impl Cluster {
    fn pump(&self) {
        self.clock.advance(0.5);
        self.gw.pump_heartbeats();
    }

    fn kill_brick(&mut self, id: usize) {
        let mut c = BrickClient::connect(self.addrs[id], Duration::from_millis(300))
            .expect("connect for kill");
        c.shutdown().expect("shutdown");
        if let Some(h) = self.handles[id].take() {
            h.join().expect("join").expect("brick run");
        }
        for _ in 0..50 {
            self.pump();
            if self.gw.health_summary()[id].1 == Health::Dead {
                return;
            }
        }
        panic!("brick {id} never declared dead");
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for (id, h) in self.handles.iter_mut().enumerate() {
            if let Some(h) = h.take() {
                if let Ok(mut c) = BrickClient::connect(self.addrs[id], Duration::from_millis(300))
                {
                    let _ = c.shutdown();
                }
                let _ = h.join();
            }
        }
    }
}

/// Deterministic per-object payload with a length that exercises both
/// sub-shard objects and multi-KiB stripes, including lengths that are
/// not multiples of `k`.
fn payload(object: u64) -> Vec<u8> {
    let len = 37 + (object as usize * 7919) % (48 * 1024);
    (0..len)
        .map(|i| (object as usize).wrapping_mul(31).wrapping_add(i * 131) as u8)
        .collect()
}

/// Runs the seeded script against one cluster and records every get as
/// `(object, bytes, mode)`. The kill victim comes from a seeded LCG so
/// the schedule is data-driven, not hand-picked — and identical across
/// the fanout and serial runs being compared.
fn transcript(fanout: bool, pool_size: usize) -> Vec<(u64, Vec<u8>, ReadMode)> {
    let mut c = cluster(4, 2, 1, fanout, pool_size);
    for object in 1..=8u64 {
        c.gw.put(object, &payload(object)).expect("put");
    }
    let mut out = Vec::new();
    for object in 1..=8u64 {
        let (data, mode) = c.gw.get(object).expect("healthy get");
        out.push((object, data, mode));
    }
    // Seeded kill schedule: one victim drawn from an LCG.
    let mut lcg: u64 = 0xD5;
    lcg = lcg
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let victim = ((lcg >> 33) % 4) as usize;
    c.kill_brick(victim);
    for object in 1..=8u64 {
        let (data, mode) = c.gw.get(object).expect("post-kill get");
        out.push((object, data, mode));
    }
    // Puts keep working with a dead brick: layouts route around it.
    for object in 9..=11u64 {
        c.gw.put(object, &payload(object)).expect("post-kill put");
        let (data, mode) = c.gw.get(object).expect("post-kill read-back");
        out.push((object, data, mode));
    }
    out
}

#[test]
fn fanout_transcript_is_identical_to_serial_at_every_pool_size() {
    let reference = transcript(false, 1);
    // The reference itself must round-trip every payload.
    for (object, data, _) in &reference {
        assert_eq!(data, &payload(*object), "object {object} bytes");
    }
    for pool_size in [1usize, 2, 8] {
        let fast = transcript(true, pool_size);
        assert_eq!(fast.len(), reference.len());
        for ((obj_a, data_a, mode_a), (obj_b, data_b, mode_b)) in reference.iter().zip(&fast) {
            assert_eq!(obj_a, obj_b, "pool_size = {pool_size}");
            assert_eq!(
                data_a, data_b,
                "object {obj_a} bytes, pool_size = {pool_size}"
            );
            assert_eq!(
                mode_a, mode_b,
                "object {obj_a} read mode, pool_size = {pool_size}"
            );
        }
    }
}

#[test]
fn fanout_degraded_read_survives_exactly_t_dead_bricks() {
    // 2 data + 2 parity on six bricks: t = 2, so killing exactly two
    // layout bricks is the worst still-recoverable case. Kill the two
    // *data* holders so the read is a full parity reconstruction.
    let mut c = cluster(6, 2, 2, true, 2);
    let want = payload(1);
    c.gw.put(1, &want).expect("put");
    let layout = c.gw.object_layout(1).expect("layout");
    assert_eq!(layout.len(), 4);
    let (d0, d1) = (layout[0] as usize, layout[1] as usize);
    c.kill_brick(d0);
    c.kill_brick(d1);
    let (data, mode) = c.gw.get(1).expect("degraded get at t dead");
    assert_eq!(data, want);
    assert_eq!(mode, ReadMode::Degraded);
}
