//! Fuzz-ish property tests for the wire codec, in the workspace's
//! hand-rolled style (seeded `nsr-rng` loops instead of an external
//! proptest dependency): for every frame variant and thousands of
//! seeded random mutations — truncations, extensions, garbage tags,
//! corrupted length prefixes, pure noise — decoding either returns the
//! encoded value or a typed [`Error::Decode`]. Never a panic, never a
//! silently wrong frame on an untouched encoding.

use nsr_net::wire::{read_frame, Frame, MAX_FRAME_LEN};
use nsr_net::Error;
use nsr_rng::rngs::StdRng;
use nsr_rng::{Rng, SeedableRng};

fn decode_bytes(bytes: &[u8]) -> Result<Option<Frame>, Error> {
    let mut cursor = std::io::Cursor::new(bytes.to_vec());
    read_frame(&mut cursor)
}

/// A seeded random frame of any variant, sizes skewed small with
/// occasional large payloads.
fn random_frame(rng: &mut StdRng) -> Frame {
    let len = if rng.random_range_usize(0, 8) == 0 {
        rng.random_range_usize(0, 4096)
    } else {
        rng.random_range_usize(0, 64)
    };
    let data: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
    match rng.random_range_usize(0, 15) {
        0 => Frame::PutShard {
            object: rng.random(),
            pos: rng.random(),
            data,
        },
        1 => Frame::GetShard {
            object: rng.random(),
            pos: rng.random(),
        },
        2 => Frame::DeleteShard {
            object: rng.random(),
            pos: rng.random(),
        },
        3 => Frame::Heartbeat { seq: rng.random() },
        4 => Frame::ListShards,
        5 => Frame::RebuildFetch {
            object: rng.random(),
            pos: rng.random(),
        },
        6 => Frame::Shutdown,
        7 => Frame::Ok,
        8 => Frame::ShardData { data },
        9 => Frame::HeartbeatAck {
            seq: rng.random(),
            brick_id: rng.random(),
            shards: rng.random(),
            snap_seq: rng.random(),
            load: rng.random(),
        },
        10 => {
            let n = rng.random_range_usize(0, 32);
            Frame::ShardList {
                entries: (0..n).map(|_| (rng.random(), rng.random())).collect(),
            }
        }
        11 => Frame::TraceCtx {
            proc: rng.random(),
            span: rng.random(),
        },
        12 => Frame::Scrape {
            cursor: rng.random(),
            max_lines: rng.random(),
        },
        13 => Frame::ScrapeReply {
            proc_id: rng.random(),
            snap_seq: rng.random(),
            next_cursor: rng.random(),
            label: String::from_utf8_lossy(&data[..data.len().min(16)]).into_owned(),
            metrics: data.clone(),
            trace: data.iter().rev().copied().collect(),
            status: data,
        },
        _ => Frame::ErrorReply {
            code: (rng.random::<u32>() & 0xffff) as u16,
            detail: String::from_utf8_lossy(&data).into_owned(),
        },
    }
}

#[test]
fn untouched_encodings_always_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for _ in 0..2_000 {
        let frame = random_frame(&mut rng);
        let decoded = decode_bytes(&frame.encode())
            .expect("clean encoding decodes")
            .expect("clean encoding is a frame");
        assert_eq!(decoded, frame);
    }
}

#[test]
fn truncations_never_panic_and_never_decode_wrong() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    for _ in 0..500 {
        let frame = random_frame(&mut rng);
        let enc = frame.encode();
        // Every cut for small frames; a seeded sample for large ones
        // (exhaustive truncation of 4 KiB payloads is all payload).
        let cuts: Vec<usize> = if enc.len() <= 256 {
            (0..enc.len()).collect()
        } else {
            (0..64)
                .map(|_| rng.random_range_usize(0, enc.len()))
                .collect()
        };
        for cut in cuts {
            match decode_bytes(&enc[..cut]) {
                // An empty prefix is a clean EOF; anything else cut
                // short must be a typed decode error.
                Ok(None) => assert_eq!(cut, 0),
                Ok(Some(_)) => panic!("truncated frame decoded ({cut}/{} bytes)", enc.len()),
                Err(Error::Decode { .. }) => {}
                Err(other) => panic!("non-decode error on truncation: {other:?}"),
            }
        }
    }
}

#[test]
fn random_byte_mutations_decode_or_reject_typed() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    for _ in 0..2_000 {
        let frame = random_frame(&mut rng);
        let mut enc = frame.encode();
        for _ in 0..1 + rng.random_range_usize(0, 4) {
            let i = rng.random_range_usize(0, enc.len());
            enc[i] ^= 1 << rng.random_range_usize(0, 8);
        }
        match decode_bytes(&enc) {
            // A mutation can still be a valid frame (e.g. a flipped bit
            // inside payload bytes) — that is fine; what is not allowed
            // is a panic or an untyped failure.
            Ok(_) => {}
            Err(Error::Decode { .. }) => {}
            Err(other) => panic!("mutation produced non-decode error: {other:?}"),
        }
    }
}

#[test]
fn garbage_tags_and_noise_reject_typed() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0004);
    for _ in 0..2_000 {
        let len = rng.random_range_usize(1, 128);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
        // Keep the announced length in bounds so the run exercises tag
        // and payload validation, not just the length guard.
        let body_len = (len.saturating_sub(4)).max(1) as u32;
        bytes[..4.min(len)].copy_from_slice(&body_len.to_le_bytes()[..4.min(len)]);
        match decode_bytes(&bytes) {
            Ok(_) => {}
            Err(Error::Decode { .. }) => {}
            Err(other) => panic!("noise produced non-decode error: {other:?}"),
        }
    }
}

#[test]
fn oversized_and_zero_lengths_reject_typed() {
    for len in [0u32, MAX_FRAME_LEN + 1, u32::MAX] {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.push(0x40); // a valid tag, irrelevant once length is bad
        match decode_bytes(&bytes) {
            Err(Error::Decode { .. }) => {}
            other => panic!("length {len} must reject typed, got {other:?}"),
        }
    }
}
