//! Length-prefixed binary wire protocol between gateway and bricks.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! +----------------+--------+-------------------+
//! | u32 LE length  | u8 tag | payload (length-1)|
//! +----------------+--------+-------------------+
//! ```
//!
//! The length counts the tag byte plus the payload, so an empty-payload
//! frame has length 1. All multi-byte integers in payloads are
//! little-endian. Variable-length byte fields are `u32 LE length`
//! followed by the bytes. Decoding is strict: unknown tags, truncated
//! payloads, trailing bytes, and frames above [`MAX_FRAME_LEN`] are all
//! typed [`Error::Decode`] values — never panics.

use std::io::{BufRead, Read, Write};

use crate::error::Error;

/// Upper bound on a frame's `length` field (64 MiB). A peer announcing
/// more than this is malformed or hostile; the connection is dropped
/// with a typed decode error rather than attempting the allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// `BufWriter` capacity for connection sockets. Deliberately small:
/// control frames coalesce into one syscall, while shard payloads
/// *exceed* the capacity, which makes `BufWriter` hand the gathered
/// header + payload write straight to the socket as a single `writev`
/// — no intermediate copy of the bulk bytes.
pub const IO_WRITE_BUF_LEN: usize = 4 * 1024;

/// `BufReader` capacity for connection sockets. Deliberately large
/// enough that a whole shard frame at the benchmark geometries arrives
/// in one blocking `read` wakeup instead of a header read plus a
/// second payload read — on the serving path a syscall costs more than
/// the buffer memcpy it avoids.
pub const IO_READ_BUF_LEN: usize = 128 * 1024;

/// Remote error codes carried by [`Frame::ErrorReply`].
pub mod reply_code {
    /// The requested shard is not stored on the brick.
    pub const SHARD_NOT_FOUND: u16 = 1;
    /// The request frame was not valid in the brick's current state.
    pub const BAD_REQUEST: u16 = 2;
    /// The brick is shutting down and not accepting work.
    pub const SHUTTING_DOWN: u16 = 3;
}

/// A protocol frame: every request a gateway or the rebuild coordinator
/// can send to a brick, and every response a brick can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Store one erasure-coded shard.
    PutShard {
        /// Object id the shard belongs to.
        object: u64,
        /// Shard position within the object's redundancy set.
        pos: u32,
        /// Shard bytes.
        data: Vec<u8>,
    },
    /// Fetch one shard.
    GetShard {
        /// Object id.
        object: u64,
        /// Shard position.
        pos: u32,
    },
    /// Remove one shard (used when a rebuild re-homes it).
    DeleteShard {
        /// Object id.
        object: u64,
        /// Shard position.
        pos: u32,
    },
    /// Liveness probe from the failure detector.
    Heartbeat {
        /// Monotonic probe sequence number.
        seq: u64,
    },
    /// Enumerate every `(object, pos)` shard the brick stores.
    ListShards,
    /// Fetch a shard on behalf of a rebuild (distinct tag so rebuild
    /// transfer traffic is separately visible in traces and metrics).
    RebuildFetch {
        /// Object id.
        object: u64,
        /// Shard position.
        pos: u32,
    },
    /// Ask the brick to exit cleanly (used by orderly test teardown;
    /// kill-9 campaigns never send it).
    Shutdown,
    /// Trace-context prefix: announces the caller's open span so the
    /// peer can parent its handler span across the process boundary.
    /// Fire-and-forget — the receiver applies it to the *next* request
    /// on the same connection and never replies to it.
    TraceCtx {
        /// Stable id of the sending process (see `nsr_obs::process_id_for`).
        proc: u64,
        /// Span id of the caller's currently open span.
        span: u64,
    },
    /// Ask the peer for its telemetry: a metrics snapshot plus a
    /// bounded trace delta starting at `cursor` (cursor-based, so
    /// repeated scrapes never replay lines).
    Scrape {
        /// Trace cursor from the previous [`Frame::ScrapeReply`]
        /// (0 on the first scrape).
        cursor: u64,
        /// Maximum trace lines to return in one reply.
        max_lines: u32,
    },
    /// Generic success response.
    Ok,
    /// Response carrying one shard's bytes.
    ShardData {
        /// Shard bytes.
        data: Vec<u8>,
    },
    /// Heartbeat response.
    HeartbeatAck {
        /// Echo of the probe's sequence number.
        seq: u64,
        /// The responding brick's id.
        brick_id: u32,
        /// Number of shards currently stored (cheap load signal).
        shards: u64,
        /// Metrics-snapshot sequence number: bumped on every scrape the
        /// brick serves, so heartbeats double as a scrape-staleness
        /// signal with no extra round trip.
        snap_seq: u64,
        /// Coarse health summary: total requests served (monotonic).
        load: u64,
    },
    /// Response to [`Frame::ListShards`].
    ShardList {
        /// Every stored `(object, pos)` pair.
        entries: Vec<(u64, u32)>,
    },
    /// Typed failure response.
    ErrorReply {
        /// Machine-readable code (see [`reply_code`]).
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// Response to [`Frame::Scrape`]: one process's telemetry.
    ScrapeReply {
        /// Stable id of the replying process.
        proc_id: u64,
        /// Snapshot sequence number (echoed on heartbeat acks).
        snap_seq: u64,
        /// Cursor to pass on the next scrape to resume the trace
        /// stream without replaying.
        next_cursor: u64,
        /// Human-readable process label (e.g. `brick-3`).
        label: String,
        /// Metrics snapshot, JSONL-rendered.
        metrics: Vec<u8>,
        /// Trace delta: rendered trace lines, newline-separated.
        trace: Vec<u8>,
        /// Process-specific status blob, JSONL-rendered (per-brick
        /// health from a gateway; empty from a brick).
        status: Vec<u8>,
    },
}

const TAG_PUT_SHARD: u8 = 0x01;
const TAG_GET_SHARD: u8 = 0x02;
const TAG_DELETE_SHARD: u8 = 0x03;
const TAG_HEARTBEAT: u8 = 0x04;
const TAG_LIST_SHARDS: u8 = 0x05;
const TAG_REBUILD_FETCH: u8 = 0x06;
const TAG_SHUTDOWN: u8 = 0x07;
const TAG_TRACE_CTX: u8 = 0x08;
const TAG_SCRAPE: u8 = 0x09;
const TAG_OK: u8 = 0x40;
const TAG_SHARD_DATA: u8 = 0x41;
const TAG_HEARTBEAT_ACK: u8 = 0x42;
const TAG_SHARD_LIST: u8 = 0x43;
const TAG_ERROR_REPLY: u8 = 0x44;
const TAG_SCRAPE_REPLY: u8 = 0x45;

impl Frame {
    /// Whether this frame is a request (gateway → brick).
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Frame::PutShard { .. }
                | Frame::GetShard { .. }
                | Frame::DeleteShard { .. }
                | Frame::Heartbeat { .. }
                | Frame::ListShards
                | Frame::RebuildFetch { .. }
                | Frame::Shutdown
                | Frame::TraceCtx { .. }
                | Frame::Scrape { .. }
        )
    }

    /// Short name for tracing.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::PutShard { .. } => "put_shard",
            Frame::GetShard { .. } => "get_shard",
            Frame::DeleteShard { .. } => "delete_shard",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::ListShards => "list_shards",
            Frame::RebuildFetch { .. } => "rebuild_fetch",
            Frame::Shutdown => "shutdown",
            Frame::TraceCtx { .. } => "trace_ctx",
            Frame::Scrape { .. } => "scrape",
            Frame::Ok => "ok",
            Frame::ShardData { .. } => "shard_data",
            Frame::HeartbeatAck { .. } => "heartbeat_ack",
            Frame::ShardList { .. } => "shard_list",
            Frame::ErrorReply { .. } => "error_reply",
            Frame::ScrapeReply { .. } => "scrape_reply",
        }
    }

    /// Serializes the frame into `[len][tag][payload]` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let tag = match self {
            Frame::PutShard { object, pos, data } => {
                put_u64(&mut payload, *object);
                put_u32(&mut payload, *pos);
                put_bytes(&mut payload, data);
                TAG_PUT_SHARD
            }
            Frame::GetShard { object, pos } => {
                put_u64(&mut payload, *object);
                put_u32(&mut payload, *pos);
                TAG_GET_SHARD
            }
            Frame::DeleteShard { object, pos } => {
                put_u64(&mut payload, *object);
                put_u32(&mut payload, *pos);
                TAG_DELETE_SHARD
            }
            Frame::Heartbeat { seq } => {
                put_u64(&mut payload, *seq);
                TAG_HEARTBEAT
            }
            Frame::ListShards => TAG_LIST_SHARDS,
            Frame::RebuildFetch { object, pos } => {
                put_u64(&mut payload, *object);
                put_u32(&mut payload, *pos);
                TAG_REBUILD_FETCH
            }
            Frame::Shutdown => TAG_SHUTDOWN,
            Frame::TraceCtx { proc, span } => {
                put_u64(&mut payload, *proc);
                put_u64(&mut payload, *span);
                TAG_TRACE_CTX
            }
            Frame::Scrape { cursor, max_lines } => {
                put_u64(&mut payload, *cursor);
                put_u32(&mut payload, *max_lines);
                TAG_SCRAPE
            }
            Frame::Ok => TAG_OK,
            Frame::ShardData { data } => {
                put_bytes(&mut payload, data);
                TAG_SHARD_DATA
            }
            Frame::HeartbeatAck {
                seq,
                brick_id,
                shards,
                snap_seq,
                load,
            } => {
                put_u64(&mut payload, *seq);
                put_u32(&mut payload, *brick_id);
                put_u64(&mut payload, *shards);
                put_u64(&mut payload, *snap_seq);
                put_u64(&mut payload, *load);
                TAG_HEARTBEAT_ACK
            }
            Frame::ShardList { entries } => {
                put_u32(&mut payload, entries.len() as u32);
                for (object, pos) in entries {
                    put_u64(&mut payload, *object);
                    put_u32(&mut payload, *pos);
                }
                TAG_SHARD_LIST
            }
            Frame::ErrorReply { code, detail } => {
                payload.extend_from_slice(&code.to_le_bytes());
                put_bytes(&mut payload, detail.as_bytes());
                TAG_ERROR_REPLY
            }
            Frame::ScrapeReply {
                proc_id,
                snap_seq,
                next_cursor,
                label,
                metrics,
                trace,
                status,
            } => {
                put_u64(&mut payload, *proc_id);
                put_u64(&mut payload, *snap_seq);
                put_u64(&mut payload, *next_cursor);
                put_bytes(&mut payload, label.as_bytes());
                put_bytes(&mut payload, metrics);
                put_bytes(&mut payload, trace);
                put_bytes(&mut payload, status);
                TAG_SCRAPE_REPLY
            }
        };
        let len = 1 + payload.len() as u32;
        let mut out = Vec::with_capacity(4 + len as usize);
        out.extend_from_slice(&len.to_le_bytes());
        out.push(tag);
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a frame body (`tag` + `payload`, without the length
    /// prefix). The entire body must be consumed; trailing bytes are a
    /// decode error.
    pub fn decode(body: &[u8]) -> Result<Frame, Error> {
        let (&tag, payload) = body.split_first().ok_or_else(|| Error::Decode {
            what: "empty frame body (length field was 0)".to_string(),
        })?;
        let mut cur = Cursor {
            buf: payload,
            off: 0,
        };
        let frame = match tag {
            TAG_PUT_SHARD => Frame::PutShard {
                object: cur.u64()?,
                pos: cur.u32()?,
                data: cur.bytes()?,
            },
            TAG_GET_SHARD => Frame::GetShard {
                object: cur.u64()?,
                pos: cur.u32()?,
            },
            TAG_DELETE_SHARD => Frame::DeleteShard {
                object: cur.u64()?,
                pos: cur.u32()?,
            },
            TAG_HEARTBEAT => Frame::Heartbeat { seq: cur.u64()? },
            TAG_LIST_SHARDS => Frame::ListShards,
            TAG_REBUILD_FETCH => Frame::RebuildFetch {
                object: cur.u64()?,
                pos: cur.u32()?,
            },
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_TRACE_CTX => Frame::TraceCtx {
                proc: cur.u64()?,
                span: cur.u64()?,
            },
            TAG_SCRAPE => Frame::Scrape {
                cursor: cur.u64()?,
                max_lines: cur.u32()?,
            },
            TAG_OK => Frame::Ok,
            TAG_SHARD_DATA => Frame::ShardData { data: cur.bytes()? },
            TAG_HEARTBEAT_ACK => Frame::HeartbeatAck {
                seq: cur.u64()?,
                brick_id: cur.u32()?,
                shards: cur.u64()?,
                snap_seq: cur.u64()?,
                load: cur.u64()?,
            },
            TAG_SHARD_LIST => {
                let n = cur.u32()? as usize;
                // Each entry is 12 bytes; reject counts the remaining
                // payload cannot possibly hold before allocating.
                if n > cur.remaining() / 12 {
                    return Err(Error::Decode {
                        what: format!(
                            "shard list claims {n} entries but only {} payload bytes remain",
                            cur.remaining()
                        ),
                    });
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((cur.u64()?, cur.u32()?));
                }
                Frame::ShardList { entries }
            }
            TAG_ERROR_REPLY => {
                let code = u16::from_le_bytes(cur.take(2)?.try_into().expect("len checked"));
                let detail_bytes = cur.bytes()?;
                let detail = String::from_utf8(detail_bytes).map_err(|_| Error::Decode {
                    what: "error reply detail is not valid UTF-8".to_string(),
                })?;
                Frame::ErrorReply { code, detail }
            }
            TAG_SCRAPE_REPLY => {
                let proc_id = cur.u64()?;
                let snap_seq = cur.u64()?;
                let next_cursor = cur.u64()?;
                let label_bytes = cur.bytes()?;
                let label = String::from_utf8(label_bytes).map_err(|_| Error::Decode {
                    what: "scrape reply label is not valid UTF-8".to_string(),
                })?;
                Frame::ScrapeReply {
                    proc_id,
                    snap_seq,
                    next_cursor,
                    label,
                    metrics: cur.bytes()?,
                    trace: cur.bytes()?,
                    status: cur.bytes()?,
                }
            }
            other => {
                return Err(Error::Decode {
                    what: format!("unknown frame tag 0x{other:02x}"),
                })
            }
        };
        if cur.remaining() != 0 {
            return Err(Error::Decode {
                what: format!(
                    "{} trailing byte(s) after {} frame",
                    cur.remaining(),
                    frame.name()
                ),
            });
        }
        Ok(frame)
    }
}

/// Writes one frame to `w`, flushing it onto the wire.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), Error> {
    let bytes = frame.encode();
    w.write_all(&bytes)
        .and_then(|_| w.flush())
        .map_err(|e| Error::from_io("write_frame", &e))
}

/// Writes a [`Frame::Ok`] reply. The encoding is a fixed five bytes, so
/// the hot put path on the brick acknowledges each shard without the
/// heap allocation `Frame::encode` would make. Byte-for-byte identical
/// on the wire to `write_frame(&Frame::Ok)`.
pub fn write_ok(w: &mut impl Write) -> Result<(), Error> {
    const OK_BYTES: [u8; 5] = [1, 0, 0, 0, TAG_OK];
    w.write_all(&OK_BYTES)
        .and_then(|_| w.flush())
        .map_err(|e| Error::from_io("write_frame", &e))
}

/// Writes a [`Frame::PutShard`] straight from borrowed shard bytes —
/// the hot-path encoder: header on the stack, payload written from the
/// caller's slice, no intermediate `Frame` or `Vec`. Byte-for-byte
/// identical on the wire to `write_frame(&Frame::PutShard { .. })`.
pub fn write_put_shard(
    w: &mut impl Write,
    object: u64,
    pos: u32,
    data: &[u8],
) -> Result<(), Error> {
    let body_len = 1 + 8 + 4 + 4 + data.len();
    if body_len > MAX_FRAME_LEN as usize {
        return Err(Error::Protocol {
            what: format!(
                "put_shard payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap",
                data.len()
            ),
        });
    }
    let mut header = [0u8; 21];
    header[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    header[4] = TAG_PUT_SHARD;
    header[5..13].copy_from_slice(&object.to_le_bytes());
    header[13..17].copy_from_slice(&pos.to_le_bytes());
    header[17..21].copy_from_slice(&(data.len() as u32).to_le_bytes());
    write_all_vectored2(w, &header, data)
        .and_then(|_| w.flush())
        .map_err(|e| Error::from_io("write_frame", &e))
}

/// Writes a [`Frame::ShardData`] reply straight from borrowed shard
/// bytes — the brick-side counterpart of [`write_put_shard`].
pub fn write_shard_data(w: &mut impl Write, data: &[u8]) -> Result<(), Error> {
    let body_len = 1 + 4 + data.len();
    if body_len > MAX_FRAME_LEN as usize {
        return Err(Error::Protocol {
            what: format!(
                "shard_data payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap",
                data.len()
            ),
        });
    }
    let mut header = [0u8; 9];
    header[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    header[4] = TAG_SHARD_DATA;
    header[5..9].copy_from_slice(&(data.len() as u32).to_le_bytes());
    write_all_vectored2(w, &header, data)
        .and_then(|_| w.flush())
        .map_err(|e| Error::from_io("write_frame", &e))
}

/// Writes `a` then `b` as one gathered write where the underlying
/// stream supports it. For a `BufWriter` around a `TcpStream` with the
/// combined length at or above the buffer capacity, this reaches the
/// socket as a single `writev` — one syscall, no intermediate copy of
/// the payload. Writers without real vectored support fall back to the
/// looping behavior of `write_all` on each slice.
fn write_all_vectored2(w: &mut impl Write, a: &[u8], b: &[u8]) -> std::io::Result<()> {
    let total = a.len() + b.len();
    let mut off = 0;
    while off < total {
        let n = if off < a.len() {
            w.write_vectored(&[std::io::IoSlice::new(&a[off..]), std::io::IoSlice::new(b)])?
        } else {
            w.write(&b[off - a.len()..])?
        };
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole frame",
            ));
        }
        off += n;
    }
    Ok(())
}

/// Reads one frame from `r`. A clean EOF before any length byte returns
/// `Ok(None)` (peer closed between frames); EOF mid-frame is a decode
/// error.
pub fn read_frame(r: &mut impl BufRead) -> Result<Option<Frame>, Error> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
        ReadOutcome::Partial(got) => {
            return Err(Error::Decode {
                what: format!("connection closed after {got} of 4 length-prefix bytes"),
            })
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(Error::Decode {
            what: "frame length 0 (a frame always carries a tag byte)".to_string(),
        });
    }
    if len > MAX_FRAME_LEN {
        return Err(Error::Decode {
            what: format!("frame length {len} exceeds maximum {MAX_FRAME_LEN}"),
        });
    }
    let len = len as usize;
    let mut tag = [0u8; 1];
    read_body(r, &mut tag, len)?;
    if len == 1 {
        // Tag-only frames (`Ok`, the hot put acknowledgement) decode
        // straight from the stack — no per-reply heap allocation.
        return Frame::decode(&tag).map(Some);
    }
    // Bulk fast path for the two shard-carrying frames: read the fixed
    // header, then the payload straight into an exactly-sized buffer —
    // no oversized allocation and no memmove to strip the header off.
    match tag[0] {
        TAG_PUT_SHARD if len >= 17 => {
            let mut hdr = [0u8; 16];
            read_body(r, &mut hdr, len)?;
            let dlen = u32::from_le_bytes(hdr[12..16].try_into().expect("len checked")) as usize;
            if dlen == len - 17 {
                let data = read_bulk(r, dlen, len)?;
                return Ok(Some(Frame::PutShard {
                    object: u64::from_le_bytes(hdr[..8].try_into().expect("len checked")),
                    pos: u32::from_le_bytes(hdr[8..12].try_into().expect("len checked")),
                    data,
                }));
            }
            // The byte-count field disagrees with the frame length:
            // drain the rest of the body and let the strict decoder
            // report it exactly as it always has.
            let mut body = vec![0u8; len];
            body[0] = tag[0];
            body[1..17].copy_from_slice(&hdr);
            read_body(r, &mut body[17..], len)?;
            return Frame::decode(&body).map(Some);
        }
        TAG_SHARD_DATA if len >= 5 => {
            let mut hdr = [0u8; 4];
            read_body(r, &mut hdr, len)?;
            let dlen = u32::from_le_bytes(hdr) as usize;
            if dlen == len - 5 {
                return Ok(Some(Frame::ShardData {
                    data: read_bulk(r, dlen, len)?,
                }));
            }
            let mut body = vec![0u8; len];
            body[0] = tag[0];
            body[1..5].copy_from_slice(&hdr);
            read_body(r, &mut body[5..], len)?;
            return Frame::decode(&body).map(Some);
        }
        _ => {}
    }
    let mut body = vec![0u8; len];
    body[0] = tag[0];
    read_body(r, &mut body[1..], len)?;
    Frame::decode(&body).map(Some)
}

/// Reads a `dlen`-byte shard payload by copying straight out of the
/// reader's internal buffer — unlike `read_exact` into `vec![0; dlen]`,
/// the destination is never zero-filled first, which saves a full
/// payload-sized memset on every shard that crosses the wire.
fn read_bulk(r: &mut impl BufRead, dlen: usize, len: usize) -> Result<Vec<u8>, Error> {
    let mut data = Vec::with_capacity(dlen);
    while data.len() < dlen {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::from_io("read_frame", &e)),
        };
        if chunk.is_empty() {
            return Err(Error::Decode {
                what: format!("connection closed mid-frame (expected {len} body bytes)"),
            });
        }
        let take = chunk.len().min(dlen - data.len());
        data.extend_from_slice(&chunk[..take]);
        r.consume(take);
    }
    Ok(data)
}

/// Reads `buf` fully or reports the mid-frame truncation error for a
/// frame whose body claimed `len` bytes.
fn read_body(r: &mut impl Read, buf: &mut [u8], len: usize) -> Result<(), Error> {
    match read_exact_or_eof(r, buf)? {
        ReadOutcome::Full => Ok(()),
        ReadOutcome::Eof | ReadOutcome::Partial(_) => Err(Error::Decode {
            what: format!("connection closed mid-frame (expected {len} body bytes)"),
        }),
    }
}

enum ReadOutcome {
    Full,
    Eof,
    Partial(usize),
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(Error::from_io("read_frame", &e)),
        }
    }
    Ok(ReadOutcome::Full)
}

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.off
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::Decode {
                what: format!(
                    "payload truncated: needed {n} bytes, {} remain",
                    self.remaining()
                ),
            });
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("len checked"),
        ))
    }

    fn u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("len checked"),
        ))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, Error> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::PutShard {
                object: 7,
                pos: 3,
                data: vec![1, 2, 3, 4, 5],
            },
            Frame::PutShard {
                object: u64::MAX,
                pos: u32::MAX,
                data: vec![],
            },
            Frame::GetShard { object: 9, pos: 0 },
            Frame::DeleteShard { object: 1, pos: 2 },
            Frame::Heartbeat { seq: 42 },
            Frame::ListShards,
            Frame::RebuildFetch { object: 5, pos: 1 },
            Frame::Shutdown,
            Frame::TraceCtx {
                proc: 0x1234_5678_9abc,
                span: 77,
            },
            Frame::Scrape {
                cursor: 4096,
                max_lines: 256,
            },
            Frame::Ok,
            Frame::ShardData {
                data: vec![0xff; 1024],
            },
            Frame::HeartbeatAck {
                seq: 42,
                brick_id: 3,
                shards: 120,
                snap_seq: 9,
                load: 5500,
            },
            Frame::ShardList {
                entries: vec![(1, 0), (1, 1), (2, 4)],
            },
            Frame::ShardList { entries: vec![] },
            Frame::ErrorReply {
                code: reply_code::SHARD_NOT_FOUND,
                detail: "obj9 pos0".to_string(),
            },
            Frame::ScrapeReply {
                proc_id: 0xdead_beef,
                snap_seq: 3,
                next_cursor: 1201,
                label: "brick-2".to_string(),
                metrics: b"{\"kind\":\"counter\"}\n".to_vec(),
                trace: b"{\"kind\":\"span\"}\n".to_vec(),
                status: vec![],
            },
            Frame::ScrapeReply {
                proc_id: 0,
                snap_seq: 0,
                next_cursor: 0,
                label: String::new(),
                metrics: vec![],
                trace: vec![],
                status: vec![],
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for frame in sample_frames() {
            let enc = frame.encode();
            let mut cursor = std::io::Cursor::new(enc);
            let back = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn bulk_read_path_rejects_lying_byte_counts() {
        // A shard frame whose inner byte-count field disagrees with the
        // frame length must fail through the strict decoder, not be
        // silently reshaped by the bulk fast path.
        let mut lying = Frame::ShardData { data: vec![9; 8] }.encode();
        lying[5] = 200; // claims 200 payload bytes, 8 present
        let mut cursor = std::io::Cursor::new(lying);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Decode { .. })));

        let mut lying = Frame::PutShard {
            object: 3,
            pos: 1,
            data: vec![7; 8],
        }
        .encode();
        lying[17] = 200;
        let mut cursor = std::io::Cursor::new(lying);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Decode { .. })));

        // Truncation inside a bulk payload is the usual mid-frame error.
        let mut enc = Frame::ShardData { data: vec![9; 64] }.encode();
        enc.truncate(enc.len() - 10);
        let mut cursor = std::io::Cursor::new(enc);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Decode { .. })));
    }

    #[test]
    fn specialized_writers_match_frame_encode() {
        for data in [vec![], vec![7u8], vec![0xabu8; 4096]] {
            let frame = Frame::PutShard {
                object: 123,
                pos: 4,
                data: data.clone(),
            };
            let mut fast = Vec::new();
            write_put_shard(&mut fast, 123, 4, &data).unwrap();
            assert_eq!(fast, frame.encode());

            let frame = Frame::ShardData { data: data.clone() };
            let mut fast = Vec::new();
            write_shard_data(&mut fast, &data).unwrap();
            assert_eq!(fast, frame.encode());
        }

        let mut fast = Vec::new();
        write_ok(&mut fast).unwrap();
        assert_eq!(fast, Frame::Ok.encode());
    }

    #[test]
    fn clean_eof_is_none() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.push(TAG_OK);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Decode { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = vec![TAG_HEARTBEAT];
        body.extend_from_slice(&42u64.to_le_bytes());
        body.push(0xaa);
        assert!(matches!(Frame::decode(&body), Err(Error::Decode { .. })));
    }

    #[test]
    fn shard_list_length_lie_rejected() {
        let mut body = vec![TAG_SHARD_LIST];
        body.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(Frame::decode(&body), Err(Error::Decode { .. })));
    }

    #[test]
    fn truncated_trace_ctx_rejected() {
        // 8 of the 16 payload bytes: the span id is missing.
        let mut body = vec![TAG_TRACE_CTX];
        body.extend_from_slice(&7u64.to_le_bytes());
        assert!(matches!(Frame::decode(&body), Err(Error::Decode { .. })));
        // Trailing garbage after a complete context is equally fatal.
        let mut body = vec![TAG_TRACE_CTX];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&9u64.to_le_bytes());
        body.push(0x55);
        assert!(matches!(Frame::decode(&body), Err(Error::Decode { .. })));
    }

    #[test]
    fn truncated_scrape_reply_rejected() {
        // Cut a valid scrape reply body at every length short of whole:
        // each prefix must be a typed decode error, never a panic.
        let full = Frame::ScrapeReply {
            proc_id: 11,
            snap_seq: 2,
            next_cursor: 88,
            label: "gw".to_string(),
            metrics: vec![1, 2, 3],
            trace: vec![4, 5],
            status: vec![6],
        }
        .encode();
        let body = &full[4..]; // strip length prefix
        for cut in 1..body.len() {
            assert!(
                matches!(Frame::decode(&body[..cut]), Err(Error::Decode { .. })),
                "prefix of {cut} bytes decoded"
            );
        }
        assert!(Frame::decode(body).is_ok());
    }

    #[test]
    fn scrape_reply_length_lie_rejected() {
        // The label length field claims more bytes than the payload holds.
        let mut body = vec![TAG_SCRAPE_REPLY];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        body.extend_from_slice(&3u64.to_le_bytes());
        body.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(Frame::decode(&body), Err(Error::Decode { .. })));
    }
}
