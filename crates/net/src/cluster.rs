//! The kill-9 campaign harness behind `nsr cluster-inject`: spawns N
//! brick daemons as child processes, drives a gateway against them,
//! kill-9s victims on a seeded [`FaultPlan`] schedule (plan hours scaled
//! onto a wall-clock axis), and verifies the erasure contract on real
//! processes — zero data loss at or below `t` concurrent failures,
//! correct *typed* loss above `t`.
//!
//! Determinism contract: the campaign's verdict and loss signatures are
//! a pure function of `(plan, seed, bricks, objects)`. Everything that
//! could leak wall-clock timing into them is kept out: all layout-
//! affecting puts happen before the first kill for above-`t` plans,
//! victims are drawn from a seeded RNG, and timing measurements go to
//! `info` lines which are explicitly excluded from the replay
//! comparison.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nsr_obs::{Json, Span};
use nsr_rng::rngs::StdRng;
use nsr_rng::{Rng, SeedableRng};
use nsr_sim::faultinject::{FaultKind, FaultPlan};

use crate::clock::WallClock;
use crate::detector::{DetectorConfig, Health, Transition};
use crate::error::Error;
use crate::gateway::{Gateway, GatewayConfig, ReadMode, RetryPolicy};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Brick daemons to spawn (≥ 4).
    pub bricks: usize,
    /// Plan name: `kill9-single` or `kill9-burst`.
    pub plan: String,
    /// Seed for victim selection, object contents and retry jitter.
    pub seed: u64,
    /// Objects written in the load phase.
    pub objects: usize,
    /// Size of each object.
    pub object_bytes: usize,
    /// Path to the `nsr` binary to spawn bricks from.
    pub brick_exe: PathBuf,
    /// Wall milliseconds per plan hour (schedule compression).
    pub ms_per_hour: u64,
    /// Connections per brick in the gateway pool.
    pub pool_size: usize,
    /// Verify-phase reader threads. Verify gets always run on spawned
    /// workers (even with one) so their spans have identical parentage
    /// at every worker count — part of the replay-determinism contract.
    pub workers: usize,
    /// Run bricks with tracing enabled and harvest their telemetry over
    /// the scrape path: victims are scraped immediately before each
    /// kill (kill -9 loses everything the scrape hasn't shipped) and
    /// every live brick at campaign end, yielding one JSONL part per
    /// brick *process* in [`CampaignOutcome::brick_parts`].
    pub obs: bool,
    /// Keep writing objects through the fault window on below-`t`
    /// plans. `false` freezes the object set before the first kill so
    /// the campaign's span tree is a pure function of the seed — the
    /// cross-process trace-determinism tests rely on it.
    pub fault_window_writes: bool,
}

impl ClusterConfig {
    /// Defaults for `bricks` bricks running `plan` under `seed`,
    /// spawning bricks from `brick_exe`.
    pub fn new(bricks: usize, plan: &str, seed: u64, brick_exe: PathBuf) -> Self {
        ClusterConfig {
            bricks,
            plan: plan.to_string(),
            seed,
            objects: 24,
            object_bytes: 4096,
            brick_exe,
            ms_per_hour: 100,
            pool_size: 2,
            workers: 1,
            obs: false,
            fault_window_writes: true,
        }
    }

    /// Erasure geometry for this brick count: `(k, t)` with `k + t + 1
    /// ≤ bricks` so at least one spare always exists for rebuild.
    pub fn geometry(&self) -> (usize, usize) {
        let t = if self.bricks >= 6 { 2 } else { 1 };
        let k = (self.bricks - t - 2).max(2);
        (k, t)
    }
}

/// Result of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Deterministic lines: identical across runs with the same
    /// `(plan, seed, bricks, objects)`. The first is the campaign
    /// header, then `verdict=…`, then one sorted `loss …` signature per
    /// lost object.
    pub verdict_lines: Vec<String>,
    /// Timing and progress stats — informational, excluded from replay
    /// comparison.
    pub info_lines: Vec<String>,
    /// Whether any committed object was lost.
    pub any_loss: bool,
    /// Detection latencies (seconds) observed for kill-9'd bricks.
    pub detection_latencies_s: Vec<f64>,
    /// One `(label, jsonl)` telemetry part per brick *process* when
    /// [`ClusterConfig::obs`] is set: a synthesized meta line followed
    /// by the trace lines harvested over the scrape path. A brick id
    /// that was killed and restarted contributes two parts with
    /// generational labels (`brick-3`, then `brick-3-r1`).
    pub brick_parts: Vec<(String, String)>,
}

impl CampaignOutcome {
    /// All lines in display order, `info` lines prefixed so consumers
    /// comparing replays can filter on `^(campaign|verdict|loss)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.verdict_lines {
            out.push_str(l);
            out.push('\n');
        }
        for l in &self.info_lines {
            out.push_str("info ");
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

struct BrickProc {
    addr: SocketAddr,
    child: Child,
    // Held open so the child never blocks on a closed stdout pipe.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl BrickProc {
    fn kill9(&mut self) {
        // On Unix, `Child::kill` delivers SIGKILL — the un-trappable
        // kill-9 the campaign is named for.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Kills every remaining child on scope exit so an assertion failure
/// never leaks brick processes.
struct Fleet {
    procs: Vec<Option<BrickProc>>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for p in self.procs.iter_mut().flatten() {
            p.kill9();
        }
    }
}

impl Fleet {
    fn addr(&self, id: usize) -> SocketAddr {
        self.procs[id].as_ref().expect("brick alive").addr
    }
}

fn spawn_brick(exe: &std::path::Path, id: u32, label: Option<&str>) -> Result<BrickProc, Error> {
    let mut args = vec![
        "brick".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--id".to_string(),
        id.to_string(),
    ];
    if let Some(label) = label {
        args.push("--obs".to_string());
        args.push("--label".to_string());
        args.push(label.to_string());
    }
    let mut child = Command::new(exe)
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| Error::Io {
            op: "spawn_brick",
            detail: format!("{}: {}", exe.display(), e.kind()),
        })?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| Error::Io {
        op: "spawn_brick",
        detail: format!("reading announce line: {}", e.kind()),
    })?;
    let addr = line
        .strip_prefix("LISTENING ")
        .and_then(|s| s.trim().parse::<SocketAddr>().ok())
        .ok_or_else(|| Error::Protocol {
            what: format!(
                "brick {id} announced `{}`, expected `LISTENING <addr>`",
                line.trim()
            ),
        })?;
    Ok(BrickProc {
        addr,
        child,
        _stdout: reader,
    })
}

/// Generational brick label — the process identity behind trace
/// stitching. Generation 0 is `brick-{id}`; every restart of the same
/// brick id gets `brick-{id}-r{gen}`, so a killed process and its
/// replacement never collapse into one node of the merged causal tree.
fn brick_label(id: u32, generation: u32) -> String {
    if generation == 0 {
        format!("brick-{id}")
    } else {
        format!("brick-{id}-r{generation}")
    }
}

/// Renders one harvested telemetry entry as a standalone JSONL trace
/// part: bricks stream raw trace lines over the scrape path (never a
/// finished dump with its own header), so the meta line is synthesized
/// here from the registry entry.
fn render_brick_part(t: &crate::gateway::BrickTelemetry) -> String {
    let mut out = Json::obj([
        ("schema", Json::Str("nsr-obs/v1".to_string())),
        ("kind", Json::Str("meta".to_string())),
        ("source", Json::Str("cluster-inject".to_string())),
        ("proc", Json::Str(t.label.clone())),
        ("proc_id", Json::Num(t.proc_id as f64)),
    ])
    .render_compact();
    out.push('\n');
    for line in &t.trace_lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Deterministic per-object payload so verification needs no stored
/// copy of the data.
fn object_payload(seed: u64, object: u64, bytes: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ object.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..bytes).map(|_| rng.random::<u8>()).collect()
}

/// The named live plans. Times are plan-hours; the campaign compresses
/// them by [`ClusterConfig::ms_per_hour`].
fn live_plan(name: &str) -> Result<FaultPlan, Error> {
    let plan = match name {
        // One kill while puts are in flight: below t, must be lossless.
        "kill9-single" => FaultPlan::builder()
            .at(1.0, FaultKind::NodeCrash)
            .horizon_hours(4.0)
            .build(),
        // Three near-simultaneous kills (spacing far below the
        // detection threshold): above t for the 6-brick geometry, must
        // produce typed loss on exactly the stripes that lost > t
        // shards.
        "kill9-burst" => FaultPlan::builder()
            .burst(1.0, 3, 0.001)
            .horizon_hours(4.0)
            .build(),
        other => {
            return Err(Error::InvalidConfig {
                what: format!("unknown cluster plan `{other}` (want kill9-single or kill9-burst)"),
            })
        }
    };
    plan.map_err(|e| Error::InvalidConfig {
        what: format!("plan construction failed: {e}"),
    })
}

/// Runs one kill-9 campaign end to end. See the module docs for the
/// phase structure and the determinism contract.
pub fn run_campaign(cfg: &ClusterConfig) -> Result<CampaignOutcome, Error> {
    let mut span = Span::enter("net.cluster.campaign");
    span.field("plan", {
        let plan = cfg.plan.clone();
        move || Json::Str(plan)
    });
    span.field("bricks", || Json::Num(cfg.bricks as f64));
    span.field("seed", || Json::Num(cfg.seed as f64));
    if cfg.bricks < 4 {
        return Err(Error::InvalidConfig {
            what: format!("need at least 4 bricks, got {}", cfg.bricks),
        });
    }
    let (k, t) = cfg.geometry();
    let plan = live_plan(&cfg.plan)?;
    let schedule: Vec<(f64, FaultKind)> = plan
        .scheduled_injections()
        .into_iter()
        .filter(|(_, kind)| *kind == FaultKind::NodeCrash)
        .collect();
    let started = Instant::now();
    let mut info = Vec::new();

    // --- Spawn phase -----------------------------------------------------
    // Per-brick restart generation, feeding the generational labels
    // that keep a killed process and its replacement distinct in the
    // merged trace.
    let mut generations = vec![0u32; cfg.bricks];
    let mut brick_parts: Vec<(String, String)> = Vec::new();
    let mut fleet = Fleet {
        procs: (0..cfg.bricks as u32)
            .map(|id| {
                let label = cfg.obs.then(|| brick_label(id, 0));
                spawn_brick(&cfg.brick_exe, id, label.as_deref()).map(Some)
            })
            .collect::<Result<Vec<_>, Error>>()?,
    };
    let addrs: Vec<SocketAddr> = (0..cfg.bricks).map(|i| fleet.addr(i)).collect();
    info.push(format!(
        "spawned {} bricks in {:?}",
        cfg.bricks,
        started.elapsed()
    ));

    // Fast detector pacing so the whole campaign stays in CI budget:
    // 20 ms probes, dead after ~140 ms of silence.
    let mut gw_cfg = GatewayConfig::new(k, t);
    gw_cfg.timeout = Duration::from_millis(250);
    gw_cfg.retry = RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
    };
    gw_cfg.detector = DetectorConfig {
        suspect_phi: 1.0,
        dead_phi: 3.0,
        initial_interval_s: 0.02,
        interval_alpha: 0.2,
    };
    gw_cfg.jitter_seed = cfg.seed;
    gw_cfg.pool_size = cfg.pool_size;
    let gw = Gateway::with_clock(addrs, gw_cfg, Arc::new(WallClock::new()))?;
    let mut transitions: Vec<Transition> = Vec::new();
    let pump = |gw: &Gateway, transitions: &mut Vec<Transition>| {
        transitions.extend(gw.pump_heartbeats());
        std::thread::sleep(Duration::from_millis(20));
    };
    for _ in 0..8 {
        pump(&gw, &mut transitions);
    }

    // --- Load phase ------------------------------------------------------
    let above_t = schedule.len() > t;
    for id in 0..cfg.objects as u64 {
        gw.put(id, &object_payload(cfg.seed, id, cfg.object_bytes))?;
    }
    info.push(format!(
        "loaded {} objects in {:?}",
        cfg.objects,
        started.elapsed()
    ));

    // --- Fault phase -----------------------------------------------------
    // Victims drawn without replacement from a seeded RNG. For plans
    // above t the layout set is frozen (no concurrent puts) so the loss
    // set replays exactly; at or below t, puts stay active through the
    // kill to prove the lossless path under live writes.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut alive: Vec<u32> = (0..cfg.bricks as u32).collect();
    let mut victims: Vec<u32> = Vec::new();
    for _ in &schedule {
        let pick = rng.random_range_usize(0, alive.len());
        victims.push(alive.remove(pick));
    }
    // Fault-window writes are wall-clock paced (the while loop below
    // spins until the schedule says kill), so their count — and hence
    // the span tree — varies run to run. Replay-determinism campaigns
    // turn them off via the config flag.
    let live_writes = !above_t && cfg.fault_window_writes;
    let fault_t0 = Instant::now();
    let mut next_extra_object = 1_000_000u64;
    let mut killed_at: Vec<(u32, Instant)> = Vec::new();
    for (i, (hours, _)) in schedule.iter().enumerate() {
        let due = Duration::from_millis((hours * cfg.ms_per_hour as f64) as u64);
        while fault_t0.elapsed() < due {
            if live_writes {
                gw.put(
                    next_extra_object,
                    &object_payload(cfg.seed, next_extra_object, cfg.object_bytes),
                )?;
                next_extra_object += 1;
            }
            pump(&gw, &mut transitions);
        }
        let victim = victims[i];
        if cfg.obs {
            // Last-chance harvest: kill -9 destroys everything the
            // scrape path hasn't shipped, and the registry entry must
            // not survive to pollute the brick id's next incarnation.
            gw.collect_scrapes(1 << 20);
            if let Some(t) = gw.take_collected(victim) {
                brick_parts.push((t.label.clone(), render_brick_part(&t)));
            }
        }
        fleet.procs[victim as usize]
            .as_mut()
            .expect("alive")
            .kill9();
        killed_at.push((victim, Instant::now()));
        nsr_obs::trace::event("net.cluster.kill9", || {
            vec![("brick", Json::Num(victim as f64))]
        });
        if live_writes {
            // Keep writing straight through the failure window.
            gw.put(
                next_extra_object,
                &object_payload(cfg.seed, next_extra_object, cfg.object_bytes),
            )?;
            next_extra_object += 1;
        }
    }
    info.push(format!("killed bricks {victims:?}"));

    // --- Settle phase: wait for detection --------------------------------
    let victim_set: BTreeSet<u32> = victims.iter().copied().collect();
    let settle_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        pump(&gw, &mut transitions);
        let all_dead = gw
            .health_summary()
            .iter()
            .filter(|(id, _)| victim_set.contains(id))
            .all(|&(_, h)| matches!(h, Health::Dead | Health::Rebuilding));
        if all_dead {
            break;
        }
        if Instant::now() > settle_deadline {
            return Err(Error::Protocol {
                what: format!(
                    "victims {victims:?} not declared dead within 10 s: {:?}",
                    gw.health_summary()
                ),
            });
        }
    }
    let detection_latencies_s: Vec<f64> = transitions
        .iter()
        .filter(|tr| tr.to == Health::Dead && victim_set.contains(&tr.brick))
        .filter_map(|tr| tr.detection_latency_s)
        .collect();
    info.push(format!(
        "detection latencies {:?}",
        detection_latencies_s
            .iter()
            .map(|s| format!("{:.0}ms", s * 1e3))
            .collect::<Vec<_>>()
    ));

    // Expected loss, frozen at detection time: objects with more than t
    // shards on victim bricks. (For below-t plans this is empty by
    // construction.)
    let mut expected_lost: Vec<u64> = Vec::new();
    for id in gw.object_ids() {
        let overlap = gw
            .object_layout(id)
            .expect("committed object")
            .iter()
            .filter(|b| victim_set.contains(b))
            .count();
        if overlap > t {
            expected_lost.push(id);
        }
    }

    // --- Rebuild phase ---------------------------------------------------
    let rebuild_t0 = Instant::now();
    let mut total_moved = 0u64;
    let mut total_bytes = 0u64;
    let deferred;
    let mut attempts = 0;
    loop {
        attempts += 1;
        match gw.repair_all() {
            Ok(report) => {
                total_moved += report.shards_moved;
                total_bytes += report.bytes_moved;
                deferred = report.deferred_objects.len();
                break;
            }
            Err(Error::RebuildInterrupted { .. }) if attempts < 16 => {
                // A source died mid-transfer; let detection catch up and
                // resume from the per-shard checkpoint.
                pump(&gw, &mut transitions);
            }
            Err(e) => return Err(e),
        }
    }
    info.push(format!(
        "rebuild moved {total_moved} shards ({total_bytes} B) in {:?}, {deferred} object(s) deferred (no spare)",
        rebuild_t0.elapsed()
    ));

    // --- Rejoin phase: restart victims on fresh ports --------------------
    for &victim in &victims {
        let label = if cfg.obs {
            generations[victim as usize] += 1;
            Some(brick_label(victim, generations[victim as usize]))
        } else {
            None
        };
        let proc = spawn_brick(&cfg.brick_exe, victim, label.as_deref())?;
        gw.set_brick_addr(victim, proc.addr);
        fleet.procs[victim as usize] = Some(proc);
        nsr_obs::trace::event("net.cluster.restart", || {
            vec![("brick", Json::Num(victim as f64))]
        });
    }
    let rejoin_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        pump(&gw, &mut transitions);
        gw.adopt_rejoined();
        let all_healthy = gw
            .health_summary()
            .iter()
            .filter(|(id, _)| victim_set.contains(id))
            .all(|&(_, h)| h == Health::Healthy);
        if all_healthy {
            break;
        }
        if Instant::now() > rejoin_deadline {
            return Err(Error::Protocol {
                what: format!(
                    "restarted victims not re-adopted within 10 s: {:?}",
                    gw.health_summary()
                ),
            });
        }
    }

    // --- Scrub phase -----------------------------------------------------
    // Rejoined bricks come back empty (adoption wipes stale shards) and
    // the rebuild pass may have deferred objects that had no spare while
    // the victims were down. A presence-driven scrub restores every
    // missing shard in place now that the full fleet is healthy.
    let scrub_t0 = Instant::now();
    let mut scrub_restored = 0u64;
    let mut scrub_attempts = 0;
    loop {
        scrub_attempts += 1;
        let report = gw.scrub_repair()?;
        scrub_restored += report.shards_moved;
        if report.deferred_objects.is_empty() {
            break;
        }
        if scrub_attempts >= 16 {
            return Err(Error::Protocol {
                what: format!(
                    "scrub could not restore objects {:?} with all bricks healthy",
                    report.deferred_objects
                ),
            });
        }
        pump(&gw, &mut transitions);
    }
    info.push(format!(
        "scrub restored {scrub_restored} shard(s) in {:?}",
        scrub_t0.elapsed()
    ));

    // --- Verify phase ----------------------------------------------------
    // Reads always run on spawned worker threads, even with a single
    // worker: a worker thread has no open span, so every verify
    // `net.get` is a root span regardless of worker count — running
    // them inline would parent them under the campaign span and make
    // the merged trace depend on `workers`.
    type VerifyRead = (u64, Result<(Vec<u8>, ReadMode), Error>);
    let object_ids = gw.object_ids();
    let workers = cfg.workers.max(1);
    let chunk = object_ids.len().div_ceil(workers).max(1);
    let mut results: Vec<VerifyRead> = Vec::with_capacity(object_ids.len());
    std::thread::scope(|s| {
        let gw = &gw;
        let handles: Vec<_> = object_ids
            .chunks(chunk)
            .map(|ids| s.spawn(move || ids.iter().map(|&id| (id, gw.get(id))).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            results.extend(h.join().expect("verify worker"));
        }
    });
    results.sort_by_key(|&(id, _)| id);
    let mut losses: Vec<(u64, usize, usize)> = Vec::new();
    let mut verified = 0u64;
    for (id, result) in results {
        match result {
            Ok((bytes, mode)) => {
                let expect = object_payload(cfg.seed, id, cfg.object_bytes);
                if bytes != expect {
                    return Err(Error::Protocol {
                        what: format!("obj{id} read back corrupt ({} bytes)", bytes.len()),
                    });
                }
                if mode != ReadMode::Healthy {
                    // Scrub finished with nothing deferred, so every
                    // surviving object must be back at full redundancy.
                    return Err(Error::Protocol {
                        what: format!("obj{id} still degraded after rebuild and scrub"),
                    });
                }
                verified += 1;
            }
            Err(Error::DataLoss {
                object,
                missing,
                tolerated,
            }) => losses.push((object, missing, tolerated)),
            Err(e) => return Err(e),
        }
    }
    losses.sort_unstable();
    let lost_ids: Vec<u64> = losses.iter().map(|&(id, _, _)| id).collect();
    if lost_ids != expected_lost {
        return Err(Error::Protocol {
            what: format!(
                "loss set mismatch: erasure math predicts {expected_lost:?}, cluster lost {lost_ids:?}"
            ),
        });
    }
    info.push(format!(
        "verified {verified} objects, total wall time {:?}",
        started.elapsed()
    ));

    // --- Final telemetry sweep -------------------------------------------
    // Every brick still standing (survivors plus rejoined generations)
    // ships the tail of its trace buffer; together with the pre-kill
    // harvests this yields one part per brick process that ever ran.
    if cfg.obs {
        gw.collect_scrapes(1 << 20);
        for t in gw.collected_telemetry().values() {
            brick_parts.push((t.label.clone(), render_brick_part(t)));
        }
    }

    // --- Verdict ---------------------------------------------------------
    let mut verdict_lines = vec![format!(
        "campaign plan={} seed={} bricks={} geometry={}+{} objects={}",
        cfg.plan, cfg.seed, cfg.bricks, k, t, cfg.objects
    )];
    verdict_lines.push(if losses.is_empty() {
        "verdict=NO-LOSS lost=0".to_string()
    } else {
        format!("verdict=LOSS lost={}", losses.len())
    });
    for (id, missing, tolerated) in &losses {
        verdict_lines.push(format!(
            "loss obj={id} missing={missing} tolerated={tolerated}"
        ));
    }
    nsr_obs::trace::event("net.cluster.verdict", || {
        vec![
            ("loss", Json::Bool(!losses.is_empty())),
            ("lost_objects", Json::Num(losses.len() as f64)),
        ]
    });
    span.field("lost_objects", || Json::Num(losses.len() as f64));
    Ok(CampaignOutcome {
        verdict_lines,
        info_lines: info,
        any_loss: !losses.is_empty(),
        detection_latencies_s,
        brick_parts,
    })
}
