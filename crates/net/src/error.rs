use std::fmt;

/// Errors produced by the networked brick store.
///
/// Every failure mode a caller can act on is a distinct variant: transport
/// faults carry the operation they interrupted, exhausted retry budgets
/// carry the attempt count, and data loss carries the erasure accounting —
/// nothing is reported as a bare string where a caller might want to
/// branch.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A socket operation failed (connect, read, write, accept).
    Io {
        /// The operation that failed (e.g. `"connect"`, `"read_frame"`).
        op: &'static str,
        /// The OS error rendered as text (kept comparable for tests).
        detail: String,
    },
    /// A socket operation exceeded its bounded deadline.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
    },
    /// A received byte sequence does not decode to any protocol frame.
    Decode {
        /// What was malformed (tag, length, truncation, …).
        what: String,
    },
    /// A well-formed frame arrived that is not valid in this context
    /// (e.g. a response tag where a request was expected).
    Protocol {
        /// Description of the violation.
        what: String,
    },
    /// The remote brick reported a typed failure.
    Remote {
        /// The remote error code (see [`crate::wire::reply_code`]).
        code: u16,
        /// The remote error description.
        detail: String,
    },
    /// The requested shard is not stored on the brick.
    ShardNotFound {
        /// Object id.
        object: u64,
        /// Shard position within the object's redundancy set.
        pos: u32,
    },
    /// A retried operation exhausted its backoff budget.
    RetriesExhausted {
        /// The operation that kept failing.
        op: &'static str,
        /// Attempts made (≥ 1).
        attempts: u32,
        /// The last underlying failure, rendered as text.
        last: String,
    },
    /// Fewer healthy bricks remain than a write needs.
    InsufficientBricks {
        /// Bricks the operation needs.
        need: usize,
        /// Healthy bricks available.
        have: usize,
    },
    /// The object id is not in the gateway's metadata.
    ObjectNotFound {
        /// The unknown object id.
        object: u64,
    },
    /// More of an object's shards are unavailable than the code
    /// tolerates — the paper's data-loss event, surfaced typed.
    DataLoss {
        /// The affected object.
        object: u64,
        /// Shards unavailable.
        missing: usize,
        /// Shards the code tolerates losing.
        tolerated: usize,
    },
    /// A rebuild was interrupted mid-transfer (a source or spare brick
    /// died while shards were being re-replicated). The completed work
    /// is kept;
    /// retrying resumes from `resumed_from` re-replicated shards instead
    /// of restarting from shard 0.
    RebuildInterrupted {
        /// Shards already re-replicated before the interruption.
        resumed_from: u64,
    },
    /// An erasure-coding error (geometry, reconstruction, verification).
    Erasure(nsr_erasure::Error),
    /// A configuration parameter was invalid (zero bricks, `t >= r`, …).
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { op, detail } => write!(f, "i/o error during {op}: {detail}"),
            Error::Timeout { op } => write!(f, "{op} timed out"),
            Error::Decode { what } => write!(f, "frame decode error: {what}"),
            Error::Protocol { what } => write!(f, "protocol violation: {what}"),
            Error::Remote { code, detail } => {
                write!(f, "brick reported error {code}: {detail}")
            }
            Error::ShardNotFound { object, pos } => {
                write!(f, "shard (obj{object}, pos {pos}) not stored on this brick")
            }
            Error::RetriesExhausted { op, attempts, last } => {
                write!(
                    f,
                    "{op} failed after {attempts} attempt(s); last error: {last}"
                )
            }
            Error::InsufficientBricks { need, have } => {
                write!(f, "need {need} healthy bricks, only {have} available")
            }
            Error::ObjectNotFound { object } => write!(f, "obj{object} not found"),
            Error::DataLoss {
                object,
                missing,
                tolerated,
            } => write!(
                f,
                "data loss: obj{object} has {missing} shards unavailable, \
                 code tolerates {tolerated}"
            ),
            Error::RebuildInterrupted { resumed_from } => write!(
                f,
                "rebuild interrupted by a source failure after {resumed_from} \
                 re-replicated shard(s); retry resumes from the checkpoint"
            ),
            Error::Erasure(e) => write!(f, "erasure error: {e}"),
            Error::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<nsr_erasure::Error> for Error {
    fn from(e: nsr_erasure::Error) -> Self {
        Error::Erasure(e)
    }
}

impl Error {
    /// Classifies an [`std::io::Error`] from operation `op` into
    /// [`Error::Timeout`] or [`Error::Io`].
    pub fn from_io(op: &'static str, e: &std::io::Error) -> Error {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Error::Timeout { op },
            _ => Error::Io {
                op,
                detail: e.kind().to_string(),
            },
        }
    }

    /// Whether a retry with backoff can plausibly clear this error
    /// (transient transport faults) as opposed to a permanent condition
    /// (decode errors, data loss, configuration errors).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::Io { .. } | Error::Timeout { .. } | Error::InsufficientBricks { .. }
        )
    }
}
