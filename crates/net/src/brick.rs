//! The brick daemon: a TCP server storing erasure-coded shards keyed by
//! `(object, pos)`, one handler thread per connection, every socket
//! operation bounded by read/write timeouts so a stalled peer can never
//! wedge a handler forever.
//!
//! Shards live in memory — the paper's brick is a storage *node* model,
//! and what this layer exercises is the distributed-systems surface
//! (detection, degraded reads, rebuild), not the disk. A kill-9 of a
//! brick therefore loses its shards, which is exactly the failure the
//! erasure code and rebuild coordinator exist to absorb.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nsr_obs::{Json, Span, SpanContext};

use crate::error::Error;
use crate::obs;
use crate::wire::{read_frame, reply_code, write_frame, Frame};

/// Tuning for a brick daemon.
#[derive(Debug, Clone)]
pub struct BrickConfig {
    /// This brick's id, echoed in heartbeat acks.
    pub id: u32,
    /// Per-socket read deadline.
    pub read_timeout: Duration,
    /// Per-socket write deadline.
    pub write_timeout: Duration,
}

impl BrickConfig {
    /// Default timeouts (2 s) for brick `id`.
    pub fn new(id: u32) -> Self {
        BrickConfig {
            id,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        }
    }
}

type ShardMap = BTreeMap<(u64, u32), Vec<u8>>;

/// Per-server telemetry shared by every connection handler: the scrape
/// snapshot sequence (bumped per served scrape, echoed on heartbeat
/// acks as the staleness signal) and a coarse served-request count.
struct Telemetry {
    snap_seq: AtomicU64,
    requests: AtomicU64,
}

/// A running brick server bound to a local address.
pub struct BrickServer {
    cfg: BrickConfig,
    listener: TcpListener,
    addr: SocketAddr,
    shards: Arc<Mutex<ShardMap>>,
    stop: Arc<AtomicBool>,
    telemetry: Arc<Telemetry>,
}

impl BrickServer {
    /// Binds to `addr` (use port 0 to let the OS pick) without starting
    /// the accept loop.
    pub fn bind(addr: impl ToSocketAddrs, cfg: BrickConfig) -> Result<BrickServer, Error> {
        let listener = TcpListener::bind(addr).map_err(|e| Error::from_io("bind", &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::from_io("local_addr", &e))?;
        Ok(BrickServer {
            cfg,
            listener,
            addr,
            shards: Arc::new(Mutex::new(BTreeMap::new())),
            stop: Arc::new(AtomicBool::new(false)),
            telemetry: Arc::new(Telemetry {
                snap_seq: AtomicU64::new(0),
                requests: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves the OS-picked port after `bind("…:0")`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the accept loop until a [`Frame::Shutdown`] arrives. Each
    /// connection gets its own handler thread; the shutdown handler
    /// wakes the accept loop with a dummy connection so `run` returns
    /// promptly. In-flight handlers are not joined — the listener
    /// closes immediately and each handler winds down on its own within
    /// its read deadline.
    pub fn run(self) -> Result<(), Error> {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::from_io("accept", &e)),
            };
            let cfg = self.cfg.clone();
            let shards = Arc::clone(&self.shards);
            let stop = Arc::clone(&self.stop);
            let telemetry = Arc::clone(&self.telemetry);
            let addr = self.addr;
            std::thread::spawn(move || {
                // Handler errors mean the peer vanished or spoke garbage;
                // the brick just drops that connection and keeps serving.
                let _ = handle_connection(stream, &cfg, &shards, &stop, &telemetry, addr);
            });
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns the
    /// bound address plus the join handle — the in-process harness used
    /// by tests (the `nsr brick` daemon calls [`run`](Self::run)
    /// directly).
    pub fn spawn(self) -> (SocketAddr, std::thread::JoinHandle<Result<(), Error>>) {
        let addr = self.addr;
        let handle = std::thread::spawn(move || self.run());
        (addr, handle)
    }
}

fn handle_connection(
    stream: TcpStream,
    cfg: &BrickConfig,
    shards: &Mutex<ShardMap>,
    stop: &Arc<AtomicBool>,
    telemetry: &Telemetry,
    self_addr: SocketAddr,
) -> Result<(), Error> {
    stream
        .set_read_timeout(Some(cfg.read_timeout))
        .map_err(|e| Error::from_io("set_read_timeout", &e))?;
    stream
        .set_write_timeout(Some(cfg.write_timeout))
        .map_err(|e| Error::from_io("set_write_timeout", &e))?;
    // Replies must leave as soon as they are flushed. Without this, a
    // shard reply smaller than the (huge, on loopback) MSS sits in the
    // Nagle buffer until the peer's delayed ACK — a ~40 ms stall per
    // fetch that dwarfs the actual transfer.
    stream
        .set_nodelay(true)
        .map_err(|e| Error::from_io("set_nodelay", &e))?;
    let mut reader = io::BufReader::with_capacity(
        crate::wire::IO_READ_BUF_LEN,
        stream
            .try_clone()
            .map_err(|e| Error::from_io("clone_stream", &e))?,
    );
    let mut writer = io::BufWriter::with_capacity(crate::wire::IO_WRITE_BUF_LEN, stream);
    // Remote trace context announced by the previous frame on this
    // connection; consumed by the next non-context request.
    let mut pending_ctx: Option<SpanContext> = None;
    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            // Peer closed cleanly between frames — normal teardown.
            Ok(None) => return Ok(()),
            // Idle or stalled past the read deadline: drop the
            // connection (the client reconnects). This is what keeps a
            // wedged peer from pinning a handler thread forever.
            Err(Error::Timeout { .. }) => return Ok(()),
            Err(e @ Error::Decode { .. }) => {
                // Malformed bytes: answer with a typed reply (best
                // effort) and drop the connection; resynchronising a
                // corrupted length-prefixed stream is not possible.
                let _ = write_frame(
                    &mut writer,
                    &Frame::ErrorReply {
                        code: reply_code::BAD_REQUEST,
                        detail: e.to_string(),
                    },
                );
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        // A shut-down brick is dead to every peer, including ones with
        // connections already open — drop them without answering, the
        // same silence a killed process would produce.
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Trace-context prefix frames are fire-and-forget: remember the
        // remote parent for the next request, send nothing back.
        if let Frame::TraceCtx { proc, span } = request {
            pending_ctx = Some(SpanContext {
                proc_id: proc,
                span_id: span,
            });
            continue;
        }
        obs::BRICK_REQUESTS.inc();
        telemetry.requests.fetch_add(1, Ordering::Relaxed);
        let shutting_down = matches!(request, Frame::Shutdown);
        let reply = dispatch(request, cfg, shards, pending_ctx.take(), telemetry);
        // Shard replies bypass the generic encoder: header from the
        // stack, payload straight from the owned buffer, no copy.
        match &reply {
            Frame::ShardData { data } => crate::wire::write_shard_data(&mut writer, data)?,
            Frame::Ok => crate::wire::write_ok(&mut writer)?,
            other => write_frame(&mut writer, other)?,
        }
        if shutting_down {
            stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so run() observes the stop flag.
            let _ = TcpStream::connect_timeout(&self_addr, Duration::from_millis(200));
            return Ok(());
        }
    }
}

fn dispatch(
    request: Frame,
    cfg: &BrickConfig,
    shards: &Mutex<ShardMap>,
    ctx: Option<SpanContext>,
    telemetry: &Telemetry,
) -> Frame {
    match request {
        // By-value dispatch: the decoded shard bytes move straight into
        // the store, so a put never copies the payload on the brick.
        Frame::PutShard { object, pos, data } => {
            let _span = handler_span("net.brick.put", ctx, cfg.id, object, pos);
            shards
                .lock()
                .expect("shard map lock")
                .insert((object, pos), data);
            Frame::Ok
        }
        Frame::GetShard { object, pos } => {
            let _span = handler_span("net.brick.get", ctx, cfg.id, object, pos);
            fetch_shard(shards, object, pos)
        }
        Frame::RebuildFetch { object, pos } => {
            let _span = handler_span("net.brick.rebuild_fetch", ctx, cfg.id, object, pos);
            nsr_obs::trace::event("net.brick.rebuild_fetch", || {
                vec![
                    ("brick", Json::Num(cfg.id as f64)),
                    ("object", Json::Num(object as f64)),
                    ("pos", Json::Num(pos as f64)),
                ]
            });
            fetch_shard(shards, object, pos)
        }
        Frame::DeleteShard { object, pos } => {
            let _span = handler_span("net.brick.delete", ctx, cfg.id, object, pos);
            shards
                .lock()
                .expect("shard map lock")
                .remove(&(object, pos));
            Frame::Ok
        }
        Frame::Heartbeat { seq } => Frame::HeartbeatAck {
            seq,
            brick_id: cfg.id,
            shards: shards.lock().expect("shard map lock").len() as u64,
            snap_seq: telemetry.snap_seq.load(Ordering::Relaxed),
            load: telemetry.requests.load(Ordering::Relaxed),
        },
        Frame::ListShards => Frame::ShardList {
            entries: shards
                .lock()
                .expect("shard map lock")
                .keys()
                .copied()
                .collect(),
        },
        Frame::Scrape { cursor, max_lines } => scrape_reply(cursor, max_lines, cfg, telemetry),
        Frame::Shutdown => Frame::Ok,
        // A response frame arriving as a request is a protocol violation.
        other => Frame::ErrorReply {
            code: reply_code::BAD_REQUEST,
            detail: format!("unexpected request frame `{}`", other.name()),
        },
    }
}

/// Opens the brick-side handler span for a data operation. With a
/// remote context the span records its cross-process parent; without
/// one (legacy peer, or tracing disabled) no span is recorded at all,
/// keeping single-process traces exactly as they were.
fn handler_span(
    name: &'static str,
    ctx: Option<SpanContext>,
    brick: u32,
    object: u64,
    pos: u32,
) -> Option<Span> {
    let ctx = ctx?;
    let mut span = Span::enter_remote(name, ctx);
    span.field("brick", || Json::Num(brick as f64));
    span.field("object", || Json::Num(object as f64));
    span.field("pos", || Json::Num(pos as f64));
    Some(span)
}

/// Serves one [`Frame::Scrape`]: metrics snapshot, bounded trace delta,
/// and a bumped snapshot sequence. Deliberately span-free — scrapes are
/// telemetry about the telemetry and must not perturb the causal tree
/// they report on.
fn scrape_reply(cursor: u64, max_lines: u32, cfg: &BrickConfig, telemetry: &Telemetry) -> Frame {
    obs::SCRAPE_REQUESTS.inc();
    let snap_seq = telemetry.snap_seq.fetch_add(1, Ordering::Relaxed) + 1;
    let (label, proc_id) = match nsr_obs::trace_process() {
        Some((label, id)) => (label, id),
        None => {
            let label = format!("brick-{}", cfg.id);
            let id = nsr_obs::process_id_for(&label);
            (label, id)
        }
    };
    let metrics = nsr_obs::metrics_jsonl(&label).into_bytes();
    let (next_cursor, lines) = nsr_obs::trace_delta(cursor, max_lines as usize);
    obs::SCRAPE_LINES.add(lines.len() as u64);
    let mut trace = String::new();
    for line in &lines {
        trace.push_str(line);
        trace.push('\n');
    }
    Frame::ScrapeReply {
        proc_id,
        snap_seq,
        next_cursor,
        label,
        metrics,
        trace: trace.into_bytes(),
        status: Vec::new(),
    }
}

fn fetch_shard(shards: &Mutex<ShardMap>, object: u64, pos: u32) -> Frame {
    match shards.lock().expect("shard map lock").get(&(object, pos)) {
        Some(data) => Frame::ShardData { data: data.clone() },
        None => Frame::ErrorReply {
            code: reply_code::SHARD_NOT_FOUND,
            detail: format!("obj{object} pos{pos}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::BrickClient;

    fn start() -> (SocketAddr, std::thread::JoinHandle<Result<(), Error>>) {
        BrickServer::bind("127.0.0.1:0", BrickConfig::new(7))
            .expect("bind")
            .spawn()
    }

    #[test]
    fn put_get_delete_round_trip() {
        let (addr, handle) = start();
        let mut c = BrickClient::connect(addr, Duration::from_secs(2)).expect("connect");
        c.put_shard(9, 2, &[1, 2, 3]).expect("put");
        assert_eq!(c.get_shard(9, 2).expect("get"), vec![1, 2, 3]);
        assert_eq!(c.list_shards().expect("list"), vec![(9, 2)]);
        c.delete_shard(9, 2).expect("delete");
        assert!(matches!(
            c.get_shard(9, 2),
            Err(Error::ShardNotFound { object: 9, pos: 2 })
        ));
        let ack = c.heartbeat(5).expect("heartbeat");
        assert_eq!(ack.brick_id, 7);
        assert_eq!(ack.shards, 0);
        c.shutdown().expect("shutdown");
        handle.join().expect("join").expect("run");
    }

    #[test]
    fn garbage_bytes_get_typed_reply_and_drop() {
        let (addr, handle) = start();
        {
            use std::io::Write;
            let mut raw = TcpStream::connect(addr).expect("connect");
            raw.write_all(&[0xde, 0xad, 0xbe, 0xef, 0xff, 0xff, 0xff, 0xff])
                .expect("write garbage");
            // The brick replies with a typed error (or drops us) and the
            // connection closes; either way the server must survive.
        }
        let mut c = BrickClient::connect(addr, Duration::from_secs(2)).expect("reconnect");
        assert!(c.heartbeat(1).is_ok(), "brick still serving after garbage");
        c.shutdown().expect("shutdown");
        handle.join().expect("join").expect("run");
    }
}
