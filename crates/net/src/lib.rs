//! `nsr-net`: the networked brick store — the paper's subject, live.
//!
//! Where `nsr-erasure`'s [`BrickStore`](nsr_erasure::store) *models* a
//! network of storage bricks inside one process, this crate runs one:
//!
//! - [`brick`] — a TCP daemon storing erasure-coded shards, one handler
//!   thread per connection, bounded timeouts on every socket op.
//! - [`wire`] — the length-prefixed binary protocol between gateway and
//!   bricks (put/get/delete shard, heartbeat, rebuild transfer), strict
//!   decoding with typed errors and no panics on hostile bytes.
//! - [`gateway`] — stripes objects across bricks with the
//!   `nsr-erasure` Reed–Solomon codec, serves puts and gets through a
//!   pipelined shard fan-out (one outstanding request per brick,
//!   replies assembled by shard index), serves degraded reads from any
//!   `k` surviving shards, retries transient faults with capped
//!   exponential backoff + seeded jitter, and coordinates rebuild.
//! - [`pool`] — the per-brick connection pool under the gateway:
//!   persistent client lanes with transparent reconnect and a keepalive
//!   thread that refreshes idle connections before the brick's read
//!   deadline can drop them.
//! - [`workload`] — a seeded YCSB-style serving workload (zipfian or
//!   uniform keys, put/get mix) with per-phase throughput and latency
//!   percentiles, driven over healthy, degraded, and rebuilding
//!   cluster states by the CLI and the `serving` bench suite.
//! - [`detector`] — φ-style heartbeat failure detection with the
//!   explicit health state machine healthy → suspect → dead →
//!   rebuilding → rejoined, on a pluggable [`clock`] so tests are
//!   clock-free and deterministic.
//! - [`cluster`] — the `nsr cluster-inject` harness: spawns brick
//!   child processes, kill-9s them on a seeded `nsr-sim` `FaultPlan`
//!   schedule, and asserts the erasure contract (zero loss at or below
//!   `t` concurrent failures, correct typed loss above `t`).
//!
//! Everything emits `nsr-obs` v2 causal spans and events (request
//! lifecycle, detection latency, rebuild progress), so the flight
//! recorder's `nsr report` / `nsr explain` post-mortems work on live
//! cluster traces unchanged.
//!
//! The transport is deliberately `std::net` + threads (workspace
//! zero-dependency policy); the interesting reliability machinery is in
//! the failure handling, not the I/O substrate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod brick;
pub mod client;
pub mod clock;
pub mod cluster;
pub mod detector;
mod error;
pub mod gateway;
pub mod obs;
pub mod pool;
pub mod wire;
pub mod workload;

pub use error::Error;

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, Error>;
