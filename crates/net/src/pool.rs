//! Per-brick connection pool: persistent [`BrickClient`] slots with
//! idle-deadline-aware keepalive and transparent reconnect.
//!
//! Bricks drop connections that stay idle past their read deadline
//! (2 s by default), so a naive client pays a redial — and, because the
//! stale socket fails mid-request first, a retry with a backoff sleep —
//! on the first request after any idle stretch. The pool removes both
//! costs: every brick gets a fixed set of connection *lanes* that are
//! dialed on demand, reused across requests, and refreshed by a
//! background keepalive thread that heartbeats any connected lane
//! approaching the idle deadline. Keepalive probes are wire-level only —
//! they never feed the failure detector, so campaign replay determinism
//! is untouched.
//!
//! The pool is also where the pipelined shard fan-out lives:
//! [`ConnectionPool::fanout`] locks one lane per brick, runs a send
//! phase and then a receive phase in caller order, which keeps one
//! request outstanding per brick while replies are still assembled
//! deterministically by index.
//!
//! Locking protocol: `fanout` acquires lane locks in ascending brick-id
//! order, which makes concurrent fan-outs deadlock-free; the keepalive
//! thread only ever `try_lock`s, so it can never stall a serving
//! request.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::client::BrickClient;
use crate::error::Error;
use crate::obs;

/// Sequence number used by keepalive probes — distinct from the
/// detector's monotonically increasing heartbeat sequence so the two
/// kinds of probe are distinguishable in a packet capture.
const KEEPALIVE_SEQ: u64 = u64::MAX;

struct Slot {
    client: Option<BrickClient>,
    last_used: Instant,
}

struct PoolInner {
    addrs: Mutex<Vec<SocketAddr>>,
    /// `lanes[brick][lane]` — one mutexed slot per connection.
    lanes: Vec<Vec<Mutex<Slot>>>,
    timeout: Duration,
    stop: AtomicBool,
    /// Pairs with `wake` so `Drop` can interrupt the keepalive sleep.
    stop_mutex: Mutex<()>,
    wake: Condvar,
}

/// A pool of persistent brick connections (see the module docs).
pub struct ConnectionPool {
    inner: Arc<PoolInner>,
    keepalive: Option<std::thread::JoinHandle<()>>,
}

impl ConnectionPool {
    /// Creates a pool over `addrs` (brick id = index) with `lanes`
    /// connections per brick, all unconnected until first use.
    pub fn new(addrs: Vec<SocketAddr>, timeout: Duration, lanes: usize) -> ConnectionPool {
        let lanes = lanes.max(1);
        let slot = || {
            Mutex::new(Slot {
                client: None,
                last_used: Instant::now(),
            })
        };
        let lanes = (0..addrs.len())
            .map(|_| (0..lanes).map(|_| slot()).collect())
            .collect();
        ConnectionPool {
            inner: Arc::new(PoolInner {
                addrs: Mutex::new(addrs),
                lanes,
                timeout,
                stop: AtomicBool::new(false),
                stop_mutex: Mutex::new(()),
                wake: Condvar::new(),
            }),
            keepalive: None,
        }
    }

    /// Starts the background keepalive thread: any connected lane idle
    /// for `refresh` or longer is re-warmed with a heartbeat, keeping it
    /// below the brick's read deadline (`refresh` must be comfortably
    /// smaller than that deadline). A zero `refresh` disables keepalive.
    pub fn start_keepalive(&mut self, refresh: Duration) {
        if refresh.is_zero() || self.keepalive.is_some() {
            return;
        }
        let inner = Arc::clone(&self.inner);
        self.keepalive = Some(std::thread::spawn(move || keepalive_loop(&inner, refresh)));
    }

    /// Number of bricks the pool addresses.
    pub fn len(&self) -> usize {
        self.inner.lanes.len()
    }

    /// Whether the pool addresses zero bricks.
    pub fn is_empty(&self) -> bool {
        self.inner.lanes.is_empty()
    }

    /// Replaces the address of brick `id` (a killed brick restarts on a
    /// fresh port) and drops every cached connection to the old address.
    pub fn set_addr(&self, id: u32, addr: SocketAddr) {
        self.inner.addrs.lock().expect("addrs lock")[id as usize] = addr;
        for lane in &self.inner.lanes[id as usize] {
            lane.lock().expect("slot lock").client = None;
        }
    }

    /// Runs `f` on a pooled connection to brick `id`, dialing one if no
    /// lane is connected. Any error drops the connection so the next
    /// checkout starts clean; connect failures are reported as `op`.
    pub fn with<T>(
        &self,
        id: u32,
        op: &'static str,
        f: impl FnOnce(&mut BrickClient) -> Result<T, Error>,
    ) -> Result<T, Error> {
        let mut slot = self.lock_lane(id);
        self.inner.ensure_connected(&mut slot, id, op)?;
        let client = slot.client.as_mut().expect("connected");
        match f(client) {
            Ok(v) => {
                slot.last_used = Instant::now();
                Ok(v)
            }
            Err(e) => {
                // Transport state is unknown after any failure: drop the
                // connection so the next attempt starts clean.
                slot.client = None;
                Err(e)
            }
        }
    }

    /// Pipelined scatter-gather over the (distinct) bricks in `ids`:
    /// locks one lane per brick in ascending brick-id order, runs
    /// `send` for every index in caller order, then `recv` for every
    /// index in caller order. Each connection carries exactly one
    /// outstanding request, so a failure on one brick never desyncs
    /// another — the result vector is per-index, aligned with `ids`,
    /// and failed indices have had their connection dropped.
    pub fn fanout<T>(
        &self,
        ids: &[u32],
        op: &'static str,
        mut send: impl FnMut(usize, &mut BrickClient) -> Result<(), Error>,
        mut recv: impl FnMut(usize, &mut BrickClient) -> Result<T, Error>,
    ) -> Vec<Result<T, Error>> {
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_by_key(|&i| ids[i]);
        debug_assert!(
            order.windows(2).all(|w| ids[w[0]] != ids[w[1]]),
            "fanout bricks must be distinct"
        );
        let mut guards: Vec<Option<MutexGuard<'_, Slot>>> = (0..ids.len()).map(|_| None).collect();
        let mut results: Vec<Option<Result<T, Error>>> = (0..ids.len()).map(|_| None).collect();
        // Acquire + connect phase, ascending brick id.
        for &i in &order {
            let mut slot = self.lock_lane(ids[i]);
            match self.inner.ensure_connected(&mut slot, ids[i], op) {
                Ok(()) => guards[i] = Some(slot),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        // Send phase, caller order.
        for i in 0..ids.len() {
            if results[i].is_some() {
                continue;
            }
            let slot = guards[i].as_mut().expect("acquired");
            if let Err(e) = send(i, slot.client.as_mut().expect("connected")) {
                slot.client = None;
                results[i] = Some(Err(e));
            }
        }
        // Every request is on the wire; on a single-core host the brick
        // threads are runnable but have not run yet. Yielding once here
        // lets the scheduler drain all of them in one pass, so the
        // receive loop below finds every reply already buffered (two
        // context switches total) instead of alternating gateway ↔
        // brick per reply. On multi-core hosts this is a no-op.
        std::thread::yield_now();
        // Receive phase, caller order — deterministic assembly.
        for i in 0..ids.len() {
            if results[i].is_some() {
                continue;
            }
            let slot = guards[i].as_mut().expect("acquired");
            match recv(i, slot.client.as_mut().expect("connected")) {
                Ok(v) => {
                    slot.last_used = Instant::now();
                    results[i] = Some(Ok(v));
                }
                Err(e) => {
                    slot.client = None;
                    results[i] = Some(Err(e));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every index resolved"))
            .collect()
    }

    /// Locks a lane of brick `id`: the first free lane if any, else
    /// blocks on lane 0. Multi-brick callers go through `fanout`, whose
    /// ascending-id acquisition keeps this deadlock-free.
    fn lock_lane(&self, id: u32) -> MutexGuard<'_, Slot> {
        let lanes = &self.inner.lanes[id as usize];
        for lane in lanes {
            if let Ok(guard) = lane.try_lock() {
                return guard;
            }
        }
        lanes[0].lock().expect("slot lock")
    }
}

impl Drop for ConnectionPool {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let _unused = self.inner.stop_mutex.lock().expect("stop lock");
        self.inner.wake.notify_all();
        drop(_unused);
        if let Some(handle) = self.keepalive.take() {
            let _ = handle.join();
        }
    }
}

impl PoolInner {
    fn ensure_connected(&self, slot: &mut Slot, id: u32, op: &'static str) -> Result<(), Error> {
        if slot.client.is_some() {
            obs::POOL_REUSES.inc();
            return Ok(());
        }
        let addr = self.addrs.lock().expect("addrs lock")[id as usize];
        let client = BrickClient::connect(addr, self.timeout).map_err(|e| match e {
            Error::Io { detail, .. } => Error::Io { op, detail },
            other => other,
        })?;
        obs::POOL_RECONNECTS.inc();
        slot.client = Some(client);
        slot.last_used = Instant::now();
        Ok(())
    }
}

fn keepalive_loop(inner: &PoolInner, refresh: Duration) {
    // Wake often enough that a lane is always refreshed within
    // ~1.25 × refresh of its last use.
    let step = (refresh / 4).max(Duration::from_millis(5));
    loop {
        let guard = inner.stop_mutex.lock().expect("stop lock");
        let (guard, _) = inner
            .wake
            .wait_timeout(guard, step)
            .expect("keepalive wait");
        drop(guard);
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        for lanes in &inner.lanes {
            for lane in lanes {
                // A busy lane is by definition not idle — skip it rather
                // than ever blocking a serving request.
                let Ok(mut slot) = lane.try_lock() else {
                    continue;
                };
                if slot.client.is_none() || slot.last_used.elapsed() < refresh {
                    continue;
                }
                let alive = slot
                    .client
                    .as_mut()
                    .expect("connected")
                    .heartbeat(KEEPALIVE_SEQ)
                    .is_ok();
                if alive {
                    slot.last_used = Instant::now();
                    obs::POOL_KEEPALIVES.inc();
                } else {
                    slot.client = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brick::{BrickConfig, BrickServer};
    use crate::wire::Frame;

    fn start_brick(id: u32) -> (SocketAddr, std::thread::JoinHandle<Result<(), Error>>) {
        BrickServer::bind("127.0.0.1:0", BrickConfig::new(id))
            .expect("bind")
            .spawn()
    }

    fn stop_brick(addr: SocketAddr) {
        let mut c = BrickClient::connect(addr, Duration::from_millis(300)).expect("connect");
        c.shutdown().expect("shutdown");
    }

    #[test]
    fn with_reuses_a_connection_across_requests() {
        let (addr, handle) = start_brick(0);
        let pool = ConnectionPool::new(vec![addr], Duration::from_millis(300), 1);
        for seq in 0..3 {
            let ack = pool
                .with(0, "heartbeat", |c| c.heartbeat(seq))
                .expect("heartbeat");
            assert_eq!(ack.brick_id, 0);
        }
        stop_brick(addr);
        handle.join().expect("join").expect("run");
    }

    #[test]
    fn fanout_failures_are_per_brick() {
        let (a, ha) = start_brick(0);
        let (b, hb) = start_brick(1);
        let pool = ConnectionPool::new(vec![a, b], Duration::from_millis(300), 1);
        stop_brick(b);
        hb.join().expect("join").expect("run");
        let results = pool.fanout(
            &[0, 1],
            "heartbeat",
            |i, c| c.send_request(&Frame::Heartbeat { seq: i as u64 }),
            |_i, c| c.recv_reply(),
        );
        assert!(results[0].is_ok(), "live brick unaffected: {results:?}");
        assert!(results[1].is_err(), "dead brick reported: {results:?}");
        // The pool recovers: the live brick's lane is still warm.
        assert!(pool.with(0, "heartbeat", |c| c.heartbeat(9)).is_ok());
        stop_brick(a);
        ha.join().expect("join").expect("run");
    }

    #[test]
    fn keepalive_outlives_a_short_brick_deadline() {
        let mut cfg = BrickConfig::new(0);
        cfg.read_timeout = Duration::from_millis(250);
        let (addr, handle) = BrickServer::bind("127.0.0.1:0", cfg).expect("bind").spawn();
        let mut pool = ConnectionPool::new(vec![addr], Duration::from_millis(300), 1);
        pool.start_keepalive(Duration::from_millis(60));
        pool.with(0, "heartbeat", |c| c.heartbeat(0)).expect("warm");
        // Idle well past the brick's read deadline: without keepalive
        // the brick would have dropped the connection and the next
        // request on it would fail.
        std::thread::sleep(Duration::from_millis(700));
        pool.with(0, "heartbeat", |c| c.heartbeat(1))
            .expect("connection survived the idle stretch");
        stop_brick(addr);
        handle.join().expect("join").expect("run");
    }
}
