//! A seeded YCSB-style serving workload for the gateway.
//!
//! The serving-path benchmarks need sustained load with a realistic key
//! popularity skew, not a single hot object — a zipfian request stream
//! keeps some pooled connections hot and lets others idle toward the
//! brick's read deadline, which is exactly the regime where the pool's
//! keepalive and the fan-out fast path earn their keep. This module
//! provides that stream: a [`WorkloadSpec`] (key count, object size, op
//! count, read/write mix, [`KeyDist`], seed) plus [`populate`] and
//! [`run_phase`] drivers that report per-phase throughput and latency
//! percentiles in a [`PhaseStats`].
//!
//! Everything is seeded and replayable: the op sequence is a pure
//! function of the spec, and payloads are a pure function of
//! `(seed, key)` (the same convention as `cluster`'s verifier), so a
//! phase can verify every byte it reads without keeping a shadow copy.
//! The zipfian generator is the standard YCSB construction (Gray et
//! al.'s rejection-free inverse-CDF approximation with precomputed
//! `zeta(n, theta)`).

use std::time::Instant;

use nsr_rng::rngs::StdRng;
use nsr_rng::{Rng, SeedableRng};

use crate::error::Error;
use crate::gateway::{Gateway, ReadMode};
use crate::obs;

/// Key popularity distribution for the request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// YCSB zipfian: rank-`i` key has probability ∝ `1 / i^theta`.
    /// `theta` must be in `(0, 1)`; YCSB's default is `0.99`.
    Zipfian {
        /// Skew exponent; larger is more skewed.
        theta: f64,
    },
}

/// One serving-workload configuration. The op stream and every payload
/// are pure functions of this struct, so two runs of the same spec are
/// byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of distinct objects (keys `0..objects`).
    pub objects: u64,
    /// Size of every object's payload in bytes.
    pub object_bytes: usize,
    /// Operations per [`run_phase`] call.
    pub ops: usize,
    /// Percentage of ops that are gets (`0..=100`); the rest are puts.
    pub read_pct: u32,
    /// Key popularity distribution.
    pub dist: KeyDist,
    /// Seed for the op stream and the payload contents.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    /// YCSB-B-flavoured default: 64 objects of 64 KiB, 95% reads,
    /// zipfian `theta = 0.99`, 200 ops per phase.
    fn default() -> Self {
        WorkloadSpec {
            objects: 64,
            object_bytes: 64 * 1024,
            ops: 200,
            read_pct: 95,
            dist: KeyDist::Zipfian { theta: 0.99 },
            seed: 42,
        }
    }
}

/// The deterministic payload for `object` under `seed` — the same
/// convention the cluster verifier uses, so reads can be checked
/// without a shadow store.
pub fn object_payload(seed: u64, object: u64, bytes: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ object.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..bytes).map(|_| rng.random::<u8>()).collect()
}

/// YCSB's rejection-free zipfian sampler over `0..n`.
///
/// Precomputes `zeta(n, theta)` once (an `O(n)` sum — fine for the key
/// counts a serving benchmark uses), then draws in `O(1)` via the
/// standard two-special-cases-plus-power inverse-CDF approximation.
struct ZipfianGen {
    n: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
}

impl ZipfianGen {
    fn new(n: u64, theta: f64) -> ZipfianGen {
        assert!(n > 0, "zipfian over an empty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipfian theta must be in (0, 1), got {theta}"
        );
        let zeta = |items: u64| {
            (1..=items)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum::<f64>()
        };
        let zetan = zeta(n);
        let zeta2 = zeta(2.min(n));
        ZipfianGen {
            n,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            half_pow_theta: 0.5_f64.powf(theta),
        }
    }

    fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + self.half_pow_theta {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

enum KeyPicker {
    Uniform,
    Zipfian(ZipfianGen),
}

impl KeyPicker {
    fn new(spec: &WorkloadSpec) -> KeyPicker {
        match spec.dist {
            KeyDist::Uniform => KeyPicker::Uniform,
            KeyDist::Zipfian { theta } => KeyPicker::Zipfian(ZipfianGen::new(spec.objects, theta)),
        }
    }

    fn next<R: Rng + ?Sized>(&self, rng: &mut R, n: u64) -> u64 {
        match self {
            KeyPicker::Uniform => rng.random_range_usize(0, n as usize) as u64,
            KeyPicker::Zipfian(z) => z.next(rng),
        }
    }
}

/// What one [`run_phase`] call measured.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Total operations issued.
    pub ops: usize,
    /// Puts among them.
    pub puts: usize,
    /// Gets among them.
    pub gets: usize,
    /// Gets served in [`ReadMode::Degraded`].
    pub degraded_gets: usize,
    /// Object bytes moved (payload bytes, both directions).
    pub bytes: u64,
    /// Wall-clock seconds for the whole phase.
    pub seconds: f64,
    /// Per-put latencies in seconds, in issue order.
    pub put_latencies_s: Vec<f64>,
    /// Per-get latencies in seconds, in issue order.
    pub get_latencies_s: Vec<f64>,
}

impl PhaseStats {
    /// Sustained throughput in MiB/s over the phase wall clock.
    pub fn mib_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / (1024.0 * 1024.0) / self.seconds
    }

    /// Operations per second over the phase wall clock.
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / self.seconds
    }

    /// The `q`-quantile (`0.0..=1.0`) of all op latencies (puts and
    /// gets pooled), in seconds. Returns 0 for an empty phase.
    pub fn latency_percentile_s(&self, q: f64) -> f64 {
        let mut all: Vec<f64> = self
            .put_latencies_s
            .iter()
            .chain(self.get_latencies_s.iter())
            .copied()
            .collect();
        percentile(&mut all, q)
    }

    /// The `q`-quantile of get latencies only, in seconds.
    pub fn get_percentile_s(&self, q: f64) -> f64 {
        let mut v = self.get_latencies_s.clone();
        percentile(&mut v, q)
    }

    /// The `q`-quantile of put latencies only, in seconds.
    pub fn put_percentile_s(&self, q: f64) -> f64 {
        let mut v = self.put_latencies_s.clone();
        percentile(&mut v, q)
    }
}

/// Nearest-rank percentile with the workspace's convention: sort, then
/// index `round((len - 1) · q)`.
fn percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let idx = ((values.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    values[idx]
}

/// Loads every object in the spec's key space with its deterministic
/// payload. Run once before the first [`run_phase`] so gets never miss.
pub fn populate(gw: &Gateway, spec: &WorkloadSpec) -> Result<(), Error> {
    for object in 0..spec.objects {
        gw.put(
            object,
            &object_payload(spec.seed, object, spec.object_bytes),
        )?;
    }
    Ok(())
}

/// Runs one phase of `spec.ops` operations against `gw` and returns its
/// [`PhaseStats`].
///
/// `phase` seasons the op-stream seed so successive phases of one spec
/// draw different (but still replayable) streams. Each get's payload is
/// verified against [`object_payload`]; a mismatch or any transport
/// error fails the phase. Latencies also feed the
/// `net.serving.{put,get}_s` histograms when metrics are enabled.
pub fn run_phase(gw: &Gateway, spec: &WorkloadSpec, phase: u64) -> Result<PhaseStats, Error> {
    let picker = KeyPicker::new(spec);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ phase.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut stats = PhaseStats::default();
    let started = Instant::now();
    for _ in 0..spec.ops {
        let object = picker.next(&mut rng, spec.objects);
        let is_get = rng.random_range_usize(0, 100) < spec.read_pct as usize;
        let op_start = Instant::now();
        if is_get {
            let (data, mode) = gw.get(object)?;
            let dt = op_start.elapsed().as_secs_f64();
            if data != object_payload(spec.seed, object, spec.object_bytes) {
                return Err(Error::Protocol {
                    what: format!("workload read of obj{object} returned corrupt bytes"),
                });
            }
            obs::SERVING_GET_S.observe(dt);
            stats.gets += 1;
            if mode == ReadMode::Degraded {
                stats.degraded_gets += 1;
            }
            stats.get_latencies_s.push(dt);
            stats.bytes += data.len() as u64;
        } else {
            let data = object_payload(spec.seed, object, spec.object_bytes);
            gw.put(object, &data)?;
            let dt = op_start.elapsed().as_secs_f64();
            obs::SERVING_PUT_S.observe(dt);
            stats.puts += 1;
            stats.put_latencies_s.push(dt);
            stats.bytes += data.len() as u64;
        }
        stats.ops += 1;
    }
    stats.seconds = started.elapsed().as_secs_f64();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_stream(spec: &WorkloadSpec, phase: u64) -> Vec<(u64, bool)> {
        let picker = KeyPicker::new(spec);
        let mut rng = StdRng::seed_from_u64(spec.seed ^ phase.wrapping_mul(0xA076_1D64_78BD_642F));
        (0..spec.ops)
            .map(|_| {
                let object = picker.next(&mut rng, spec.objects);
                let is_get = rng.random_range_usize(0, 100) < spec.read_pct as usize;
                (object, is_get)
            })
            .collect()
    }

    #[test]
    fn op_stream_is_replayable_and_phase_seasoned() {
        let spec = WorkloadSpec::default();
        assert_eq!(op_stream(&spec, 1), op_stream(&spec, 1));
        assert_ne!(op_stream(&spec, 1), op_stream(&spec, 2));
        let gets = op_stream(&spec, 1).iter().filter(|(_, g)| *g).count();
        // 95% read mix over 200 ops: the draw is seeded, so this bound
        // is deterministic, not flaky.
        assert!((170..=200).contains(&gets), "gets {gets}");
    }

    #[test]
    fn zipfian_skews_toward_low_ranks_uniform_does_not() {
        let n = 100;
        let draws = 20_000;
        let mut rng = StdRng::seed_from_u64(7);
        let z = ZipfianGen::new(n, 0.99);
        let zipf_head = (0..draws).filter(|_| z.next(&mut rng) < n / 10).count();
        let mut rng = StdRng::seed_from_u64(7);
        let uni_head = (0..draws)
            .filter(|_| rng.random_range_usize(0, n as usize) < n as usize / 10)
            .count();
        // Top-10% of keys should absorb well over half the zipfian
        // stream but only ~10% of the uniform one.
        assert!(zipf_head * 2 > draws, "zipfian head {zipf_head}/{draws}");
        assert!(uni_head * 5 < draws, "uniform head {uni_head}/{draws}");
        // And every draw must stay in range.
        let mut rng = StdRng::seed_from_u64(8);
        assert!((0..draws).all(|_| z.next(&mut rng) < n));
    }

    #[test]
    fn payloads_are_deterministic_and_distinct_per_key() {
        assert_eq!(object_payload(1, 3, 256), object_payload(1, 3, 256));
        assert_ne!(object_payload(1, 3, 256), object_payload(1, 4, 256));
        assert_ne!(object_payload(1, 3, 256), object_payload(2, 3, 256));
    }

    #[test]
    fn percentile_uses_nearest_rank_convention() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.5), 3.0);
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 1.0), 5.0);
        assert_eq!(percentile(&mut [], 0.99), 0.0);
    }
}
