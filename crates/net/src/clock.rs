//! Pluggable time source so the failure detector is deterministic under
//! test: production code uses [`WallClock`], tests drive a [`MockClock`]
//! forward by hand and observe the exact same state transitions on every
//! run, independent of scheduler jitter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic time source reporting seconds since an arbitrary origin.
pub trait Clock: Send + Sync {
    /// Seconds elapsed since the clock's origin. Must be monotonic.
    fn now_s(&self) -> f64;
}

/// Real monotonic time, anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A manually-advanced clock for deterministic tests. Time is stored as
/// integer microseconds so concurrent readers see exact values.
#[derive(Debug, Clone, Default)]
pub struct MockClock {
    micros: Arc<AtomicU64>,
}

impl MockClock {
    /// Creates a mock clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `secs` seconds.
    pub fn advance(&self, secs: f64) {
        assert!(secs >= 0.0, "mock clock cannot run backwards");
        self.micros
            .fetch_add((secs * 1e6).round() as u64, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_s(&self) -> f64 {
        self.micros.load(Ordering::SeqCst) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_exactly() {
        let c = MockClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance(1.5);
        assert_eq!(c.now_s(), 1.5);
        c.advance(0.25);
        assert_eq!(c.now_s(), 1.75);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a);
    }
}
