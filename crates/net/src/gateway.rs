//! The gateway: stripes objects across brick daemons with the
//! `nsr-erasure` Reed–Solomon codec, serves puts and gets through a
//! pipelined shard fan-out over pooled per-brick connections (one
//! outstanding request per brick, replies assembled in shard-index
//! order so results are deterministic by construction), routes reads
//! around dead bricks (degraded reconstruction from any `k` healthy
//! shards), retries transient transport faults with capped exponential
//! backoff plus seeded jitter, and runs the failure detector + rebuild
//! coordinator that re-replicates a dead brick's shards onto spares.
//!
//! Fan-out determinism contract: the fast path never changes *what* a
//! request returns, only how many are in flight. Shard assembly is by
//! index, any fast-path miss falls back to the serial per-shard retry
//! path (`fanout: false` in [`GatewayConfig`] forces that reference
//! path wholesale), and rebuild keeps its serial per-shard commit
//! order — which is why seeded campaign replays stay byte-identical
//! with fan-out enabled.
//!
//! Consistency model: an object's metadata (length + shard layout) is
//! committed only after every shard of a put has been acknowledged, so
//! a gateway or brick crash mid-put can never produce a torn object —
//! the put either committed (fully readable) or never happened. Rebuild
//! commits metadata per *shard*, which is what makes an interrupted
//! rebuild resumable: completed moves are already durable in the layout
//! and are never redone.

use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nsr_erasure::rs::ReedSolomon;
use nsr_obs::{Json, Span, SpanContext};
use nsr_rng::rngs::StdRng;
use nsr_rng::{Rng, SeedableRng};

use crate::client::BrickClient;
use crate::clock::{Clock, WallClock};
use crate::detector::{DetectorConfig, FailureDetector, Health, Transition};
use crate::error::Error;
use crate::obs;
use crate::pool::ConnectionPool;
use crate::wire::Frame;

/// Capped exponential backoff with jitter for transient transport
/// faults.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts before the budget is exhausted (≥ 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Cap on the exponentially growing delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(80),
        }
    }
}

/// Gateway tuning.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Data shards per object (`k`).
    pub data_shards: usize,
    /// Parity shards per object (`t` — the tolerated concurrent
    /// failures).
    pub parity_shards: usize,
    /// Per-socket connect/read/write deadline.
    pub timeout: Duration,
    /// Backoff policy for transient shard-op failures.
    pub retry: RetryPolicy,
    /// Failure-detector thresholds.
    pub detector: DetectorConfig,
    /// Seed for retry jitter (campaign runs pin this for replay).
    pub jitter_seed: u64,
    /// Connections kept per brick. The pipelined fan-out uses one lane;
    /// extra lanes serve concurrent callers without head-of-line
    /// blocking.
    pub pool_size: usize,
    /// Refresh idle pooled connections after this long — keep it well
    /// below the brick's read deadline (2 s by default) or idle
    /// connections get dropped and the next request pays a
    /// reconnect-plus-retry. Zero disables the keepalive thread.
    pub keepalive_refresh: Duration,
    /// Serve put/get through the pipelined shard fan-out fast path.
    /// `false` forces the serial per-shard reference path the fan-out
    /// must match byte-for-byte (the property tests compare the two).
    pub fanout: bool,
}

impl GatewayConfig {
    /// A `k`-data / `t`-parity config with default timeouts.
    pub fn new(data_shards: usize, parity_shards: usize) -> Self {
        GatewayConfig {
            data_shards,
            parity_shards,
            timeout: Duration::from_millis(500),
            retry: RetryPolicy::default(),
            detector: DetectorConfig::default(),
            jitter_seed: 0,
            pool_size: 2,
            keepalive_refresh: Duration::from_millis(1000),
            fanout: true,
        }
    }
}

/// Per-object metadata: committed layout and sizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Object length in bytes (shards carry zero padding past this).
    pub len: u64,
    /// Length of each shard.
    pub shard_len: u32,
    /// Brick id holding shard `pos`, for `pos` in `0..r`.
    pub layout: Vec<u32>,
}

/// Outcome of a [`Gateway::repair_all`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Shards re-replicated onto spares in this pass.
    pub shards_moved: u64,
    /// Bytes moved in this pass.
    pub bytes_moved: u64,
    /// Objects brought back to full redundancy.
    pub objects_repaired: u64,
    /// Shards already moved by earlier (interrupted) passes of the same
    /// rebuild generation — the checkpoint this pass resumed from.
    pub resumed_from: u64,
    /// Objects that could not be repaired because more than `t` of
    /// their shards are on failed bricks (typed loss, surfaced by
    /// `get` as [`Error::DataLoss`]).
    pub lost_objects: Vec<u64>,
    /// Objects still recoverable (≤ `t` shards lost) whose lost shards
    /// could not all be re-replicated because fewer healthy bricks
    /// outside their layout exist than shards needing new homes. They
    /// stay degraded-readable; repair them once a brick rejoins (see
    /// [`Gateway::scrub_repair`]).
    pub deferred_objects: Vec<u64>,
}

/// How a completed read was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// All data shards came straight from their bricks.
    Healthy,
    /// At least one shard was unavailable; the object was erasure-
    /// reconstructed from `k` surviving shards.
    Degraded,
}

/// One brick's telemetry as accumulated by the gateway's scrape
/// collector: the latest metrics snapshot plus every trace line shipped
/// so far (the per-brick cursor guarantees no replay).
#[derive(Debug, Clone, Default)]
pub struct BrickTelemetry {
    /// Stable id of the brick process (from its scrape replies).
    pub proc_id: u64,
    /// The brick's process label (e.g. `brick-3`).
    pub label: String,
    /// Snapshot sequence after the most recent scrape.
    pub snap_seq: u64,
    /// Trace cursor to resume the next scrape from.
    pub cursor: u64,
    /// Latest full metrics snapshot, JSONL.
    pub metrics: String,
    /// Accumulated trace lines across every scrape, oldest first.
    pub trace_lines: Vec<String>,
}

/// Cap on accumulated per-brick trace lines in the collector registry.
const COLLECT_TRACE_CAP: usize = 1 << 16;

/// A striping gateway over a fixed set of brick daemons.
pub struct Gateway {
    cfg: GatewayConfig,
    codec: ReedSolomon,
    pool: ConnectionPool,
    detector: Mutex<FailureDetector>,
    meta: Mutex<BTreeMap<u64, ObjectMeta>>,
    rng: Mutex<StdRng>,
    hb_seq: AtomicU64,
    rebuild_checkpoint: AtomicU64,
    collected: Mutex<BTreeMap<u32, BrickTelemetry>>,
}

impl Gateway {
    /// Creates a gateway over `bricks` (brick id = index) using real
    /// wall-clock time for failure detection.
    pub fn connect(bricks: Vec<SocketAddr>, cfg: GatewayConfig) -> Result<Gateway, Error> {
        Self::with_clock(bricks, cfg, Arc::new(WallClock::new()))
    }

    /// Creates a gateway with an explicit [`Clock`] (tests inject a
    /// mock; `connect` uses the wall clock).
    pub fn with_clock(
        bricks: Vec<SocketAddr>,
        cfg: GatewayConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Gateway, Error> {
        let r = cfg.data_shards + cfg.parity_shards;
        if bricks.len() < r {
            return Err(Error::InvalidConfig {
                what: format!(
                    "{} bricks cannot hold a {}+{} stripe",
                    bricks.len(),
                    cfg.data_shards,
                    cfg.parity_shards
                ),
            });
        }
        let codec = ReedSolomon::new(cfg.data_shards, cfg.parity_shards)?;
        let detector = FailureDetector::new(clock, cfg.detector.clone(), 0..bricks.len() as u32);
        let mut pool = ConnectionPool::new(bricks, cfg.timeout, cfg.pool_size);
        pool.start_keepalive(cfg.keepalive_refresh);
        let rng = StdRng::seed_from_u64(cfg.jitter_seed);
        Ok(Gateway {
            cfg,
            codec,
            pool,
            detector: Mutex::new(detector),
            meta: Mutex::new(BTreeMap::new()),
            rng: Mutex::new(rng),
            hb_seq: AtomicU64::new(0),
            rebuild_checkpoint: AtomicU64::new(0),
            collected: Mutex::new(BTreeMap::new()),
        })
    }

    /// Shards per object (`k + t`).
    pub fn redundancy(&self) -> usize {
        self.codec.total_shards()
    }

    /// Concurrent brick failures the code tolerates (`t`).
    pub fn tolerated(&self) -> usize {
        self.codec.parity_shards()
    }

    /// Number of bricks the gateway addresses.
    pub fn brick_count(&self) -> usize {
        self.pool.len()
    }

    /// Replaces the address of brick `id` (a killed brick restarts on a
    /// fresh port) and drops any cached connection to the old address.
    pub fn set_brick_addr(&self, id: u32, addr: SocketAddr) {
        self.pool.set_addr(id, addr);
    }

    /// Current health of every brick, in id order.
    pub fn health_summary(&self) -> Vec<(u32, Health)> {
        let det = self.detector.lock().expect("detector lock");
        (0..self.pool.len() as u32)
            .map(|id| (id, det.health(id).expect("tracked brick")))
            .collect()
    }

    /// Committed object ids, ascending.
    pub fn object_ids(&self) -> Vec<u64> {
        self.meta
            .lock()
            .expect("meta lock")
            .keys()
            .copied()
            .collect()
    }

    /// The committed shard layout of `object` (brick id per position).
    pub fn object_layout(&self, object: u64) -> Option<Vec<u32>> {
        self.meta
            .lock()
            .expect("meta lock")
            .get(&object)
            .map(|m| m.layout.clone())
    }

    /// Probes every brick once, feeds arrivals to the failure detector,
    /// and evaluates silence thresholds. Returns the health transitions
    /// this round caused, in brick-id order. Drive this from a loop —
    /// the `nsr gateway` daemon uses a background thread, the cluster
    /// harness its control loop (which is what keeps campaign replays
    /// deterministic).
    pub fn pump_heartbeats(&self) -> Vec<Transition> {
        let seq = self.hb_seq.fetch_add(1, Ordering::SeqCst);
        let mut alive = Vec::new();
        for id in 0..self.pool.len() as u32 {
            if let Ok(ack) = self.shard_op(id, "heartbeat", |c| c.heartbeat(seq)) {
                alive.push((id, ack.snap_seq));
            }
        }
        let mut det = self.detector.lock().expect("detector lock");
        let mut transitions = Vec::new();
        for (id, snap_seq) in alive {
            transitions.extend(det.heartbeat(id));
            // Piggybacked scrape-staleness signal: no extra RTT.
            det.note_snapshot(id, snap_seq);
        }
        transitions.extend(det.tick());
        transitions
    }

    /// Seconds since each brick's scrape-snapshot sequence last advanced
    /// (per the piggybacked heartbeat-ack signal), in brick-id order.
    pub fn snapshot_ages(&self) -> Vec<(u32, f64)> {
        let det = self.detector.lock().expect("detector lock");
        (0..self.pool.len() as u32)
            .filter_map(|id| det.snapshot_age_s(id).map(|age| (id, age)))
            .collect()
    }

    /// One collector round: scrapes every brick that answers and merges
    /// the snapshots into the labeled cluster registry, resuming each
    /// brick's trace stream from its stored cursor. Returns the brick
    /// ids scraped this round. Scrapes ride the same pooled connections
    /// as data traffic and carry no trace context — telemetry transport
    /// must not perturb the causal tree it reports.
    pub fn collect_scrapes(&self, max_lines: u32) -> Vec<u32> {
        let mut scraped = Vec::new();
        for id in 0..self.pool.len() as u32 {
            let cursor = self
                .collected
                .lock()
                .expect("collected lock")
                .get(&id)
                .map(|t| t.cursor)
                .unwrap_or(0);
            let Ok(snap) = self.shard_op(id, "scrape", |c| c.scrape(cursor, max_lines)) else {
                continue;
            };
            obs::SCRAPES_COLLECTED.inc();
            let mut reg = self.collected.lock().expect("collected lock");
            let entry = reg.entry(id).or_default();
            entry.proc_id = snap.proc_id;
            entry.label = snap.label;
            entry.snap_seq = snap.snap_seq;
            entry.cursor = snap.next_cursor;
            entry.metrics = snap.metrics;
            entry
                .trace_lines
                .extend(snap.trace.lines().map(str::to_string));
            if entry.trace_lines.len() > COLLECT_TRACE_CAP {
                let excess = entry.trace_lines.len() - COLLECT_TRACE_CAP;
                entry.trace_lines.drain(..excess);
            }
            scraped.push(id);
        }
        scraped
    }

    /// The collector's merged per-brick registry (cloned snapshot),
    /// keyed by brick id.
    pub fn collected_telemetry(&self) -> BTreeMap<u32, BrickTelemetry> {
        self.collected.lock().expect("collected lock").clone()
    }

    /// Removes and returns one brick's accumulated telemetry. The
    /// campaign harness harvests a victim's entry right before killing
    /// it: the kill loses the process's own buffers, and the entry must
    /// not bleed into the fresh process that later reuses the brick id
    /// (its trace cursor restarts at zero).
    pub fn take_collected(&self, id: u32) -> Option<BrickTelemetry> {
        self.collected.lock().expect("collected lock").remove(&id)
    }

    /// Renders the gateway's cluster-status blob for scrape replies: one
    /// JSONL record per brick with detector health, the piggybacked
    /// snapshot sequence/age, and the collected process label. This is
    /// what `nsr top` folds into its per-brick rows.
    pub fn telemetry_status(&self) -> String {
        let det = self.detector.lock().expect("detector lock");
        let reg = self.collected.lock().expect("collected lock");
        let mut out = String::new();
        for id in 0..self.pool.len() as u32 {
            let health = det.health(id).map(Health::name).unwrap_or("untracked");
            let mut pairs = vec![
                ("kind", Json::Str("brick_status".into())),
                ("brick", Json::Num(id as f64)),
                ("health", Json::Str(health.into())),
            ];
            if let Some(age) = det.snapshot_age_s(id) {
                pairs.push(("snap_age_s", Json::Num(age)));
            }
            if let Some(seq) = det.snapshot_seq(id) {
                pairs.push(("snap_seq", Json::Num(seq as f64)));
            }
            if let Some(t) = reg.get(&id) {
                pairs.push(("label", Json::Str(t.label.clone())));
            }
            out.push_str(&Json::obj(pairs).render_compact());
            out.push('\n');
        }
        out
    }

    /// Re-admits rejoined bricks as spares: wipes any stale shards they
    /// still hold (best effort; a kill-9'd in-memory brick comes back
    /// empty anyway) and marks them healthy. Returns the adopted ids.
    pub fn adopt_rejoined(&self) -> Vec<u32> {
        let rejoined: Vec<u32> = self
            .health_summary()
            .into_iter()
            .filter(|&(_, h)| h == Health::Rejoined)
            .map(|(id, _)| id)
            .collect();
        let mut adopted = Vec::new();
        for id in rejoined {
            if let Ok(entries) = self.shard_op(id, "list_shards", |c| c.list_shards()) {
                for (object, pos) in entries {
                    let _ = self.shard_op(id, "delete_shard", |c| c.delete_shard(object, pos));
                }
            }
            if self
                .detector
                .lock()
                .expect("detector lock")
                .adopt_spare(id)
                .is_some()
            {
                adopted.push(id);
            }
        }
        adopted
    }

    /// Stores `data` as `object`, erasure-coded across `k + t` healthy
    /// bricks. Metadata commits only after every shard is acknowledged.
    pub fn put(&self, object: u64, data: &[u8]) -> Result<(), Error> {
        let mut span = Span::enter("net.put");
        span.field("object", || Json::Num(object as f64));
        span.field("bytes", || Json::Num(data.len() as f64));
        // Parity buffers are reused across this thread's puts: steady-
        // state serving re-encodes into the same allocation instead of
        // paying an allocate-and-zero per object.
        PARITY_SCRATCH.with(|cell| self.put_inner(object, data, &mut cell.borrow_mut()))
    }

    fn put_inner(&self, object: u64, data: &[u8], scratch: &mut Vec<Vec<u8>>) -> Result<(), Error> {
        // Captured once, on the thread holding the open `net.put` span:
        // fan-out closures may run after the pool reorders work, and the
        // serial retry path redials connections, so every shard request
        // re-announces this same context.
        let ctx = nsr_obs::current_context();
        let r = self.redundancy();
        let mut excluded: BTreeSet<u32> = BTreeSet::new();
        let (shards, shard_len) = self.encode_object(data, scratch)?;
        // A brick that fails all its retries mid-put is excluded and the
        // whole put restarted on a fresh layout — up to three layouts
        // before the error propagates.
        for _layout_attempt in 0..3 {
            let healthy: Vec<u32> = self
                .detector
                .lock()
                .expect("detector lock")
                .healthy()
                .into_iter()
                .filter(|id| !excluded.contains(id))
                .collect();
            if healthy.len() < r {
                return Err(Error::InsufficientBricks {
                    need: r,
                    have: healthy.len(),
                });
            }
            let layout = rotate_pick(&healthy, object, r);
            let mut failure: Option<(u32, Error)> = None;
            let mut written: Vec<(u32, u32)> = Vec::new();
            // Fast path: pipelined scatter-gather — every shard request
            // goes out on its brick's pooled connection before any
            // reply is awaited, and replies are collected in shard-index
            // order. A position that misses (stale connection, fresh
            // death) falls through to the per-shard retry path below;
            // put_shard is idempotent, so the overlap is harmless.
            let fanned: Vec<bool> = if self.cfg.fanout {
                self.pool
                    .fanout(
                        &layout,
                        "put_shard",
                        |pos, c| {
                            send_ctx(c, ctx)?;
                            c.send_put_shard(object, pos as u32, shards[pos].as_ref())
                        },
                        |_pos, c| c.recv_put_reply(),
                    )
                    .into_iter()
                    .map(|res| res.is_ok())
                    .collect()
            } else {
                vec![false; shards.len()]
            };
            // Fanned positions are already durable on their bricks —
            // record them up front so an abandoned layout scrubs every
            // orphan, including ones past a later retry failure.
            for (pos, &ok) in fanned.iter().enumerate() {
                if ok {
                    written.push((layout[pos], pos as u32));
                }
            }
            for (pos, shard) in shards.iter().enumerate() {
                if fanned[pos] {
                    continue;
                }
                let target = layout[pos];
                match self.shard_op_with_retry(target, "put_shard", |c| {
                    send_ctx(c, ctx)?;
                    c.put_shard(object, pos as u32, shard.as_ref())
                }) {
                    Ok(()) => written.push((target, pos as u32)),
                    Err(e) => {
                        failure = Some((target, e));
                        break;
                    }
                }
            }
            match failure {
                None => {
                    self.meta.lock().expect("meta lock").insert(
                        object,
                        ObjectMeta {
                            len: data.len() as u64,
                            shard_len,
                            layout,
                        },
                    );
                    obs::PUTS.inc();
                    return Ok(());
                }
                Some((brick, err)) => {
                    // Metadata never committed: scrub the orphan shards
                    // (best effort) and rule the failed brick out of the
                    // next layout.
                    for (target, pos) in written {
                        let _ =
                            self.shard_op(target, "delete_shard", |c| c.delete_shard(object, pos));
                    }
                    excluded.insert(brick);
                    if excluded.len() + r > self.brick_count() {
                        return Err(err);
                    }
                }
            }
        }
        Err(Error::RetriesExhausted {
            op: "put",
            attempts: 3,
            last: "three shard layouts failed".to_string(),
        })
    }

    /// Reads `object`, reconstructing from any `k` shards when bricks
    /// are down. Returns the bytes and whether the read was degraded.
    pub fn get(&self, object: u64) -> Result<(Vec<u8>, ReadMode), Error> {
        let mut span = Span::enter("net.get");
        span.field("object", || Json::Num(object as f64));
        let ctx = nsr_obs::current_context();
        let meta = self
            .meta
            .lock()
            .expect("meta lock")
            .get(&object)
            .cloned()
            .ok_or(Error::ObjectNotFound { object })?;
        let r = self.redundancy();
        let k = self.codec.data_shards();
        let readable: Vec<bool> = {
            let det = self.detector.lock().expect("detector lock");
            meta.layout
                .iter()
                .map(|&b| det.health(b).map(Health::readable).unwrap_or(false))
                .collect()
        };
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; r];
        let mut have = 0usize;
        // Fast path: pipeline-fetch every readable data position, plus
        // just enough readable parity to reach k when data bricks are
        // known-unreadable. One outstanding request per brick, replies
        // assembled in shard-index order.
        if self.cfg.fanout {
            let mut wanted: Vec<usize> = (0..k).filter(|&pos| readable[pos]).collect();
            let mut need = k.saturating_sub(wanted.len());
            for (pos, &ok) in readable.iter().enumerate().take(r).skip(k) {
                if need == 0 {
                    break;
                }
                if ok {
                    wanted.push(pos);
                    need -= 1;
                }
            }
            if !wanted.is_empty() {
                let bricks: Vec<u32> = wanted.iter().map(|&pos| meta.layout[pos]).collect();
                let results = self.pool.fanout(
                    &bricks,
                    "get_shard",
                    |i, c| {
                        send_ctx(c, ctx)?;
                        c.send_request(&Frame::GetShard {
                            object,
                            pos: wanted[i] as u32,
                        })
                    },
                    |i, c| c.recv_shard("get_shard", object, wanted[i] as u32),
                );
                for (i, res) in results.into_iter().enumerate() {
                    if let Ok(data) = res {
                        if data.len() == meta.shard_len as usize {
                            shards[wanted[i]] = Some(data);
                            have += 1;
                        }
                    }
                }
            }
        }
        // Reference path and fan-out fallback: data shards first (a
        // healthy read needs nothing else), then parity from surviving
        // bricks until k shards are in hand — with the full per-shard
        // retry policy. Positions the fan-out already filled are kept.
        for pos in 0..r {
            if have >= k && pos >= k {
                break;
            }
            if !readable[pos] || shards[pos].is_some() {
                continue;
            }
            if let Ok(data) = self.shard_op_with_retry(meta.layout[pos], "get_shard", |c| {
                send_ctx(c, ctx)?;
                c.get_shard(object, pos as u32)
            }) {
                if data.len() == meta.shard_len as usize {
                    shards[pos] = Some(data);
                    have += 1;
                }
            }
        }
        let data_complete = shards[..k].iter().all(Option::is_some);
        if !data_complete {
            if have < k {
                let missing = r - have;
                obs::LOSS_GETS.inc();
                span.field("outcome", || Json::Str("loss".into()));
                return Err(Error::DataLoss {
                    object,
                    missing,
                    tolerated: self.tolerated(),
                });
            }
            self.codec.reconstruct(&mut shards)?;
            obs::DEGRADED_GETS.inc();
            nsr_obs::trace::event("net.get.degraded", || {
                vec![
                    ("object", Json::Num(object as f64)),
                    ("shards_present", Json::Num(have as f64)),
                ]
            });
        }
        let mut out = Vec::with_capacity(meta.len as usize);
        for shard in shards[..k].iter() {
            out.extend_from_slice(shard.as_deref().expect("data shards complete"));
        }
        out.truncate(meta.len as usize);
        obs::GETS.inc();
        let mode = if data_complete {
            ReadMode::Healthy
        } else {
            ReadMode::Degraded
        };
        Ok((out, mode))
    }

    /// Re-replicates every shard stranded on dead bricks onto healthy
    /// spares. Metadata commits per shard, so progress survives both an
    /// interrupted pass and a coordinator restart (see
    /// [`export_meta`](Self::export_meta)): a rerun resumes from the
    /// committed layout instead of shard 0.
    ///
    /// # Errors
    ///
    /// * [`Error::RebuildInterrupted`] when a source or spare brick
    ///   dies mid-transfer (it was healthy when the pass planned the
    ///   move but stopped serving before it completed). The checkpoint
    ///   is kept; pump heartbeats and call again to resume.
    ///
    /// An object whose lost shards outnumber the healthy bricks outside
    /// its layout is *not* an error: it is reported in
    /// [`RepairReport::deferred_objects`] and stays degraded-readable
    /// until a brick rejoins.
    pub fn repair_all(&self) -> Result<RepairReport, Error> {
        let mut span = Span::enter("net.rebuild");
        let ctx = nsr_obs::current_context();
        let failed: Vec<u32> = {
            let mut det = self.detector.lock().expect("detector lock");
            let failed = det.failed();
            for &b in &failed {
                det.mark_rebuilding(b);
            }
            failed
        };
        let resumed_from = self.rebuild_checkpoint.load(Ordering::SeqCst);
        let mut report = RepairReport {
            resumed_from,
            ..RepairReport::default()
        };
        if failed.is_empty() {
            return Ok(report);
        }
        span.field("failed_bricks", || Json::Num(failed.len() as f64));
        span.field("resumed_from", || Json::Num(resumed_from as f64));
        let failed_set: BTreeSet<u32> = failed.iter().copied().collect();
        let objects: Vec<(u64, ObjectMeta)> = self
            .meta
            .lock()
            .expect("meta lock")
            .iter()
            .map(|(&id, m)| (id, m.clone()))
            .collect();
        let r = self.redundancy();
        let k = self.codec.data_shards();
        for (id, m) in objects {
            let lost: Vec<usize> = (0..r)
                .filter(|&pos| failed_set.contains(&m.layout[pos]))
                .collect();
            if lost.is_empty() {
                continue;
            }
            if lost.len() > self.tolerated() {
                report.lost_objects.push(id);
                continue;
            }
            let healthy: Vec<u32> = self.detector.lock().expect("detector lock").healthy();
            let healthy_set: BTreeSet<u32> = healthy.iter().copied().collect();
            // Plan the reads: sources the detector believes can serve.
            let sources: Vec<usize> = (0..r)
                .filter(|pos| !lost.contains(pos) && healthy_set.contains(&m.layout[*pos]))
                .collect();
            if sources.len() < k {
                // Not an interruption — the detector already knows these
                // bricks are gone, the object is simply beyond repair
                // (and beyond t, else `lost` would have caught it).
                report.lost_objects.push(id);
                continue;
            }
            // Plan the writes before fetching anything: each lost
            // position needs its own healthy brick outside the layout.
            // With many concurrent deaths every survivor may already
            // hold a shard of this object — then there is nowhere to
            // re-replicate to, but the object is still readable (lost
            // ≤ t), so defer it rather than fail the whole pass.
            let spares: Vec<u32> = healthy
                .iter()
                .copied()
                .filter(|b| !m.layout.contains(b))
                .collect();
            if spares.len() < lost.len() {
                report.deferred_objects.push(id);
                continue;
            }
            let mut shards: Vec<Option<Vec<u8>>> = vec![None; r];
            let mut have = 0usize;
            // Fan out the k primary source fetches across scoped
            // threads (retry backoff sleeps overlap instead of
            // serializing); any shortfall walks the remaining sources
            // serially, exactly like the reference path.
            let primary: Vec<usize> = sources.iter().copied().take(k).collect();
            for (i, res) in self
                .parallel_fetch(id, &m.layout, &primary, true)
                .into_iter()
                .enumerate()
            {
                if let Ok(data) = res {
                    if data.len() == m.shard_len as usize {
                        shards[primary[i]] = Some(data);
                        have += 1;
                    }
                }
            }
            for &pos in sources.iter().skip(k) {
                if have >= k {
                    break;
                }
                if let Ok(data) = self.shard_op_with_retry(m.layout[pos], "rebuild_fetch", |c| {
                    send_ctx(c, ctx)?;
                    c.rebuild_fetch(id, pos as u32)
                }) {
                    if data.len() == m.shard_len as usize {
                        shards[pos] = Some(data);
                        have += 1;
                    }
                }
            }
            if have < k {
                // Planned sources stopped serving mid-transfer: the
                // typed interruption, with the per-shard checkpoint.
                obs::REBUILD_INTERRUPTED.inc();
                let checkpoint = self.rebuild_checkpoint.load(Ordering::SeqCst);
                span.field("outcome", || Json::Str("interrupted".into()));
                return Err(Error::RebuildInterrupted {
                    resumed_from: checkpoint,
                });
            }
            self.codec.reconstruct(&mut shards)?;
            for (i, &pos) in lost.iter().enumerate() {
                // Consecutive offsets modulo the spare count: distinct
                // spares per lost position (lost.len() ≤ spares.len()
                // was checked above), rotated by id for balance.
                let spare = spares[(id as usize + i) % spares.len()];
                let shard = shards[pos].as_deref().expect("reconstructed");
                match self.shard_op_with_retry(spare, "put_shard", |c| {
                    send_ctx(c, ctx)?;
                    c.put_shard(id, pos as u32, shard)
                }) {
                    Ok(()) => {}
                    Err(
                        Error::Io { .. } | Error::Timeout { .. } | Error::RetriesExhausted { .. },
                    ) => {
                        // The chosen spare died between health snapshot
                        // and transfer — same interruption semantics as
                        // a source death.
                        obs::REBUILD_INTERRUPTED.inc();
                        let checkpoint = self.rebuild_checkpoint.load(Ordering::SeqCst);
                        span.field("outcome", || Json::Str("interrupted".into()));
                        return Err(Error::RebuildInterrupted {
                            resumed_from: checkpoint,
                        });
                    }
                    Err(e) => return Err(e),
                }
                // Per-shard commit: the new home is durable immediately.
                self.meta
                    .lock()
                    .expect("meta lock")
                    .get_mut(&id)
                    .expect("object present")
                    .layout[pos] = spare;
                self.rebuild_checkpoint.fetch_add(1, Ordering::SeqCst);
                report.shards_moved += 1;
                report.bytes_moved += shard.len() as u64;
                obs::REBUILD_SHARDS.inc();
                obs::REBUILD_BYTES.add(shard.len() as u64);
                nsr_obs::trace::event("net.rebuild.shard", || {
                    vec![
                        ("object", Json::Num(id as f64)),
                        ("pos", Json::Num(pos as f64)),
                        ("spare", Json::Num(spare as f64)),
                    ]
                });
            }
            report.objects_repaired += 1;
        }
        // Bricks with no remaining layout references are fully drained.
        let meta = self.meta.lock().expect("meta lock");
        let referenced: BTreeSet<u32> = meta
            .values()
            .flat_map(|m| m.layout.iter().copied())
            .collect();
        drop(meta);
        let mut det = self.detector.lock().expect("detector lock");
        for &b in &failed {
            if !referenced.contains(&b) {
                det.finish_rebuilding(b);
            }
        }
        drop(det);
        // A clean pass closes the rebuild generation.
        self.rebuild_checkpoint.store(0, Ordering::SeqCst);
        span.field("shards_moved", || Json::Num(report.shards_moved as f64));
        Ok(report)
    }

    /// Presence-driven repair: probes every healthy brick in every
    /// object's layout for its shard and re-creates any that are
    /// missing, writing each shard back to its *layout* brick (the
    /// layout never changes). This is the recovery path for the two
    /// gaps [`repair_all`](Self::repair_all) leaves behind: objects it
    /// deferred because no spare existed at the time, and rejoined
    /// bricks that came back empty (adoption wipes stale shards, so
    /// layouts referencing them read degraded until scrubbed).
    ///
    /// An object whose missing shards cannot all be restored this pass
    /// — a layout brick is unhealthy, or a write raced a fresh death —
    /// lands in [`RepairReport::deferred_objects`]; call again once the
    /// cluster settles. Objects with fewer than `k` shards anywhere land
    /// in [`RepairReport::lost_objects`].
    pub fn scrub_repair(&self) -> Result<RepairReport, Error> {
        let mut span = Span::enter("net.scrub");
        let ctx = nsr_obs::current_context();
        let mut report = RepairReport::default();
        let healthy_set: BTreeSet<u32> = self
            .detector
            .lock()
            .expect("detector lock")
            .healthy()
            .into_iter()
            .collect();
        let objects: Vec<(u64, ObjectMeta)> = self
            .meta
            .lock()
            .expect("meta lock")
            .iter()
            .map(|(&id, m)| (id, m.clone()))
            .collect();
        let r = self.redundancy();
        let k = self.codec.data_shards();
        'objects: for (id, m) in objects {
            let mut shards: Vec<Option<Vec<u8>>> = vec![None; r];
            let mut missing: Vec<usize> = Vec::new();
            // Probe every healthy layout brick concurrently, then
            // classify the results in position order (deterministic).
            let probe: Vec<usize> = (0..r)
                .filter(|&pos| healthy_set.contains(&m.layout[pos]))
                .collect();
            let mut unavailable = r - probe.len();
            for (i, res) in self
                .parallel_fetch(id, &m.layout, &probe, true)
                .into_iter()
                .enumerate()
            {
                let pos = probe[i];
                match res {
                    Ok(data) if data.len() == m.shard_len as usize => shards[pos] = Some(data),
                    Ok(_) | Err(Error::ShardNotFound { .. }) => missing.push(pos),
                    // A probe that fails in transit is neither present
                    // nor restorable right now.
                    Err(_) => unavailable += 1,
                }
            }
            if missing.is_empty() {
                continue;
            }
            let present = shards.iter().filter(|s| s.is_some()).count();
            if present < k {
                if unavailable > 0 {
                    report.deferred_objects.push(id);
                } else {
                    report.lost_objects.push(id);
                }
                continue;
            }
            self.codec.reconstruct(&mut shards)?;
            for &pos in &missing {
                let shard = shards[pos].as_deref().expect("reconstructed");
                if self
                    .shard_op_with_retry(m.layout[pos], "put_shard", |c| {
                        send_ctx(c, ctx)?;
                        c.put_shard(id, pos as u32, shard)
                    })
                    .is_err()
                {
                    report.deferred_objects.push(id);
                    continue 'objects;
                }
                report.shards_moved += 1;
                report.bytes_moved += shard.len() as u64;
                obs::REBUILD_SHARDS.inc();
                obs::REBUILD_BYTES.add(shard.len() as u64);
                nsr_obs::trace::event("net.scrub.shard", || {
                    vec![
                        ("object", Json::Num(id as f64)),
                        ("pos", Json::Num(pos as f64)),
                        ("brick", Json::Num(m.layout[pos] as f64)),
                    ]
                });
            }
            report.objects_repaired += 1;
        }
        span.field("shards_restored", || Json::Num(report.shards_moved as f64));
        Ok(report)
    }

    /// Serializes object metadata to a line-oriented text form a
    /// restarted coordinator can [`import_meta`](Self::import_meta).
    pub fn export_meta(&self) -> String {
        let meta = self.meta.lock().expect("meta lock");
        let mut out = String::from("nsr-net-meta/v1\n");
        for (id, m) in meta.iter() {
            let layout: Vec<String> = m.layout.iter().map(u32::to_string).collect();
            out.push_str(&format!(
                "object {id} len {} shard_len {} layout {}\n",
                m.len,
                m.shard_len,
                layout.join(",")
            ));
        }
        out
    }

    /// Restores metadata exported by [`export_meta`](Self::export_meta)
    /// — the coordinator-restart path: a fresh gateway with imported
    /// metadata resumes an in-flight rebuild from the committed layout.
    pub fn import_meta(&self, text: &str) -> Result<(), Error> {
        let mut lines = text.lines();
        if lines.next() != Some("nsr-net-meta/v1") {
            return Err(Error::Decode {
                what: "metadata export missing nsr-net-meta/v1 header".to_string(),
            });
        }
        let mut parsed = BTreeMap::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let bad = || Error::Decode {
                what: format!("malformed metadata line `{line}`"),
            };
            if toks.len() != 8
                || toks[0] != "object"
                || toks[2] != "len"
                || toks[4] != "shard_len"
                || toks[6] != "layout"
            {
                return Err(bad());
            }
            let id: u64 = toks[1].parse().map_err(|_| bad())?;
            let len: u64 = toks[3].parse().map_err(|_| bad())?;
            let shard_len: u32 = toks[5].parse().map_err(|_| bad())?;
            let layout = toks[7]
                .split(',')
                .map(|s| s.parse::<u32>().map_err(|_| bad()))
                .collect::<Result<Vec<u32>, Error>>()?;
            if layout.len() != self.redundancy() {
                return Err(Error::Decode {
                    what: format!(
                        "object {id} layout has {} entries, geometry needs {}",
                        layout.len(),
                        self.redundancy()
                    ),
                });
            }
            parsed.insert(
                id,
                ObjectMeta {
                    len,
                    shard_len,
                    layout,
                },
            );
        }
        *self.meta.lock().expect("meta lock") = parsed;
        Ok(())
    }

    /// Splits `data` into `k + t` shard views for a put. The `k` data
    /// shards borrow straight from the caller's bytes (owned only when
    /// a tail shard needs zero padding); the `t` parity shards are
    /// computed into `scratch`, whose buffers are resized to fit and
    /// borrowed — a steady-state put of a constant object size touches
    /// no allocator at all.
    fn encode_object<'a>(
        &self,
        data: &'a [u8],
        scratch: &'a mut Vec<Vec<u8>>,
    ) -> Result<(Vec<ShardBuf<'a>>, u32), Error> {
        let k = self.codec.data_shards();
        let t = self.codec.parity_shards();
        let shard_len = data.len().div_ceil(k).max(1);
        let mut shards: Vec<ShardBuf<'a>> = Vec::with_capacity(k + t);
        for pos in 0..k {
            let start = (pos * shard_len).min(data.len());
            let end = ((pos + 1) * shard_len).min(data.len());
            if end - start == shard_len {
                shards.push(ShardBuf::Borrowed(&data[start..end]));
            } else {
                let mut padded = vec![0u8; shard_len];
                padded[..end - start].copy_from_slice(&data[start..end]);
                shards.push(ShardBuf::Owned(padded));
            }
        }
        scratch.resize_with(t, Vec::new);
        for p in scratch.iter_mut() {
            p.resize(shard_len, 0);
        }
        self.codec.encode_parity_into(&shards, &mut scratch[..])?;
        shards.extend(scratch.iter().map(|p| ShardBuf::Borrowed(p.as_slice())));
        Ok((shards, shard_len as u32))
    }

    /// One attempt of `f` against a pooled connection to brick `id` —
    /// the pool reconnects a dropped lane first and discards the
    /// connection on error.
    fn shard_op<T>(
        &self,
        id: u32,
        op: &'static str,
        f: impl FnOnce(&mut BrickClient) -> Result<T, Error>,
    ) -> Result<T, Error> {
        self.pool.with(id, op, f)
    }

    /// Fetches `positions` of `object` concurrently — one scoped thread
    /// per position, each running the full per-shard retry policy, so
    /// backoff sleeps overlap instead of serializing (positions map to
    /// distinct bricks, hence distinct pool lanes). Results are
    /// assembled in `positions` order; with `cfg.fanout` disabled the
    /// fetches run serially, which is the reference behavior the
    /// parallel path must match.
    fn parallel_fetch(
        &self,
        object: u64,
        layout: &[u32],
        positions: &[usize],
        rebuild: bool,
    ) -> Vec<Result<Vec<u8>, Error>> {
        let op: &'static str = if rebuild {
            "rebuild_fetch"
        } else {
            "get_shard"
        };
        // Captured here, on the caller's thread — the scoped fetch
        // threads below have no span stack of their own, so the open
        // rebuild/scrub span must travel into them by value.
        let ctx = nsr_obs::current_context();
        let fetch_one = |pos: usize| {
            self.shard_op_with_retry(layout[pos], op, |c| {
                send_ctx(c, ctx)?;
                if rebuild {
                    c.rebuild_fetch(object, pos as u32)
                } else {
                    c.get_shard(object, pos as u32)
                }
            })
        };
        if !self.cfg.fanout || positions.len() <= 1 {
            return positions.iter().map(|&pos| fetch_one(pos)).collect();
        }
        std::thread::scope(|s| {
            let fetch_one = &fetch_one;
            let handles: Vec<_> = positions
                .iter()
                .map(|&pos| s.spawn(move || fetch_one(pos)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fetch thread"))
                .collect()
        })
    }

    /// `shard_op` under the retry policy: transient errors back off
    /// exponentially (capped, jittered) and re-attempt; permanent errors
    /// and exhausted budgets propagate typed.
    fn shard_op_with_retry<T>(
        &self,
        id: u32,
        op: &'static str,
        mut f: impl FnMut(&mut BrickClient) -> Result<T, Error>,
    ) -> Result<T, Error> {
        let policy = &self.cfg.retry;
        let mut last: Option<Error> = None;
        for attempt in 0..policy.max_attempts {
            if attempt > 0 {
                obs::RETRIES.inc();
                std::thread::sleep(self.backoff_delay(attempt));
            }
            match self.shard_op(id, op, &mut f) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(Error::RetriesExhausted {
            op,
            attempts: policy.max_attempts,
            last: last.expect("at least one attempt failed").to_string(),
        })
    }

    fn backoff_delay(&self, attempt: u32) -> Duration {
        let policy = &self.cfg.retry;
        let exp = policy.base_delay.as_secs_f64() * 2f64.powi(attempt.saturating_sub(1) as i32);
        let capped = exp.min(policy.max_delay.as_secs_f64());
        // Jitter in [0.5, 1.0)× keeps synchronized retries from
        // hammering a recovering brick in lockstep.
        let jitter = self
            .rng
            .lock()
            .expect("rng lock")
            .random_range_f64(0.5, 1.0);
        Duration::from_secs_f64(capped * jitter)
    }
}

thread_local! {
    /// Per-thread parity scratch reused across puts — see
    /// [`Gateway::put`]. Thread-local (rather than a gateway field)
    /// so concurrent puts on different threads never contend for it.
    static PARITY_SCRATCH: std::cell::RefCell<Vec<Vec<u8>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// One shard's bytes during a put: data shards borrow from the caller's
/// object, parity shards live in the put's thread-local scratch (only a
/// zero-padded tail shard is owned).
enum ShardBuf<'a> {
    Borrowed(&'a [u8]),
    Owned(Vec<u8>),
}

impl AsRef<[u8]> for ShardBuf<'_> {
    fn as_ref(&self) -> &[u8] {
        match self {
            ShardBuf::Borrowed(s) => s,
            ShardBuf::Owned(v) => v,
        }
    }
}

/// Sends the remote trace context ahead of a data-op request when one
/// is open. With tracing disabled (or no open span) `ctx` is `None` and
/// nothing extra crosses the wire — legacy single-process behavior.
fn send_ctx(c: &mut BrickClient, ctx: Option<SpanContext>) -> Result<(), Error> {
    match ctx {
        Some(ctx) => c.send_trace_ctx(ctx),
        None => Ok(()),
    }
}

/// Picks `r` bricks from the (ascending) healthy list, rotated by the
/// object id so consecutive objects spread their spare capacity across
/// different bricks.
fn rotate_pick(healthy: &[u32], object: u64, r: usize) -> Vec<u32> {
    let start = (object as usize) % healthy.len();
    (0..r)
        .map(|i| healthy[(start + i) % healthy.len()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_pick_spreads_layouts() {
        let healthy = [0, 1, 2, 3, 4, 5];
        assert_eq!(rotate_pick(&healthy, 0, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(rotate_pick(&healthy, 1, 5), vec![1, 2, 3, 4, 5]);
        assert_eq!(rotate_pick(&healthy, 5, 5), vec![5, 0, 1, 2, 3]);
        assert_eq!(rotate_pick(&healthy, 6, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn meta_round_trips_through_export() {
        let cfg = GatewayConfig::new(3, 2);
        // No bricks contacted: construction only validates geometry.
        let addrs: Vec<SocketAddr> = (0..5)
            .map(|i| format!("127.0.0.1:{}", 20000 + i).parse().unwrap())
            .collect();
        let gw = Gateway::connect(addrs.clone(), cfg.clone()).expect("gateway");
        gw.meta.lock().unwrap().insert(
            7,
            ObjectMeta {
                len: 1000,
                shard_len: 334,
                layout: vec![0, 1, 2, 3, 4],
            },
        );
        let text = gw.export_meta();
        let gw2 = Gateway::connect(addrs, cfg).expect("gateway");
        gw2.import_meta(&text).expect("import");
        assert_eq!(
            gw2.meta.lock().unwrap().get(&7),
            Some(&ObjectMeta {
                len: 1000,
                shard_len: 334,
                layout: vec![0, 1, 2, 3, 4],
            })
        );
    }

    #[test]
    fn import_rejects_bad_header_and_geometry() {
        let cfg = GatewayConfig::new(3, 2);
        let addrs: Vec<SocketAddr> = (0..5)
            .map(|i| format!("127.0.0.1:{}", 21000 + i).parse().unwrap())
            .collect();
        let gw = Gateway::connect(addrs, cfg).expect("gateway");
        assert!(matches!(
            gw.import_meta("garbage"),
            Err(Error::Decode { .. })
        ));
        assert!(matches!(
            gw.import_meta("nsr-net-meta/v1\nobject 1 len 10 shard_len 4 layout 0,1\n"),
            Err(Error::Decode { .. })
        ));
    }
}
